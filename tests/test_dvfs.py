"""DVFS governors."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.boards import rk3399
from repro.simcore.dvfs import (
    ConservativeGovernor,
    OndemandGovernor,
    StaticGovernor,
    get_governor,
)


@pytest.fixture
def board():
    return rk3399()


class TestRegistry:
    def test_names_resolve(self, board):
        for name in ("default", "conservative", "ondemand"):
            assert get_governor(name, board).name == name

    def test_unknown_rejected(self, board):
        with pytest.raises(ConfigurationError):
            get_governor("powersave", board)


class TestStaticGovernor:
    def test_defaults_to_max(self, board):
        governor = StaticGovernor(board)
        for core in board.cores:
            assert governor.frequency_of(core.core_id) == core.max_frequency_mhz

    def test_fixed_map_applied(self, board):
        governor = StaticGovernor(board, {0: 600.0, 4: 1008.0})
        assert governor.frequency_of(0) == 600.0
        assert governor.frequency_of(4) == 1008.0
        assert governor.frequency_of(1) == 1416.0

    def test_never_changes(self, board):
        governor = StaticGovernor(board, {0: 600.0})
        governor.observe({0: 1.0, 4: 0.0})
        assert governor.frequency_of(0) == 600.0
        assert governor.switch_count == 0

    def test_invalid_level_rejected(self, board):
        with pytest.raises(ConfigurationError):
            StaticGovernor(board, {0: 777.0})

    def test_unknown_core_rejected(self, board):
        with pytest.raises(ConfigurationError):
            StaticGovernor(board, {99: 600.0})


class TestConservativeGovernor:
    def test_steps_down_when_idle(self, board):
        governor = ConservativeGovernor(board)
        governor.observe({0: 0.1})
        assert governor.frequency_of(0) == 1200.0  # one level down

    def test_steps_up_when_busy(self, board):
        governor = ConservativeGovernor(board)
        governor.observe({0: 0.1})       # 1416 -> 1200
        governor.observe({0: 0.95})      # back up
        assert governor.frequency_of(0) == 1416.0

    def test_holds_inside_band(self, board):
        governor = ConservativeGovernor(board)
        governor.observe({0: 0.75})
        assert governor.frequency_of(0) == 1416.0

    def test_cannot_step_past_extremes(self, board):
        governor = ConservativeGovernor(board)
        for _ in range(20):
            governor.observe({0: 0.0})
        assert governor.frequency_of(0) == 408.0
        for _ in range(20):
            governor.observe({0: 1.0})
        assert governor.frequency_of(0) == 1416.0

    def test_one_level_at_a_time(self, board):
        governor = ConservativeGovernor(board)
        governor.observe({4: 0.0})
        assert governor.frequency_of(4) == 1608.0  # single step from 1800

    def test_invalid_thresholds(self, board):
        with pytest.raises(ConfigurationError):
            ConservativeGovernor(board, up_threshold=0.3, down_threshold=0.5)


class TestOndemandGovernor:
    def test_jumps_to_max_when_hot(self, board):
        governor = OndemandGovernor(board)
        governor.observe({0: 0.3})  # drop first
        governor.observe({0: 0.95})
        assert governor.frequency_of(0) == 1416.0

    def test_drops_proportionally(self, board):
        governor = OndemandGovernor(board)
        governor.observe({0: 0.2})
        # needed = 1416 * 0.2/0.8 = 354 -> lowest level covering it.
        assert governor.frequency_of(0) == 408.0

    def test_mid_utilization_intermediate_level(self, board):
        governor = OndemandGovernor(board)
        governor.observe({0: 0.5})
        # needed = 1416 * 0.5/0.8 = 885 -> 1008.
        assert governor.frequency_of(0) == 1008.0

    def test_oscillation_factor_higher_than_conservative(self, board):
        assert (
            OndemandGovernor(board).oscillation_factor
            > ConservativeGovernor(board).oscillation_factor
        )

    def test_invalid_threshold(self, board):
        with pytest.raises(ConfigurationError):
            OndemandGovernor(board, up_threshold=0.0)


class TestTransitionCost:
    def test_scales_with_changes(self, board):
        governor = StaticGovernor(board)
        stall1, energy1 = governor.transition_cost(1)
        stall3, energy3 = governor.transition_cost(3)
        assert stall3 == pytest.approx(3 * stall1)
        assert energy3 == pytest.approx(3 * energy1)

    def test_switch_count_accumulates(self, board):
        governor = ConservativeGovernor(board)
        governor.observe({core.core_id: 0.0 for core in board.cores})
        assert governor.switch_count == len(board.cores)
