"""The online control loop: plan diffing, migration costing,
warm-started replanning, windowed sessions, and adaptive-vs-static."""

import pytest

from repro.control import (
    ControllerConfig,
    SessionController,
    SessionSpec,
    run_adaptive_session,
)
from repro.core.plan import (
    PlanDelta,
    ReplicaMove,
    SchedulingPlan,
    migration_cost,
)
from repro.core.scheduler import Scheduler
from repro.core.task import Task, TaskGraph
from repro.datasets import DRIFT_KINDS, drift_schedule
from repro.errors import ConfigurationError, DatasetError
from repro.simcore.engine import Simulator

BIG, BIG2, LITTLE, LITTLE2 = 4, 5, 0, 1


@pytest.fixture(scope="module")
def context():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    return WorkloadContext.build(rk3399(), profile, 26.0)


@pytest.fixture(scope="module")
def model(context):
    return context.cost_model(context.fine_graph)


def plan_of(context, *assignments):
    return SchedulingPlan(
        graph=context.fine_graph, assignments=tuple(assignments)
    )


class TestPlanDiff:
    def test_identical_plans_empty_delta(self, context):
        plan = plan_of(context, (BIG,), (LITTLE,))
        delta = plan.diff(plan_of(context, (BIG,), (LITTLE,)))
        assert delta.is_empty
        assert delta.moved_replicas == 0
        assert delta.describe() == "no-op"

    def test_single_move(self, context):
        old = plan_of(context, (BIG,), (LITTLE,))
        new = plan_of(context, (BIG2,), (LITTLE,))
        delta = old.diff(new)
        assert delta.moves == (ReplicaMove(0, BIG, BIG2),)
        assert delta.stages_touched() == (0,)
        assert delta.describe() == f"s0:{BIG}->{BIG2}"

    def test_replica_order_is_irrelevant(self, context):
        """Replicas of one stage are interchangeable: a reordering of
        the same core multiset is a relabeling, not a migration."""
        old = plan_of(context, (BIG, BIG2), (LITTLE,))
        new = plan_of(context, (BIG2, BIG), (LITTLE,))
        assert old.diff(new).is_empty

    def test_growth_splits_off_donor(self, context):
        old = plan_of(context, (BIG,), (LITTLE,))
        new = plan_of(context, (BIG, BIG2), (LITTLE,))
        delta = old.diff(new)
        # The new replica's state splits off the surviving one.
        assert delta.moves == (ReplicaMove(0, BIG, BIG2),)

    def test_shrink_merges_into_survivor(self, context):
        old = plan_of(context, (BIG, BIG2), (LITTLE,))
        new = plan_of(context, (BIG,), (LITTLE,))
        delta = old.diff(new)
        assert delta.moves == (ReplicaMove(0, BIG2, BIG),)

    def test_multi_stage_moves_sorted_deterministically(self, context):
        old = plan_of(context, (BIG,), (LITTLE,))
        new = plan_of(context, (LITTLE2,), (BIG2,))
        delta = old.diff(new)
        assert delta.stages_touched() == (0, 1)
        assert delta.moved_replicas == 2

    def test_cross_graph_diff_rejected(self, context):
        other_graph = TaskGraph(
            codec_name="other",
            tasks=(Task(name="t0", step_ids=("x",), stage_index=0),),
        )
        other = SchedulingPlan(graph=other_graph, assignments=((BIG,),))
        with pytest.raises(ConfigurationError):
            plan_of(context, (BIG,), (LITTLE,)).diff(other)


class TestMigrationCost:
    def test_empty_delta_is_free(self, model):
        cost = migration_cost(
            PlanDelta(moves=()), model.board, model.communication, {}
        )
        assert cost.pause_us == 0.0
        assert cost.transfer_us == 0.0
        assert cost.energy_uj == 0.0

    def test_same_core_move_is_free(self, model):
        delta = PlanDelta(moves=(ReplicaMove(0, BIG, BIG),))
        cost = migration_cost(
            delta, model.board, model.communication, {0: 8192.0}
        )
        assert cost.transfer_us == 0.0
        assert cost.energy_uj == 0.0

    def test_priced_with_communication_table(self, model):
        delta = PlanDelta(moves=(ReplicaMove(0, BIG, LITTLE),))
        state_bytes = 8192.0
        cost = migration_cost(
            delta, model.board, model.communication, {0: state_bytes}
        )
        path = model.board.path_between(BIG, LITTLE)
        expected = (
            state_bytes * model.communication.unit_cost(path)
            + model.communication.overhead(path)
        )
        assert cost.transfer_us == pytest.approx(expected)
        # Both endpoints stall for the synchronous handoff.
        assert cost.pause_us == pytest.approx(expected)
        assert dict(cost.stall_us_by_core) == pytest.approx(
            {BIG: expected, LITTLE: expected}
        )
        assert cost.energy_uj > 0.0

    def test_stage_without_state_pays_overhead_only(self, model):
        delta = PlanDelta(moves=(ReplicaMove(0, BIG, LITTLE),))
        cost = migration_cost(delta, model.board, model.communication, {})
        path = model.board.path_between(BIG, LITTLE)
        assert cost.transfer_us == pytest.approx(
            model.communication.overhead(path)
        )

    def test_disjoint_moves_overlap(self, model):
        """Independent moves on disjoint cores pause for the slowest
        transfer, not the sum."""
        delta = PlanDelta(
            moves=(
                ReplicaMove(0, BIG, BIG2),
                ReplicaMove(1, LITTLE, LITTLE2),
            )
        )
        cost = migration_cost(
            delta, model.board, model.communication, {0: 4096.0, 1: 4096.0}
        )
        per_core = dict(cost.stall_us_by_core)
        assert cost.pause_us == pytest.approx(max(per_core.values()))
        assert cost.pause_us < cost.transfer_us


class TestWarmStart:
    def test_warm_matches_cold_optimum(self, model):
        cold = Scheduler(model).schedule(best_effort=True)
        warm = Scheduler(model).schedule(
            best_effort=True, warm_start=cold.estimate.plan
        )
        assert warm.estimate.energy_uj_per_byte == pytest.approx(
            cold.estimate.energy_uj_per_byte
        )
        assert warm.estimate.feasible == cold.estimate.feasible

    def test_warm_start_hits_counted(self, model):
        scheduler = Scheduler(model)
        best, _, _ = scheduler.search((1, 1))
        assert scheduler.last_search_counters["warm_pruned"] == 0
        # Seeding the bound with the optimum cuts branches a cold
        # search still has to descend into.
        scheduler.search((1, 1), initial_bound=best.energy_uj_per_byte)
        assert scheduler.last_search_counters["warm_pruned"] > 0
        warm = Scheduler(model).schedule(
            best_effort=True,
            warm_start=Scheduler(model).schedule(best_effort=True).plan,
        )
        assert warm.search_stats.warm_start_hits > 0

    def test_tie_keeps_incumbent(self, model):
        """Re-planning with the optimal incumbent must return a plan of
        the same energy — never a strictly worse one."""
        incumbent = Scheduler(model).schedule(best_effort=True).estimate
        replanned = Scheduler(model).schedule(
            best_effort=True, warm_start=incumbent.plan
        )
        assert (
            replanned.estimate.energy_uj_per_byte
            <= incumbent.energy_uj_per_byte
        )

    def test_bound_is_strict_so_equal_energy_survives(self, model):
        """The incumbent bound prunes with strict ``>``: a bound equal
        to the optimum still lets the search rediscover the optimum, so
        a warm-started replan can never return worse than cold."""
        scheduler = Scheduler(model)
        best, _, _ = scheduler.search((1, 1))
        rediscovered, _, _ = scheduler.search(
            (1, 1), initial_bound=best.energy_uj_per_byte
        )
        assert rediscovered is not None
        assert rediscovered.energy_uj_per_byte == pytest.approx(
            best.energy_uj_per_byte
        )


class TestAllOf:
    def test_values_in_passed_order(self):
        simulator = Simulator()

        def worker(delay, value):
            yield simulator.timeout(delay)
            return value

        slow = simulator.process(worker(10.0, "slow"))
        fast = simulator.process(worker(1.0, "fast"))
        join = simulator.all_of([slow, fast])
        seen = {}

        def waiter():
            values = yield join
            seen["values"] = values
            seen["now"] = simulator.now

        simulator.process(waiter())
        simulator.run()
        assert seen["values"] == ["slow", "fast"]
        assert seen["now"] == pytest.approx(10.0)

    def test_empty_join_fires(self):
        simulator = Simulator()
        seen = {}

        def waiter():
            values = yield simulator.all_of([])
            seen["values"] = values

        simulator.process(waiter())
        simulator.run()
        assert seen["values"] == []

    def test_already_triggered_members_count(self):
        simulator = Simulator()
        seen = {}

        def worker():
            yield simulator.timeout(1.0)
            return "early"

        early = simulator.process(worker())

        def waiter():
            # Join only after the member has already fired.
            yield simulator.timeout(5.0)
            values = yield simulator.all_of([early])
            seen["values"] = values

        simulator.process(waiter())
        simulator.run()
        assert seen["values"] == ["early"]


class TestDriftSchedule:
    def test_kinds_are_exported(self):
        assert DRIFT_KINDS == ("ramp", "burst", "phase-shift")

    def test_ramp_is_monotone(self):
        values = drift_schedule("ramp", 12, low=500, high=50_000)
        assert len(values) == 12
        assert values[0] == 500
        assert values[-1] == 50_000
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_phase_shift_steps_once(self):
        values = drift_schedule(
            "phase-shift", 9, low=500, high=50_000, change_at=3
        )
        assert values[:3] == (500,) * 3
        assert values[3:] == (50_000,) * 6

    def test_burst_returns_to_low(self):
        values = drift_schedule(
            "burst", 10, low=500, high=50_000, change_at=4, burst_batches=2
        )
        assert values[:4] == (500,) * 4
        assert values[4:6] == (50_000,) * 2
        assert values[6:] == (500,) * 4

    def test_deterministic(self):
        assert drift_schedule("ramp", 8) == drift_schedule("ramp", 8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            drift_schedule("sawtooth", 8)


class TestControllerConfig:
    def test_defaults_valid(self):
        ControllerConfig()

    def test_horizon_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(horizon_windows=0)

    def test_saving_ratio_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(min_saving_ratio=0.0)


class TestSessionSpec:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionSpec(scenario="meteor")

    def test_warmup_must_leave_batches(self):
        with pytest.raises(ConfigurationError):
            SessionSpec(batches=3, warmup_batches=3)


@pytest.fixture(scope="module")
def phase_shift():
    from repro.obs.trace import TraceRecorder

    trace = TraceRecorder()
    comparison = run_adaptive_session(
        spec=SessionSpec(scenario="phase-shift"), trace=trace
    )
    return comparison, trace


class TestAdaptiveSession:
    def test_adaptive_saves_energy(self, phase_shift):
        comparison, _ = phase_shift
        assert comparison.energy_saving > 0.0

    def test_adaptive_cuts_steady_violations(self, phase_shift):
        comparison, _ = phase_shift
        assert (
            comparison.adaptive_steady_violations
            < comparison.static_steady_violations
        )

    def test_plan_was_adopted(self, phase_shift):
        comparison, _ = phase_shift
        assert comparison.adaptive.replans >= 1
        assert comparison.adaptive.plans_adopted >= 1
        assert comparison.adaptive.migration_pause_us > 0.0
        reasons = {event.reason for event in comparison.controller_events}
        assert reasons <= {
            "incumbent-optimal",
            "constraint-rescue",
            "amortized-saving",
            "migration-too-costly",
        }

    def test_post_adoption_steady_batches_meet_constraint(self, phase_shift):
        comparison, _ = phase_shift
        spec = comparison.spec
        adopted_windows = [
            event.window_index
            for event in comparison.controller_events
            if event.adopted
        ]
        assert adopted_windows
        # The swap happens after the adopting window drains, so batches
        # from the next window onward run the new plan.
        first_new_batch = (adopted_windows[0] + 1) * spec.window_batches
        steady_after = [
            batch
            for batch in comparison.adaptive.batches
            if batch.batch_index > first_new_batch
            and batch.batch_index % spec.window_batches != 0
        ]
        assert steady_after
        assert not any(batch.violated for batch in steady_after)

    def test_static_arm_recorded_no_replans(self, phase_shift):
        comparison, _ = phase_shift
        assert comparison.static.replans == 0
        assert comparison.static.plans_adopted == 0
        assert comparison.static.migration_pause_us == 0.0
        assert len(set(comparison.static.plan_descriptions)) == 1

    def test_trace_records_replan_and_migration(self, phase_shift):
        _, trace = phase_shift
        names = [event.name for event in trace.events]
        assert "replan" in names
        assert "plan-migration" in names
        assert trace.replans >= 1
        assert trace.plan_migrations >= 1
        assert trace.migration_pause_us > 0.0

    def test_trace_passes_invariants(self, phase_shift):
        from repro.analysis.verify import (
            iter_recorder_events,
            verify_trace_events,
        )

        _, trace = phase_shift
        findings = verify_trace_events(iter_recorder_events(trace))
        assert not [f for f in findings if f.severity == "error"]

    def test_session_is_deterministic(self, phase_shift):
        comparison, _ = phase_shift
        again = run_adaptive_session(spec=SessionSpec(scenario="phase-shift"))
        assert again.adaptive.batches == comparison.adaptive.batches
        assert again.static.batches == comparison.static.batches
        assert again.controller_events == comparison.controller_events


class TestSessionController:
    def test_no_drift_no_decision(self, model, context):
        from repro.runtime.executor import WindowObservation

        # A stream that replays the profiled statistics verbatim never
        # trips the drift trigger.
        per_batch = context.profile.per_batch_step_costs
        stream = [per_batch[i % len(per_batch)] for i in range(6)]
        controller = SessionController(model, stream, 8192)
        decision = controller.on_window(
            WindowObservation(
                window_index=0,
                batch_start=0,
                batch_count=3,
                now_us=1000.0,
                latencies_us_per_byte=(1.0, 1.0, 1.0),
            )
        )
        assert decision is None
        assert controller.replans == 0
        assert controller.events == []
