"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def sample_file(tmp_path, rng):
    path = tmp_path / "input.bin"
    path.write_bytes(rng.integers(0, 1000, 4096, dtype=np.uint32).tobytes())
    return path


class TestCompressDecompress:
    def test_round_trip(self, tmp_path, sample_file, capsys):
        compressed = tmp_path / "out.cz"
        restored = tmp_path / "back.bin"
        assert main(
            ["compress", "tcomp32", str(sample_file), str(compressed)]
        ) == 0
        assert main(
            ["decompress", "tcomp32", str(compressed), str(restored)]
        ) == 0
        assert restored.read_bytes() == sample_file.read_bytes()
        output = capsys.readouterr().out
        assert "frames" in output and "ratio" in output

    def test_partial_word_tail_padded(self, tmp_path, capsys):
        source = tmp_path / "odd.bin"
        source.write_bytes(b"\x01\x02\x03\x04\x05")  # 5 bytes
        compressed = tmp_path / "odd.cz"
        restored = tmp_path / "odd.back"
        main(["compress", "tcomp32", str(source), str(compressed)])
        main(["decompress", "tcomp32", str(compressed), str(restored)])
        back = restored.read_bytes()
        assert back.startswith(source.read_bytes())
        assert len(back) == 8  # padded to the next word

    def test_stateful_codec_round_trip(self, tmp_path, sample_file):
        compressed = tmp_path / "out.tz"
        restored = tmp_path / "back.bin"
        main(["compress", "tdic32", str(sample_file), str(compressed)])
        main(["decompress", "tdic32", str(compressed), str(restored)])
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_missing_input_is_error_not_traceback(self, tmp_path, capsys):
        code = main(
            ["compress", "lz4", str(tmp_path / "nope"), str(tmp_path / "o")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_wrong_codec_on_decompress_fails_cleanly(
        self, tmp_path, sample_file, capsys
    ):
        compressed = tmp_path / "out.cz"
        main(["compress", "tdic32", str(sample_file), str(compressed)])
        code = main(
            ["decompress", "tcomp32", str(compressed), str(tmp_path / "x")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPlanAndSimulate:
    def test_plan_prints_chart(self, capsys):
        assert main(
            ["plan", "tcomp32", "rovio", "--batch-bytes", "8192"]
        ) == 0
        output = capsys.readouterr().out
        assert "decomposition:  t0[s0+s1] -> t1[s2]" in output
        assert "bottleneck" in output
        assert "core 4" in output

    def test_plan_on_jetson(self, capsys):
        assert main(
            ["plan", "tdic32", "stock", "--board", "jetson",
             "--batch-bytes", "8192"]
        ) == 0
        assert "Jetson" in capsys.readouterr().out

    def test_simulate_reports_metrics(self, capsys):
        assert main(
            ["simulate", "tcomp32", "rovio", "--repetitions", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "energy" in output and "CLCV" in output

    def test_simulate_baseline_mechanism(self, capsys):
        assert main(
            ["simulate", "tcomp32", "rovio", "--mechanism", "LO",
             "--repetitions", "3"]
        ) == 0


class TestBoards:
    def test_lists_both_boards(self, capsys):
        assert main(["boards"]) == 0
        output = capsys.readouterr().out
        assert "rk3399" in output and "jetson" in output


class TestBench:
    def test_listing_forwarded(self, capsys):
        assert main(["bench"]) == 0
        output = capsys.readouterr().out
        assert "fig7" in output and "abl_guard" in output

    def test_experiment_with_jobs_and_cache(self, tmp_path, capsys):
        assert main(
            [
                "bench", "fig17",
                "--repetitions", "2",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "break-down" in output
        assert "cache:" in output
        # Second invocation is served entirely from the persistent cache.
        assert main(
            [
                "bench", "fig17",
                "--repetitions", "2",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "4 hits / 4 lookups" in capsys.readouterr().out


class TestServe:
    def test_compare_prints_all_arms_and_writes_health(
        self, tmp_path, capsys
    ):
        health_path = tmp_path / "fleet.json"
        assert main(
            [
                "serve", "--compare", "--windows", "8",
                "--health-out", str(health_path),
            ]
        ) == 0
        output = capsys.readouterr().out
        for arm in ("static", "shed ", "shed-failover"):
            assert arm in output
        assert "failovers=1" in output
        payload = health_path.read_text()
        assert '"schema_version": 2' in payload

    def test_top_renders_fleet_report(self, tmp_path, capsys):
        health_path = tmp_path / "fleet.json"
        prom_path = tmp_path / "fleet.prom"
        main(
            [
                "serve", "--arm", "shed-failover", "--windows", "8",
                "--health-out", str(health_path),
            ]
        )
        capsys.readouterr()
        assert main(
            ["top", str(health_path), "--prom", str(prom_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "breaker" in output
        assert "DEAD" in output  # the crashed board
        assert "tenant-0" in output
        prom = prom_path.read_text()
        assert "cstream_fleet_board_alive" in prom
        assert "cstream_fleet_tenant_l_set_us_per_byte" in prom

    def test_serve_top_flag_prints_dashboard(self, capsys):
        assert main(
            ["serve", "--arm", "static", "--windows", "6", "--top"]
        ) == 0
        output = capsys.readouterr().out
        assert "window 5" in output
        assert "rk3399-0" in output

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--scenario", "meteor-strike"])


class TestAdaptDefaults:
    def test_jetson_gets_its_own_default_l_set(self, capsys):
        assert main(
            ["adapt", "--board", "jetson", "--batches", "6"]
        ) == 0
        output = capsys.readouterr().out
        assert "L_set=8.0" in output
        assert "Jetson" in output

    def test_rk3399_default_unchanged(self, capsys):
        assert main(["adapt", "--batches", "6"]) == 0
        output = capsys.readouterr().out
        assert "L_set=20.0" in output

    def test_explicit_constraint_wins(self, capsys):
        assert main(
            [
                "adapt", "--board", "jetson", "--batches", "6",
                "--latency-constraint", "11.5",
            ]
        ) == 0
        assert "L_set=11.5" in capsys.readouterr().out
