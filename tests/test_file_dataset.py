"""File-backed trace datasets."""

import pytest

from repro.datasets import FileDataset, get_dataset
from repro.errors import DatasetError


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "capture.bin"
    payload = get_dataset("rovio").generate(4096, seed=9)
    path.write_bytes(payload)
    return path, payload


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            FileDataset(str(tmp_path / "nope.bin"))

    def test_too_small_file(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"ab")
        with pytest.raises(DatasetError):
            FileDataset(str(path), tuple_bytes=16)

    def test_invalid_tuple_bytes(self, trace_file):
        path, _ = trace_file
        with pytest.raises(DatasetError):
            FileDataset(str(path), tuple_bytes=0)


class TestReading:
    def test_zero_bytes(self, trace_file):
        path, _ = trace_file
        assert FileDataset(str(path)).generate(0) == b""

    def test_content_comes_from_file(self, trace_file):
        path, payload = trace_file
        dataset = FileDataset(str(path), tuple_bytes=16)
        data = dataset.generate(1024, seed=0)
        assert len(data) == 1024
        # Every tuple of the output exists somewhere in the capture.
        ring = payload + payload
        for offset in range(0, 1024, 16):
            assert data[offset:offset + 16] in ring

    def test_seed_controls_phase(self, trace_file):
        path, _ = trace_file
        dataset = FileDataset(str(path), tuple_bytes=16)
        assert dataset.generate(256, seed=1) != dataset.generate(256, seed=2)

    def test_wraps_when_repeat(self, trace_file):
        path, payload = trace_file
        dataset = FileDataset(str(path), tuple_bytes=16)
        data = dataset.generate(len(payload) * 3, seed=0)
        assert len(data) == len(payload) * 3

    def test_norepeat_rejects_overread(self, trace_file):
        path, payload = trace_file
        dataset = FileDataset(str(path), tuple_bytes=16, repeat=False)
        with pytest.raises(DatasetError):
            dataset.generate(len(payload) * 2, seed=0)

    def test_trailing_partial_tuple_ignored(self, tmp_path):
        path = tmp_path / "ragged.bin"
        path.write_bytes(bytes(100))  # 6 x 16 = 96 usable
        dataset = FileDataset(str(path), tuple_bytes=16)
        assert dataset._usable_bytes == 96


class TestEndToEnd:
    def test_cstream_runs_on_a_trace(self, trace_file):
        from repro import CStream

        path, _ = trace_file
        framework = CStream(
            codec="lz4",
            dataset=FileDataset(str(path), tuple_bytes=16),
            batch_size=2048,
            latency_constraint_us_per_byte=26.0,
            profile_batches=3,
        )
        result = framework.run(repetitions=3, batches_per_repetition=4)
        assert result.mean_energy_uj_per_byte > 0
