"""Cache-aware roofline derivation."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.memory import (
    CacheHierarchy,
    CoreMicroarchitecture,
    derive_roofline,
    instructions_per_microsecond,
)


def little_core():
    """An A53-flavoured in-order core."""
    return CoreMicroarchitecture(
        frequency_mhz=1416.0, peak_ipc=2.0, in_order=True
    )


def big_core():
    """An A72-flavoured out-of-order core."""
    return CoreMicroarchitecture(
        frequency_mhz=1800.0,
        peak_ipc=3.0,
        in_order=False,
        hierarchy=CacheHierarchy(l2_kb=1024.0),
    )


class TestValidation:
    def test_cache_sizes_positive(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(l1d_kb=0)

    def test_costs_must_increase(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(l1_cycles=30.0, l2_cycles=21.0)

    def test_core_parameters_positive(self):
        with pytest.raises(ConfigurationError):
            CoreMicroarchitecture(frequency_mhz=0, peak_ipc=1, in_order=True)

    def test_kappa_positive(self):
        with pytest.raises(ValueError):
            instructions_per_microsecond(little_core(), 0.0)


class TestModelShape:
    def test_memory_bound_at_low_kappa(self):
        core = big_core()
        low = instructions_per_microsecond(core, 5.0)
        issue_bound = core.peak_ipc * core.frequency_mhz
        assert low < issue_bound / 10

    def test_issue_bound_at_high_kappa(self):
        core = big_core()
        assert instructions_per_microsecond(core, 450.0) == pytest.approx(
            core.peak_ipc * core.frequency_mhz
        )

    def test_monotone_for_out_of_order(self):
        core = big_core()
        values = [
            instructions_per_microsecond(core, k) for k in range(5, 480, 5)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_in_order_stall_band(self):
        """The A53's defining feature: η dips in a mid-κ band."""
        core = little_core()
        before = instructions_per_microsecond(core, 45.0)
        inside = instructions_per_microsecond(core, 68.0)
        after = instructions_per_microsecond(core, 200.0)
        assert inside < before or inside < after

    def test_out_of_order_has_no_stall_band(self):
        in_order = little_core()
        out_of_order = CoreMicroarchitecture(
            frequency_mhz=1416.0, peak_ipc=2.0, in_order=False
        )
        for kappa in (50.0, 60.0, 68.0):
            assert instructions_per_microsecond(
                out_of_order, kappa
            ) >= instructions_per_microsecond(in_order, kappa)

    def test_bigger_core_faster_everywhere(self):
        for kappa in (10.0, 60.0, 150.0, 400.0):
            assert instructions_per_microsecond(
                big_core(), kappa
            ) > instructions_per_microsecond(little_core(), kappa) * 0.99

    def test_faster_dram_helps_streaming_code(self):
        slow = CoreMicroarchitecture(
            frequency_mhz=1416.0, peak_ipc=2.0, in_order=True,
            hierarchy=CacheHierarchy(dram_cycles=260.0),
        )
        fast = little_core()
        assert instructions_per_microsecond(
            fast, 5.0
        ) > instructions_per_microsecond(slow, 5.0)


class TestDeriveRoofline:
    def test_four_segments_fitted(self):
        fit = derive_roofline(big_core())
        assert fit.segment_count == 4

    def test_roof_matches_issue_bound(self):
        core = big_core()
        fit = derive_roofline(core)
        assert fit.value(490.0) == pytest.approx(
            core.peak_ipc * core.frequency_mhz, rel=0.05
        )

    def test_breakpoints_near_pressure_kappas(self):
        """The fitted knees land near the configured cache-pressure
        boundaries — the rk3399's published 30/70 shape."""
        fit = derive_roofline(little_core(), samples=240)
        assert any(abs(b - 30) < 15 for b in fit.boundaries)
        assert any(abs(b - 70) < 25 for b in fit.boundaries)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_roofline(big_core(), samples=4)

    def test_fit_tracks_model(self):
        core = little_core()
        fit = derive_roofline(core, samples=240)
        for kappa in (10.0, 50.0, 120.0, 300.0):
            assert fit.value(kappa) == pytest.approx(
                instructions_per_microsecond(core, kappa), rel=0.25
            )
