"""Measurement record aggregation (CLCV, E_mes)."""

import pytest

from repro.runtime.metrics import BatchMetrics, RepetitionResult, RunResult


def make_repetition(index, latency, energy, violated):
    batch = BatchMetrics(
        batch_index=0,
        latency_us_per_byte=latency,
        energy_uj_per_byte=energy,
        violated=violated,
    )
    return RepetitionResult(
        repetition=index,
        batches=(batch,),
        latency_us_per_byte=latency,
        energy_uj_per_byte=energy,
        violated=violated,
    )


class TestRunResult:
    def test_clcv_fraction(self):
        repetitions = tuple(
            make_repetition(i, 20.0, 0.4, i < 3) for i in range(10)
        )
        assert RunResult(repetitions).clcv == pytest.approx(0.3)

    def test_clcv_empty(self):
        assert RunResult(()).clcv == 0.0

    def test_clcv_zero_when_no_violations(self):
        repetitions = tuple(
            make_repetition(i, 20.0, 0.4, False) for i in range(5)
        )
        assert RunResult(repetitions).clcv == 0.0

    def test_mean_energy(self):
        repetitions = (
            make_repetition(0, 20.0, 0.3, False),
            make_repetition(1, 20.0, 0.5, False),
        )
        assert RunResult(repetitions).mean_energy_uj_per_byte == (
            pytest.approx(0.4)
        )

    def test_mean_latency(self):
        repetitions = (
            make_repetition(0, 10.0, 0.4, False),
            make_repetition(1, 30.0, 0.4, True),
        )
        assert RunResult(repetitions).mean_latency_us_per_byte == (
            pytest.approx(20.0)
        )

    def test_p99_latency(self):
        repetitions = tuple(
            make_repetition(i, float(i), 0.4, False) for i in range(100)
        )
        assert RunResult(repetitions).p99_latency_us_per_byte == (
            pytest.approx(98.01)
        )

    def test_summary_contains_metrics(self):
        result = RunResult((make_repetition(0, 21.5, 0.41, False),))
        summary = result.summary()
        assert "0.41" in summary and "21.5" in summary and "CLCV" in summary
