"""Shared fixtures for the test suite.

Tests use small batches (a few KiB) so the pure-Python codecs stay fast;
all metrics are batch-normalized, so behaviour matches larger batches.
Expensive artifacts (board, profiles, contexts) are session-scoped.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Every plan the scheduler hands out during tests is double-checked
# against the PLN invariants (repro.analysis.verify); setdefault so a
# developer can still opt out with REPRO_VALIDATE_PLANS=0.
os.environ.setdefault("REPRO_VALIDATE_PLANS", "1")

from repro.bench.harness import Harness, WorkloadSpec
from repro.core.baselines import WorkloadContext
from repro.core.profiler import profile_workload
from repro.compression import get_codec
from repro.datasets import get_dataset
from repro.simcore.boards import rk3399

TEST_BATCH_BYTES = 8192
TEST_LATENCY_CONSTRAINT = 26.0


@pytest.fixture(scope="session")
def board():
    return rk3399()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def rovio_data():
    return get_dataset("rovio").generate(TEST_BATCH_BYTES, seed=7)


@pytest.fixture(scope="session")
def stock_data():
    return get_dataset("stock").generate(TEST_BATCH_BYTES, seed=7)


@pytest.fixture(scope="session")
def sensor_data():
    return get_dataset("sensor").generate(TEST_BATCH_BYTES, seed=7)


@pytest.fixture(scope="session")
def tcomp32_rovio_profile(board):
    return profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), TEST_BATCH_BYTES, batches=4
    )


@pytest.fixture(scope="session")
def tcomp32_rovio_context(board, tcomp32_rovio_profile):
    return WorkloadContext.build(
        board, tcomp32_rovio_profile, TEST_LATENCY_CONSTRAINT
    )


@pytest.fixture(scope="session")
def tdic32_rovio_context(board):
    profile = profile_workload(
        get_codec("tdic32"), get_dataset("rovio"), TEST_BATCH_BYTES, batches=4
    )
    return WorkloadContext.build(board, profile, TEST_LATENCY_CONSTRAINT)


@pytest.fixture(scope="session")
def small_harness(board):
    """A harness with few repetitions/batches for integration tests."""
    return Harness(
        board=board,
        repetitions=8,
        batches_per_repetition=5,
        profile_batches=3,
    )


@pytest.fixture(scope="session")
def tcomp32_rovio_spec():
    return WorkloadSpec.of("tcomp32", "rovio", batch_size=TEST_BATCH_BYTES)
