"""The ``cstream trace`` subcommand."""

import json


from repro.cli import main
from repro.obs.check import validate_trace


class TestTraceCommand:
    def test_cell_by_codec_dataset(self, tmp_path, capsys):
        out = tmp_path / "cell.trace.json"
        assert main([
            "trace", "tcomp32", "rovio",
            "--repetitions", "1", "--batch-bytes", "8192",
            "--out", str(out),
        ]) == 0
        output = capsys.readouterr().out
        assert "context switches/MB" in output
        assert "occupancy" in output
        with open(out) as source:
            assert validate_trace(json.load(source)) == []

    def test_experiment_alias_and_gantt(self, tmp_path, capsys):
        out = tmp_path / "fig7.trace.json"
        assert main([
            "trace", "fig7",
            "--mechanism", "OS", "--governor", "ondemand",
            "--repetitions", "1", "--batch-bytes", "8192",
            "--out", str(out), "--gantt",
        ]) == 0
        output = capsys.readouterr().out
        assert "DVFS transitions" in output
        assert "core 0" in output  # gantt rows
        payload = json.loads(out.read_text())
        assert payload["otherData"]["context_switches_per_mb"] > 10_000

    def test_unknown_experiment_errors(self, tmp_path, capsys):
        assert main(["trace", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_too_many_targets_errors(self, capsys):
        assert main(["trace", "a", "b", "c"]) == 1
        capsys.readouterr()
