"""Tracing must observe, never perturb.

The tentpole guarantee of the observability layer: a traced run's
simulated numbers are byte-identical to the untraced run's, and traced
runs are themselves deterministic (same seed, same event stream). Plus
the paper-shape diagnostics the trace makes measurable: the OS baseline
context-switches orders of magnitude more per MB than CStream (§VI-B),
and an ondemand-governed OS cell shows nonzero context-switch,
migration and DVFS counters.
"""

import json

import pytest

from repro.bench.cache import ResultCache
from repro.bench.harness import Harness, WorkloadSpec
from repro.obs.export import chrome_trace
from repro.obs.check import validate_trace

BATCH = 8192


def make_harness(**kwargs):
    kwargs.setdefault("repetitions", 2)
    kwargs.setdefault("batches_per_repetition", 4)
    kwargs.setdefault("cache", None)
    return Harness(**kwargs)


def spec_of(codec="tcomp32", dataset="rovio"):
    return WorkloadSpec.of(codec, dataset, batch_size=BATCH)


class TestTracedEqualsUntraced:
    @pytest.mark.parametrize("mechanism", ["CStream", "OS", "RR"])
    def test_same_numbers(self, mechanism):
        plain = make_harness().run(spec_of(), mechanism)
        traced, recorder = make_harness().run_traced(spec_of(), mechanism)
        assert traced.repetitions == plain.repetitions
        assert traced == plain  # trace_summary is comparison-neutral
        assert traced.trace_summary is not None
        assert plain.trace_summary is None
        assert recorder.events

    def test_same_numbers_under_ondemand_governor(self):
        plain = make_harness().run(spec_of(), "OS", governor="ondemand")
        traced, _ = make_harness().run_traced(
            spec_of(), "OS", governor="ondemand"
        )
        assert traced.repetitions == plain.repetitions

    def test_two_traced_runs_identical_event_streams(self):
        _, first = make_harness().run_traced(spec_of(), "CStream")
        _, second = make_harness().run_traced(spec_of(), "CStream")
        assert first.events == second.events
        assert first.summary() == second.summary()

    def test_process_events_add_detail_not_perturbation(self):
        baseline, quiet = make_harness().run_traced(spec_of(), "CStream")
        verbose_result, verbose = make_harness().run_traced(
            spec_of(), "CStream", process_events=True
        )
        assert verbose_result.repetitions == baseline.repetitions
        assert len(verbose.events) > len(quiet.events)
        assert any(e.category == "process" for e in verbose.events)


class TestPaperShape:
    """Satellite: the §VI-B context-switch diagnostic."""

    def test_os_switches_orders_of_magnitude_more_than_cstream(self):
        os_result, _ = make_harness().run_traced(spec_of(), "OS")
        cs_result, _ = make_harness().run_traced(spec_of(), "CStream")
        os_rate = os_result.trace_summary.context_switches_per_mb
        cs_rate = cs_result.trace_summary.context_switches_per_mb
        # paper: ~60 000/MB under CFS vs ~10/MB per CStream stage
        assert os_rate > 10_000
        assert cs_rate < 1_000
        assert os_rate / cs_rate > 100

    def test_acceptance_cell_counters_and_export(self, tmp_path):
        """ISSUE acceptance: traced OS cell with the ondemand governor
        has nonzero switch/migration/DVFS counters and a valid trace."""
        result, recorder = make_harness().run_traced(
            spec_of(), "OS", governor="ondemand"
        )
        summary = result.trace_summary
        assert summary.context_switches > 0
        assert summary.migrations > 0
        assert summary.dvfs_transitions > 0
        assert summary.queue_depth_highwater >= 1
        assert 0.0 < max(summary.occupancy().values()) <= 1.0

        payload = chrome_trace(recorder, board=make_harness().board)
        assert validate_trace(payload) == []

    def test_cstream_scheduler_stats_surface_in_summary(self):
        result, _ = make_harness().run_traced(spec_of(), "CStream")
        stats = dict(result.trace_summary.scheduler)
        assert stats["plans_evaluated"] >= 1
        assert stats["nodes_expanded"] >= 1
        assert stats["wall_clock_s"] >= 0


class TestHarnessTraceRouting:
    def test_trace_dir_writes_one_valid_file_per_computed_cell(
        self, tmp_path
    ):
        harness = make_harness(trace_dir=str(tmp_path / "traces"))
        harness.run(spec_of(), "RR")
        files = list((tmp_path / "traces").glob("*.trace.json"))
        assert len(files) == 1
        assert "tcomp32-rovio-RR" in files[0].name
        with open(files[0]) as source:
            assert validate_trace(json.load(source)) == []
        # a second run hits the in-memory cache: no new file
        harness.run(spec_of(), "RR")
        assert len(list((tmp_path / "traces").glob("*.trace.json"))) == 1

    def test_run_traced_upgrades_cached_entry_with_summary(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        harness = make_harness(cache=cache)
        plain = harness.run(spec_of(), "BO")
        assert plain.trace_summary is None
        traced, _ = harness.run_traced(spec_of(), "BO")
        assert traced == plain
        fresh = make_harness(cache=ResultCache(tmp_path / "cache"))
        served = fresh.run(spec_of(), "BO")
        assert served.trace_summary is not None
        assert served == plain


class TestPercentiles:
    """Satellite: tail percentiles on RunResult."""

    def test_percentiles_bracket_the_mean(self):
        result = make_harness(repetitions=8).run(spec_of(), "CStream")
        p50 = result.p50_latency_us_per_byte
        p95 = result.p95_latency_us_per_byte
        p99 = result.p99_latency_us_per_byte
        assert p50 <= p95 <= p99
        assert p99 <= max(
            r.latency_us_per_byte for r in result.repetitions
        ) + 1e-9
        assert result.p50_energy_uj_per_byte <= result.p99_energy_uj_per_byte
        assert "p95" in result.summary() and "p99" in result.summary()

    def test_single_repetition_percentiles_collapse(self):
        result = make_harness(repetitions=1).run(spec_of(), "RR")
        only = result.repetitions[0].latency_us_per_byte
        assert result.p50_latency_us_per_byte == pytest.approx(only)
        assert result.p99_latency_us_per_byte == pytest.approx(only)
