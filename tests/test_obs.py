"""Unit tests for the observability package (repro.obs).

Recorder aggregation, Chrome trace export, the dependency-free schema
checker, and the process-wide metrics registry.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    active_recorder,
    chrome_trace,
    diff_snapshots,
    set_active_recorder,
    write_chrome_trace,
)
from repro.obs.check import main as check_main, validate_trace
from repro.obs.trace import TID_GOVERNOR, TID_OS_SCHED, TID_RUNTIME
from repro.simcore.boards import rk3399


def small_recorder() -> TraceRecorder:
    """A hand-driven recorder standing in for one 2-batch repetition."""
    recorder = TraceRecorder()
    recorder.begin_repetition(0)
    # Emission order follows simulated time per track, as the DES would
    # produce it — repro.analysis.verify checks this (TRC001) via
    # repro.obs.check on every exported trace.
    recorder.span("compress", 1, 0.0, 100.0, batch=0)
    recorder.queue_depth("q.s1r0.p0", 3, 50.0)
    recorder.dvfs_transition(1, 1416.0, 1800.0, 60.0)
    recorder.fault(2, 80.0, 600.0)
    recorder.queue_depth("q.s1r0.p0", 1, 90.0)
    recorder.energy_sample("busy", 40.0, 100.0)
    recorder.energy_sample("overhead", 2.0, 100.0)
    recorder.span("flush", 2, 100.0, 140.0, batch=0)
    recorder.span("compress", 1, 120.0, 220.0, batch=1)
    recorder.batch_complete(0, 140.0)
    recorder.migration(2, 150.0)
    recorder.context_switch(1, 2.5, 220.0)
    recorder.context_switch(2, 1.0, 230.0, duration_us=10.0)
    recorder.batch_complete(1, 240.0)
    recorder.end_repetition(window_us=240.0, batch_bytes=1 << 19, batches=2)
    return recorder


class TestTraceRecorder:
    def test_span_accumulates_core_busy(self):
        recorder = small_recorder()
        # two compress spans + the 10 µs ctx-switch stall on core 2
        busy = recorder.core_busy_us
        assert busy[1] == pytest.approx(200.0)
        assert busy[2] == pytest.approx(40.0 + 10.0)

    def test_context_switches_accumulate_fractionally(self):
        recorder = small_recorder()
        assert recorder.context_switches == pytest.approx(3.5)

    def test_queue_highwater_keeps_maximum(self):
        recorder = small_recorder()
        assert recorder.queue_highwater["q.s1r0.p0"] == 3

    def test_summary_per_mb_math(self):
        summary = small_recorder().summary()
        # 2 batches x 512 KiB = 1 MiB processed
        assert summary.megabytes == pytest.approx(1.0)
        assert summary.context_switches_per_mb == pytest.approx(3.5)
        assert summary.migrations_per_mb == pytest.approx(1.0)
        assert summary.queue_depth_highwater == 3
        assert summary.dvfs_transitions == 1
        assert summary.fault_injections == 1
        assert summary.energy_busy_uj == pytest.approx(40.0)
        assert summary.energy_overhead_uj == pytest.approx(2.0)

    def test_occupancy_fraction_of_window(self):
        summary = small_recorder().summary()
        occupancy = summary.occupancy()
        assert occupancy[1] == pytest.approx(200.0 / 240.0)

    def test_empty_recorder_summary_is_all_zero(self):
        summary = TraceRecorder().summary()
        assert summary.context_switches_per_mb == 0.0
        assert summary.migrations_per_mb == 0.0
        assert summary.queue_depth_highwater == 0
        assert summary.occupancy() == {}

    def test_format_lists_counters_and_scheduler(self):
        summary = small_recorder().summary(
            scheduler=(("nodes_expanded", 12.0),)
        )
        text = summary.format(board=rk3399())
        assert "context switches/MB" in text
        assert "DVFS transitions" in text
        assert "(little) occupancy" in text
        assert "scheduler nodes_expanded" in text

    def test_process_events_off_by_default(self):
        recorder = TraceRecorder()
        assert not recorder.process_events

    def test_ambient_recorder_roundtrip(self):
        recorder = TraceRecorder()
        assert active_recorder() is None
        set_active_recorder(recorder)
        try:
            assert active_recorder() is recorder
        finally:
            set_active_recorder(None)
        assert active_recorder() is None

    def test_synthetic_tracks_do_not_collide_with_cores(self):
        board = rk3399()
        core_ids = {core.core_id for core in board.cores}
        assert not core_ids & {TID_GOVERNOR, TID_OS_SCHED, TID_RUNTIME}


class TestChromeExport:
    def test_payload_shape(self):
        payload = chrome_trace(small_recorder(), board=rk3399())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases <= {"X", "i", "C", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and all("dur" in e for e in complete)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all(
            isinstance(value, (int, float))
            for e in counters for value in e["args"].values()
        )
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_metadata_names_cores_and_tracks(self):
        payload = chrome_trace(small_recorder(), board=rk3399())
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert any("little" in name or "big" in name for name in names)
        assert any("governor" in name.lower() for name in names)

    def test_other_data_carries_headline_counters(self):
        payload = chrome_trace(small_recorder())
        other = payload["otherData"]
        assert other["context_switches_per_mb"] == pytest.approx(3.5)
        assert other["migrations"] == 1

    def test_write_is_valid_json_and_validates(self, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(small_recorder(), path, board=rk3399())
        with open(path) as source:
            payload = json.load(source)
        assert validate_trace(payload) == []


class TestChecker:
    def test_accepts_good_trace(self):
        assert validate_trace(chrome_trace(small_recorder())) == []

    def test_rejects_missing_events(self):
        assert validate_trace({}) != []
        assert validate_trace({"traceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        payload = chrome_trace(small_recorder())
        payload["traceEvents"][0] = dict(
            payload["traceEvents"][0], ph="Z"
        )
        assert any("phase" in p for p in validate_trace(payload))

    def test_rejects_complete_event_without_duration(self):
        bad = {
            "traceEvents": [
                {"name": "t", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
            ]
        }
        assert validate_trace(bad) != []

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_chrome_trace(small_recorder(), good)
        assert check_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": []}')
        assert check_main([str(bad)]) == 1
        assert check_main([]) == 2
        capsys.readouterr()


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("cells")
        registry.inc("cells", 2.0)
        assert registry.counter("cells") == 3.0
        assert registry.counter("absent") == 0.0

    def test_timer_accumulates(self):
        registry = MetricsRegistry()
        registry.observe("phase", 0.5)
        registry.observe("phase", 1.5)
        snapshot = registry.snapshot()
        entry = snapshot["timers"]["phase"]
        assert entry["count"] == 2
        assert entry["total_s"] == pytest.approx(2.0)
        assert entry["min_s"] == pytest.approx(0.5)
        assert entry["max_s"] == pytest.approx(1.5)
        assert registry.timer_total("phase") == pytest.approx(2.0)

    def test_timer_context_manager_measures(self):
        registry = MetricsRegistry()
        with registry.timer("work"):
            pass
        assert registry.timer_total("work") >= 0.0
        assert registry.snapshot()["timers"]["work"]["count"] == 1

    def test_diff_snapshots_isolates_interval(self):
        registry = MetricsRegistry()
        registry.inc("n", 5)
        registry.observe("t", 1.0)
        before = registry.snapshot()
        registry.inc("n", 2)
        registry.observe("t", 0.25)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"] == {"n": 2}
        assert delta["timers"]["t"]["count"] == 1
        assert delta["timers"]["t"]["total_s"] == pytest.approx(0.25)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.observe("t", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {} and snapshot["timers"] == {}

    def test_series_quantiles_and_edge_cases(self):
        from repro.obs import quantile

        registry = MetricsRegistry()
        # Empty series: a well-defined value, not an IndexError.
        assert registry.percentile("absent", 0.5) == 0.0
        assert quantile([], 0.99) == 0.0
        # Single sample: every quantile is that sample.
        registry.record("lat", 7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert registry.percentile("lat", q) == 7.0
        # Interpolation between samples, q clamped to [0, 1].
        registry.record("lat", 9.0)
        assert registry.percentile("lat", 0.5) == pytest.approx(8.0)
        assert registry.percentile("lat", -3.0) == 7.0
        assert registry.percentile("lat", 42.0) == 9.0
        assert registry.series("lat") == [7.0, 9.0]
        registry.reset()
        assert registry.series("lat") == []


def _window_record(index=0, **overrides):
    record = {
        "window_index": index,
        "measured_latency_us_per_byte": 24.0,
        "predicted_latency_us_per_byte": 20.0,
        "latency_residual_us_per_byte": 4.0,
        "measured_energy_uj_per_byte": 0.4,
        "predicted_energy_uj_per_byte": 0.35,
        "energy_residual_uj_per_byte": 0.05,
        "components": [
            {"kind": "path", "key": "c1",
             "residual_us_per_byte": 3.5, "score": 9.0},
            {"kind": "core", "key": "4",
             "residual_us_per_byte": 0.4, "score": 0.5},
        ],
        "unattributed_us_per_byte": 0.1,
        "violated": True,
        "anomalous": True,
        "attribution": {
            "kind": "path", "key": "c1", "score": 9.0,
            "residual_us_per_byte": 3.5, "confidence": 0.94,
        },
    }
    record.update(overrides)
    return record


def _session_payload(windows=None):
    return {
        "schema_version": 1,
        "label": "chaos:interconnect",
        "board": "Radxa RockPi 4a",
        "latency_constraint_us_per_byte": 33.0,
        "windows": windows if windows is not None else [_window_record()],
    }


class TestHealthSchema:
    def test_valid_session_passes(self):
        from repro.obs.check import validate_health

        assert validate_health(_session_payload()) == []

    def test_missing_field_rejected(self):
        from repro.obs.check import validate_health

        window = _window_record()
        del window["violated"]
        findings = validate_health(_session_payload([window]))
        assert any("violated" in f for f in findings)

    def test_extra_field_rejected(self):
        from repro.obs.check import validate_health

        findings = validate_health(
            _session_payload([_window_record(surprise=1)])
        )
        assert any("surprise" in f for f in findings)

    def test_non_finite_residual_rejected(self):
        from repro.obs.check import validate_health

        bad = _window_record(latency_residual_us_per_byte=float("nan"))
        findings = validate_health(_session_payload([bad]))
        assert findings
        assert any("finite" in f for f in findings)

    def test_unknown_component_kind_rejected(self):
        from repro.obs.check import validate_health

        window = _window_record()
        window["components"][0]["kind"] = "gremlin"
        findings = validate_health(_session_payload([window]))
        assert any("gremlin" in f for f in findings)

    def test_cli_health_mode(self, tmp_path, capsys):
        good = tmp_path / "health.json"
        good.write_text(json.dumps(_session_payload()))
        assert check_main(["--health", str(good)]) == 0
        bad = tmp_path / "bad.json"
        payload = _session_payload([_window_record(surprise=1)])
        bad.write_text(json.dumps(payload))
        assert check_main(["--health", str(bad)]) == 1
        capsys.readouterr()

    def test_cli_health_ndjson_lines(self, tmp_path, capsys):
        tail = tmp_path / "health.ndjson"
        tail.write_text(
            json.dumps(_window_record(0)) + "\n"
            + json.dumps(_window_record(1)) + "\n"
        )
        assert check_main(["--health", str(tail)]) == 0
        capsys.readouterr()


class TestHealthRoundTrip:
    def _session(self):
        from repro.obs import SessionHealth

        return SessionHealth.from_json(json.dumps(_session_payload(
            [_window_record(0),
             _window_record(1, anomalous=False, attribution=None,
                            violated=False)]
        )))

    def test_json_round_trip(self):
        from repro.obs import SessionHealth

        session = self._session()
        again = SessionHealth.from_json(session.to_json())
        assert again == session
        assert again.dominant().key == "c1"
        assert len(again.anomalous_windows()) == 1
        assert again.finite()

    def test_ndjson_round_trip(self, tmp_path):
        import io

        from repro.obs import NdjsonTail, read_ndjson

        session = self._session()
        buffer = io.StringIO()
        NdjsonTail(buffer).emit_session(session)
        windows = read_ndjson(buffer.getvalue().splitlines() + ["", "  "])
        assert tuple(windows) == session.windows

    def test_prometheus_text_exposes_session_and_registry(self):
        from repro.obs import prometheus_text

        registry = MetricsRegistry()
        registry.inc("cells", 3)
        registry.observe("phase", 0.5)
        text = prometheus_text(self._session(), registry)
        assert 'cstream_windows_total{session="chaos:interconnect"} 2' in text
        assert "cstream_windows_violated_total" in text
        assert 'kind="path",key="c1"' in text
        assert "cstream_registry_cells 3" in text
        assert "cstream_registry_phase_seconds_count 1" in text

    def test_render_top_lists_windows_and_verdict(self):
        from repro.obs import render_top

        session = self._session()
        text = render_top(session.windows, 33.0, limit=10)
        assert "degraded link c1" in text
        assert "VIOL" in text
        assert "windows=2 violated=1 anomalous=1" in text
