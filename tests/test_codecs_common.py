"""Cross-codec contracts: every registered codec honours the same API."""

import pytest

from repro.compression import CODEC_NAMES, get_codec
from repro.compression.base import StepCost, StepRole, validate_step_costs
from repro.datasets import DATASET_NAMES, get_dataset
from repro.errors import ConfigurationError


#: The paper's chain-shaped algorithms; the DAG extras (unlz4, mltc)
#: follow the cost/determinism contracts but not the s0..sN naming.
CHAIN_CODECS = ("tcomp32", "lz4", "tdic32")


@pytest.fixture(params=CODEC_NAMES)
def codec(request):
    return get_codec(request.param)


@pytest.fixture(params=CHAIN_CODECS)
def chain_codec(request):
    return get_codec(request.param)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in CODEC_NAMES:
            assert get_codec(name).name == name

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            get_codec("zstd")

    def test_options_forwarded(self):
        codec = get_codec("tdic32", index_bits=8)
        assert codec.index_bits == 8


class TestStepContract:
    def test_chain_steps_ordered_s0_first(self, chain_codec):
        ids = chain_codec.step_ids()
        assert ids[0] == "s0"
        assert ids == tuple(f"s{i}" for i in range(len(ids)))

    def test_first_step_reads_last_writes(self, codec):
        steps = codec.steps()
        assert steps[0].role is StepRole.READ
        assert steps[-1].role is StepRole.WRITE

    def test_stateful_codecs_have_state_update(self, codec):
        roles = {spec.role for spec in codec.steps()}
        assert (StepRole.STATE_UPDATE in roles) == codec.stateful

    def test_step_dependencies_form_a_valid_dag(self, codec):
        """Every codec's declared step graph passes the decomposer's
        validation: known producers, topological order, unique sink."""
        from repro.core.decomposition import validate_step_dependencies

        validate_step_dependencies(
            codec.name, codec.step_ids(), codec.step_dependencies()
        )

    def test_chain_codecs_declare_chain_dependencies(self, chain_codec):
        ids = chain_codec.step_ids()
        expected = {
            step_id: (() if index == 0 else (ids[index - 1],))
            for index, step_id in enumerate(ids)
        }
        assert dict(chain_codec.step_dependencies()) == expected

    def test_unlz4_is_a_fork_join(self):
        codec = get_codec("unlz4")
        assert dict(codec.step_dependencies()) == {
            "d0": (), "d1": ("d0",), "d2": ("d0",), "d3": ("d1", "d2"),
        }

    def test_mltc_fans_out_per_channel(self):
        codec = get_codec("mltc", channels=3)
        assert dict(codec.step_dependencies()) == {
            "m0": (),
            "c1": ("m0",), "c2": ("m0",), "c3": ("m0",),
            "mz": ("c1", "c2", "c3"),
        }


class TestCostContract:
    @pytest.mark.parametrize("dataset_name", DATASET_NAMES)
    def test_costs_cover_all_steps(self, codec, dataset_name):
        data = get_dataset(dataset_name).generate(4096, seed=3)
        result = codec.compress(data)
        validate_step_costs(codec, result.step_costs)

    def test_costs_non_negative(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        for cost in result.step_costs.values():
            assert cost.instructions >= 0
            assert cost.memory_accesses >= 0
            assert cost.output_bytes >= 0

    def test_first_step_input_is_batch(self, chain_codec, rovio_data):
        result = chain_codec.compress(rovio_data)
        assert result.step_costs["s0"].input_bytes == len(rovio_data)

    def test_last_step_output_is_payload(self, chain_codec, rovio_data):
        result = chain_codec.compress(rovio_data)
        last = chain_codec.step_ids()[-1]
        assert result.step_costs[last].output_bytes == result.output_size

    def test_unlz4_models_the_decoder_side(self, rovio_data):
        """The decompression pipeline's parse step consumes the
        compressed stream and its merge step emits the decoded batch."""
        result = get_codec("unlz4").compress(rovio_data)
        assert result.step_costs["d0"].input_bytes == result.output_size
        assert result.step_costs["d3"].output_bytes == len(rovio_data)

    def test_deterministic_costs(self, rovio_data, codec):
        first = get_codec(codec.name).compress(rovio_data)
        second = get_codec(codec.name).compress(rovio_data)
        assert first.payload == second.payload
        for step in first.step_costs:
            assert (
                first.step_costs[step].instructions
                == second.step_costs[step].instructions
            )

    def test_total_instructions_positive(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert result.total_instructions() > 0
        assert result.total_memory_accesses() > 0


class TestStepCost:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StepCost(instructions=-1, memory_accesses=0, input_bytes=0,
                     output_bytes=0)

    def test_operational_intensity(self):
        cost = StepCost(instructions=100, memory_accesses=4, input_bytes=1,
                        output_bytes=1)
        assert cost.operational_intensity == 25.0

    def test_zero_accesses_returns_instructions(self):
        cost = StepCost(instructions=50, memory_accesses=0, input_bytes=1,
                        output_bytes=1)
        assert cost.operational_intensity == 50

    def test_scaled_preserves_kappa(self):
        cost = StepCost(instructions=100, memory_accesses=4, input_bytes=10,
                        output_bytes=20)
        half = cost.scaled(0.5)
        assert half.instructions == 50
        assert half.operational_intensity == cost.operational_intensity
        assert half.input_bytes == 5

    def test_merged_sums_work(self):
        a = StepCost(instructions=10, memory_accesses=1, input_bytes=100,
                     output_bytes=150)
        b = StepCost(instructions=30, memory_accesses=2, input_bytes=150,
                     output_bytes=80)
        merged = StepCost.merged([a, b])
        assert merged.instructions == 40
        assert merged.memory_accesses == 3
        assert merged.input_bytes == 100   # first step's input
        assert merged.output_bytes == 80   # last step's output

    def test_merged_empty_rejected(self):
        with pytest.raises(ValueError):
            StepCost.merged([])


class TestCompressionRatios:
    """Relative compressibility across datasets matches each codec's
    design (the paper's dataset-selection rationale)."""

    def test_tdic32_prefers_symbol_duplication(self):
        rovio = get_dataset("rovio").generate(16384, seed=1)
        stock = get_dataset("stock").generate(16384, seed=1)
        ratio_rovio = get_codec("tdic32").compress(rovio).compression_ratio
        ratio_stock = get_codec("tdic32").compress(stock).compression_ratio
        assert ratio_rovio > ratio_stock

    def test_lz4_prefers_vocabulary_duplication(self):
        sensor = get_dataset("sensor").generate(16384, seed=1)
        stock = get_dataset("stock").generate(16384, seed=1)
        ratio_sensor = get_codec("lz4").compress(sensor).compression_ratio
        ratio_stock = get_codec("lz4").compress(stock).compression_ratio
        assert ratio_sensor > ratio_stock

    def test_tcomp32_prefers_narrow_range(self):
        narrow = get_dataset("micro", dynamic_range=256).generate(8192, seed=1)
        wide = get_dataset("micro", dynamic_range=1 << 31).generate(8192, seed=1)
        codec = get_codec("tcomp32")
        assert (
            codec.compress(narrow).compression_ratio
            > codec.compress(wide).compression_ratio
        )
