"""Tests for the whole-program flow pass (DET001-005, CSU001-003).

Structure mirrors ``test_analysis.py``: every rule gets a positive
fixture (the rule fires), a suppressed fixture (the comment grammar
silences it) and a clean fixture (the compliant spelling passes), all
against throwaway packages laid out like ``repro`` so the root-relative
entry points anchor identically. The suite also pins the acceptance
regression — a ``perf_counter()`` two call-hops outside the strict
packages that the per-file CSA linter provably misses — the exit-code
convention shared by the lint/flow/verify CLIs, the JSON report
round-trip, the AST cache, and dogfoods the pass against the real tree.
"""

from __future__ import annotations

import json
import os
import textwrap

import repro
from repro.analysis import callgraph, flow
from repro.analysis.flow import (
    FLOW_RULES,
    analyze,
    format_unit,
    parse_unit,
)
from repro.analysis.flow import main as flow_main
from repro.analysis.lint import lint_paths
from repro.analysis.lint import main as lint_main
from repro.analysis.verify import main as verify_main
from repro.cli import main as cli_main

REPRO_ROOT = os.path.dirname(repro.__file__)


def build_pkg(tmp_path, files):
    """Materialise a throwaway package shaped like ``repro``."""
    root = tmp_path / "pkg"
    for relative, text in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return str(root)


def flow_codes(report):
    return sorted(finding.code for finding in report.findings)


#: an entry-point module: ``pkg.simcore.engine.Simulator.run`` anchors
#: the taint BFS exactly like the real simulator's run loop
ENGINE_CALLING = """
    from pkg.bench.helper import helper_a


    class Simulator:
        def run(self, until=None):
            return helper_a()
"""


# ---------------------------------------------------------------------------
# the acceptance regression: two hops outside the strict packages
# ---------------------------------------------------------------------------


class TestSeededTwoHopRegression:
    """A ``perf_counter()`` two call-hops outside ``simcore`` must be
    caught by the flow pass while CSA001 alone provably misses it."""

    FILES = {
        "simcore/engine.py": ENGINE_CALLING,
        "bench/helper.py": """
            from pkg.bench.deeper import helper_b


            def helper_a():
                return helper_b()
        """,
        "bench/deeper.py": """
            import time


            def helper_b():
                return time.perf_counter()
        """,
    }

    def test_csa_alone_misses_it(self, tmp_path):
        root = build_pkg(tmp_path, self.FILES)
        engine = os.path.join(root, "simcore", "engine.py")
        findings, _ = lint_paths([engine], package="simcore")
        assert findings == []

    def test_flow_catches_it_with_the_full_chain(self, tmp_path):
        root = build_pkg(tmp_path, self.FILES)
        report = analyze(root)
        assert flow_codes(report) == ["DET001"]
        (finding,) = report.findings
        assert finding.path.endswith(os.path.join("bench", "deeper.py"))
        assert "Simulator.run" in finding.chain[0]
        assert "helper_a" in finding.chain[1]
        assert "helper_b" in finding.chain[2]
        assert "entry point Simulator.run" in finding.message

    def test_chain_rendering(self, tmp_path):
        root = build_pkg(tmp_path, self.FILES)
        report = analyze(root)
        rendered = report.findings[0].format()
        lines = rendered.splitlines()
        assert "DET001" in lines[0]
        assert lines[1].startswith("       ")  # root hop, no arrow
        assert lines[2].lstrip().startswith("-> ")
        assert lines[3].lstrip().startswith("-> ")


# ---------------------------------------------------------------------------
# determinism taint rules
# ---------------------------------------------------------------------------


class TestDET001WallClock:
    def test_positive(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import time


                def helper_a():
                    return time.time()
            """,
        })
        assert flow_codes(analyze(root)) == ["DET001"]

    def test_det_ignore_suppresses(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import time


                def helper_a():
                    return time.time()  # det: ignore[DET001] — test stub
            """,
        })
        assert flow_codes(analyze(root)) == []

    def test_csa_ignore_also_counts(self, tmp_path):
        # A site the CSA linter was told to ignore is already audited;
        # flow must not re-flag it.
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import time


                def helper_a():
                    return time.time()  # csa: ignore[CSA001]
            """,
        })
        assert flow_codes(analyze(root)) == []

    def test_unreachable_source_is_clean(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": """
                class Simulator:
                    def run(self, until=None):
                        return until
            """,
            "bench/helper.py": """
                import time


                def never_called():
                    return time.time()
            """,
        })
        assert flow_codes(analyze(root)) == []


class TestDET002Rng:
    def test_positive(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import random


                def helper_a():
                    return random.random()
            """,
        })
        assert flow_codes(analyze(root)) == ["DET002"]

    def test_suppressed(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import random


                def helper_a():
                    return random.random()  # det: ignore[DET002] — audited
            """,
        })
        assert flow_codes(analyze(root)) == []

    def test_seeded_rng_is_clean(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import random


                def helper_a():
                    return random.Random(42).random()
            """,
        })
        assert flow_codes(analyze(root)) == []


class TestDET003EnvRead:
    def test_positive(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import os


                def helper_a():
                    return os.environ.get("REPRO_DEBUG")
            """,
        })
        assert flow_codes(analyze(root)) == ["DET003"]

    def test_suppressed(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import os


                def helper_a():
                    return os.environ.get("X")  # det: ignore[DET003] — opt-in
            """,
        })
        assert flow_codes(analyze(root)) == []

    def test_explicit_argument_is_clean(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": """
                from pkg.bench.helper import helper_a


                class Simulator:
                    def run(self, debug=False):
                        return helper_a(debug)
            """,
            "bench/helper.py": """
                def helper_a(debug):
                    return debug
            """,
        })
        assert flow_codes(analyze(root)) == []


class TestDET004IterationOrder:
    def test_positive(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                def helper_a():
                    total = 0
                    for value in {1, 2, 3}:
                        total += value
                    return total
            """,
        })
        assert flow_codes(analyze(root)) == ["DET004"]

    def test_suppressed(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                def helper_a():
                    total = 0
                    for value in {1, 2, 3}:  # det: ignore[DET004] — commutes
                        total += value
                    return total
            """,
        })
        assert flow_codes(analyze(root)) == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                def helper_a():
                    total = 0
                    for value in sorted({1, 2, 3}):
                        total += value
                    return total
            """,
        })
        assert flow_codes(analyze(root)) == []


class TestDET005Contracts:
    def test_contract_cuts_the_chain(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                from pkg.bench.deeper import helper_b


                # det: pure — forwards to an audited helper, adds nothing
                def helper_a():
                    return helper_b()
            """,
            "bench/deeper.py": """
                import time


                def helper_b():
                    return time.perf_counter()
            """,
        })
        report = analyze(root)
        # The contract stops the entry-point taint; the clock inside
        # helper_b is still on the contract's audited subtree.
        assert flow_codes(report) == []
        (qualname,) = report.contracts
        assert qualname.endswith("helper_a")
        assert "audited helper" in report.contracts[qualname]
        assert any(
            node.endswith("helper_b")
            for node in report.contract_subtrees[qualname]
        )

    def test_direct_source_violates_the_contract(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                import time


                # det: pure — wrong: the body reads the clock directly
                def helper_a():
                    return time.perf_counter()
            """,
        })
        report = analyze(root)
        assert flow_codes(report) == ["DET005"]
        assert "violated" in report.findings[0].message

    def test_missing_justification_is_a_finding(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": ENGINE_CALLING,
            "bench/helper.py": """
                # det: pure
                def helper_a():
                    return 1
            """,
        })
        report = analyze(root)
        assert flow_codes(report) == ["DET005"]
        assert "justification" in report.findings[0].message


# ---------------------------------------------------------------------------
# unit consistency rules
# ---------------------------------------------------------------------------


def units_pkg(tmp_path, body):
    return build_pkg(tmp_path, {
        "core/units.py": body,
    })


class TestCSU001Addition:
    def test_positive(self, tmp_path):
        root = units_pkg(tmp_path, """
            def mix(latency_us, energy_uj):
                return latency_us + energy_uj
        """)
        assert flow_codes(analyze(root)) == ["CSU001"]

    def test_same_unit_is_clean(self, tmp_path):
        root = units_pkg(tmp_path, """
            def total(first_us, second_us):
                return first_us + second_us
        """)
        assert flow_codes(analyze(root)) == []

    def test_dimensional_product_is_clean(self, tmp_path):
        # µs × W = µJ — the algebra must simplify, not string-match.
        root = units_pkg(tmp_path, """
            def total(energy_uj, pause_us, power_w):
                return energy_uj + pause_us * power_w
        """)
        assert flow_codes(analyze(root)) == []

    def test_suppressed(self, tmp_path):
        root = units_pkg(tmp_path, """
            def mix(latency_us, energy_uj):
                return latency_us + energy_uj  # csu: ignore[CSU001]
        """)
        assert flow_codes(analyze(root)) == []

    def test_augmented_assignment(self, tmp_path):
        root = units_pkg(tmp_path, """
            def accumulate(total_us, energy_uj):
                total_us += energy_uj
                return total_us
        """)
        assert flow_codes(analyze(root)) == ["CSU001"]


class TestCSU002Comparison:
    def test_positive(self, tmp_path):
        root = units_pkg(tmp_path, """
            def over_budget(latency_us, budget_mj):
                return latency_us > budget_mj
        """)
        assert flow_codes(analyze(root)) == ["CSU002"]

    def test_scale_mismatch_of_same_dimension(self, tmp_path):
        # µs vs ms are both time but different scales: still a bug.
        root = units_pkg(tmp_path, """
            def late(latency_us, deadline_ms):
                return latency_us > deadline_ms
        """)
        assert flow_codes(analyze(root)) == ["CSU002"]

    def test_same_unit_is_clean(self, tmp_path):
        root = units_pkg(tmp_path, """
            def late(latency_us, deadline_us):
                return latency_us > deadline_us
        """)
        assert flow_codes(analyze(root)) == []

    def test_suppressed(self, tmp_path):
        root = units_pkg(tmp_path, """
            def over(latency_us, budget_mj):
                return latency_us > budget_mj  # csu: ignore[CSU002]
        """)
        assert flow_codes(analyze(root)) == []


class TestCSU003Binding:
    def test_assignment_positive(self, tmp_path):
        root = units_pkg(tmp_path, """
            def convert(latency_us):
                latency_ms = latency_us
                return latency_ms
        """)
        assert flow_codes(analyze(root)) == ["CSU003"]

    def test_explicit_conversion_is_clean(self, tmp_path):
        # Dividing by an unclassified literal is the conversion escape.
        root = units_pkg(tmp_path, """
            def convert(latency_us):
                latency_ms = latency_us / 1000.0
                return latency_ms
        """)
        assert flow_codes(analyze(root)) == []

    def test_return_against_function_name(self, tmp_path):
        root = units_pkg(tmp_path, """
            def window_ms(span_us):
                return span_us
        """)
        assert flow_codes(analyze(root)) == ["CSU003"]

    def test_call_argument_binding(self, tmp_path):
        root = units_pkg(tmp_path, """
            def advance(step_us):
                return step_us


            def caller(window_ms):
                return advance(window_ms)
        """)
        assert flow_codes(analyze(root)) == ["CSU003"]

    def test_matching_argument_is_clean(self, tmp_path):
        root = units_pkg(tmp_path, """
            def advance(step_us):
                return step_us


            def caller(window_us):
                return advance(window_us)
        """)
        assert flow_codes(analyze(root)) == []

    def test_suppressed(self, tmp_path):
        root = units_pkg(tmp_path, """
            def convert(latency_us):
                latency_ms = latency_us  # csu: ignore[CSU003]
                return latency_ms
        """)
        assert flow_codes(analyze(root)) == []

    def test_lenient_package_not_checked(self, tmp_path):
        # The unit checker only runs over strict packages.
        root = build_pkg(tmp_path, {
            "bench/units.py": """
                def convert(latency_us):
                    latency_ms = latency_us
                    return latency_ms
            """,
        })
        assert flow_codes(analyze(root)) == []


class TestUnitAlgebra:
    def test_atoms_and_stems(self):
        assert parse_unit("latency_us") == parse_unit("pause_us")
        assert parse_unit("latency_us") != parse_unit("latency_ms")
        assert parse_unit("us") is None  # bare atom needs a stem
        assert parse_unit("count") is None
        assert parse_unit(None) is None

    def test_plural_normalisation(self):
        assert parse_unit("batch_bytes") == parse_unit("payload_byte")

    def test_ratio_units(self):
        ratio = parse_unit("cost_uj_per_byte")
        assert ratio is not None
        assert format_unit(ratio) == "uj/byte"

    def test_time_times_power_is_energy(self):
        us = parse_unit("pause_us")
        watt = parse_unit("power_w")
        assert flow._combine(us, watt, divide=False) == parse_unit("x_uj")

    def test_frequency_is_inverse_time(self):
        hz = parse_unit("clock_hz")
        seconds = parse_unit("span_s")
        # Hz × s fully cancels: dimensionless -> unclassified (None).
        assert flow._combine(hz, seconds, divide=False) is None

    def test_format_round_trip_for_every_atom(self):
        for atom in flow._ATOMS:
            unit = parse_unit(f"value_{atom}")
            assert unit is not None
            assert format_unit(unit) == atom


# ---------------------------------------------------------------------------
# exit codes: lint / flow / verify / cstream analyze agree on 0/1/2
# ---------------------------------------------------------------------------


class TestExitCodeConvention:
    CLEAN = {
        "simcore/engine.py": """
            class Simulator:
                def run(self, until=None):
                    return until
        """,
    }
    DIRTY = TestSeededTwoHopRegression.FILES

    def test_flow_clean_vs_findings_vs_usage(self, tmp_path, capsys):
        clean = build_pkg(tmp_path / "clean", self.CLEAN)
        dirty = build_pkg(tmp_path / "dirty", self.DIRTY)
        assert flow_main([clean]) == 0
        assert flow_main([dirty]) == 1
        assert flow_main([dirty, "--json"]) == 1  # json mode: same status
        assert flow_main([str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_flow_unwritable_report_is_usage_error(self, tmp_path, capsys):
        clean = build_pkg(tmp_path, self.CLEAN)
        target = str(tmp_path / "no-such-dir" / "report.json")
        assert flow_main([clean, "--report", target]) == 2
        capsys.readouterr()

    def test_lint_clean_vs_findings_vs_usage(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        base = ["--package", "simcore"]
        assert lint_main([str(clean)] + base) == 0
        assert lint_main([str(dirty)] + base) == 1
        assert lint_main([str(dirty), "--json"] + base) == 1
        assert lint_main([str(tmp_path / "missing.py")] + base) == 2
        capsys.readouterr()

    def test_lint_unwritable_report_is_usage_error(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        target = str(tmp_path / "no-such-dir" / "report.json")
        assert lint_main([str(clean), "--report", target]) == 2
        capsys.readouterr()

    def test_verify_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "not-json.json"
        bad.write_text("{nope")
        assert verify_main([str(bad)]) == 2
        assert verify_main([str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()

    def test_cstream_analyze_json_exits_one_on_findings(
        self, tmp_path, capsys
    ):
        # Strict scope is inferred from the path: the linter keys on a
        # `repro/<package>/` layout, so mirror it.
        strict = tmp_path / "repro" / "simcore" / "engine.py"
        strict.parent.mkdir(parents=True)
        strict.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        status_plain = cli_main(["analyze", str(strict)])
        status_json = cli_main(["analyze", str(strict), "--json"])
        assert status_plain == status_json == 1
        capsys.readouterr()

    def test_cstream_analyze_deep(self, tmp_path, capsys):
        dirty = build_pkg(tmp_path, self.DIRTY)
        report = tmp_path / "flow.json"
        status = cli_main([
            "analyze", dirty, "--json",
            "--deep-report", str(report),
            "--cache", str(tmp_path / "ast-cache.json"),
        ])
        assert status == 1  # the two-hop clock is a --deep finding
        payload = json.loads(report.read_text())
        assert payload["counts"] == {"DET001": 1}
        capsys.readouterr()


# ---------------------------------------------------------------------------
# report round-trip + cache
# ---------------------------------------------------------------------------


class TestReportAndCache:
    def test_json_report_round_trip(self, tmp_path):
        root = build_pkg(tmp_path, TestSeededTwoHopRegression.FILES)
        payload = analyze(root).payload()
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored["version"] == 1
        assert restored["rules"] == FLOW_RULES
        assert restored["counts"] == {"DET001": 1}
        assert [f["code"] for f in restored["findings"]] == ["DET001"]
        assert len(restored["findings"][0]["chain"]) == 3
        assert restored["entry_points"]

    def test_cache_hits_on_second_run(self, tmp_path):
        root = build_pkg(tmp_path, TestSeededTwoHopRegression.FILES)
        cache = str(tmp_path / "cache.json")
        first = analyze(root, cache_path=cache)
        assert first.cache == {"hits": 0, "misses": 3}
        second = analyze(root, cache_path=cache)
        assert second.cache == {"hits": 3, "misses": 0}
        assert flow_codes(second) == flow_codes(first)
        assert [f.chain for f in second.findings] == [
            f.chain for f in first.findings
        ]

    def test_cache_invalidated_by_edit(self, tmp_path):
        root = build_pkg(tmp_path, TestSeededTwoHopRegression.FILES)
        cache = str(tmp_path / "cache.json")
        analyze(root, cache_path=cache)
        helper = os.path.join(root, "bench", "deeper.py")
        with open(helper, "a", encoding="utf-8") as handle:
            handle.write("\n\ndef extra():\n    return 0\n")
        third = analyze(root, cache_path=cache)
        assert third.cache == {"hits": 2, "misses": 1}
        assert flow_codes(third) == ["DET001"]

    def test_corrupt_cache_is_tolerated(self, tmp_path):
        root = build_pkg(tmp_path, TestSeededTwoHopRegression.FILES)
        cache = tmp_path / "cache.json"
        cache.write_text("{broken")
        report = analyze(root, cache_path=str(cache))
        assert report.cache == {"hits": 0, "misses": 3}
        assert flow_codes(report) == ["DET001"]


# ---------------------------------------------------------------------------
# call-graph construction details the taint pass depends on
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_unresolved_dynamic_call_lands_on_the_worklist(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": """
                class Store:
                    def get(self):
                        return 1


                class Cache:
                    def get(self):
                        return 2


                class Simulator:
                    def run(self, backend):
                        return backend.get()
            """,
        })
        graph, _ = callgraph.build_graph(root)
        ambiguous = [
            item for item in graph.worklist
            if item.chain[-1] == "get"
        ]
        assert ambiguous, "multi-candidate dispatch must be surfaced"
        assert sorted(ambiguous[0].candidates) == [
            "pkg.simcore.engine.Cache.get",
            "pkg.simcore.engine.Store.get",
        ]

    def test_single_candidate_duck_dispatch_resolves(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": """
                import time


                class Ticker:
                    def on_window(self):
                        return time.perf_counter()


                class Simulator:
                    def run(self, controller):
                        return controller.on_window()
            """,
        })
        report = analyze(root)
        assert flow_codes(report) == ["DET001"]
        assert "Ticker.on_window" in report.findings[0].chain[-1]

    def test_finding_deduplicated_to_shortest_chain(self, tmp_path):
        root = build_pkg(tmp_path, {
            "simcore/engine.py": """
                import time
                from pkg.bench.helper import helper_a


                class Simulator:
                    def run(self):
                        helper_a()
                        return self.tick()

                    def tick(self):
                        return helper_a()
            """,
            "bench/helper.py": """
                import time


                def helper_a():
                    return time.time()
            """,
        })
        report = analyze(root)
        # One source line -> one finding, via the shortest chain.
        assert flow_codes(report) == ["DET001"]
        assert len(report.findings[0].chain) == 2


# ---------------------------------------------------------------------------
# dogfood: the real tree
# ---------------------------------------------------------------------------


class TestDogfood:
    def test_repo_is_flow_clean(self, capsys):
        assert flow_main([REPRO_ROOT]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_every_repo_contract_is_justified(self):
        report = analyze(REPRO_ROOT)
        for qualname, reason in report.contracts.items():
            assert reason, f"{qualname} carries an unjustified det: pure"

    def test_entry_points_anchor_in_the_real_tree(self):
        report = analyze(REPRO_ROOT)
        names = " ".join(report.entry_points)
        assert "Scheduler.schedule" in names
        assert "PipelineExecutor.run" in names
        assert "Simulator.run" in names
        assert "compress" in names
