"""Property tests: scheduler optimality on randomized boards.

The paper's board is one point in the design space; the scheduler's
guarantees (optimal among enumerated plans, constraints honoured) must
hold for any asymmetric topology. Boards are generated from random
cache/µarch parameters via the memory model, so the rooflines are
internally consistent rather than arbitrary curves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import WorkloadContext
from repro.core.plan import SchedulingPlan
from repro.core.profiler import profile_workload
from repro.core.scheduler import Scheduler
from repro.compression import get_codec
from repro.datasets import get_dataset
from repro.simcore.boards import BoardSpec, rk3399
from repro.simcore.hardware import ClusterSpec, CoreSpec, CoreType, PiecewiseRoofline
from repro.simcore.memory import CoreMicroarchitecture, derive_roofline


def _roofline_from_fit(fit) -> PiecewiseRoofline:
    return PiecewiseRoofline(
        breakpoints=tuple(fit.boundaries[:-1]) or (fit.kappa_max,),
        slopes=tuple(fit.slopes[:-1]) or (0.0,),
        intercepts=tuple(fit.intercepts[:-1]) or (fit.roof,),
        roof=max(fit.roof, 1e-3),
    )


def make_board(
    little_count: int,
    big_count: int,
    little_mhz: float,
    big_mhz: float,
    big_speedup: float,
) -> BoardSpec:
    """Build a consistent board from microarchitecture parameters."""
    reference = rk3399()
    little_uarch = CoreMicroarchitecture(
        frequency_mhz=little_mhz, peak_ipc=2.0, in_order=True
    )
    big_uarch = CoreMicroarchitecture(
        frequency_mhz=big_mhz, peak_ipc=2.0 * big_speedup, in_order=False
    )
    little_eta = _roofline_from_fit(derive_roofline(little_uarch))
    big_eta = _roofline_from_fit(derive_roofline(big_uarch))
    # ζ scaled from η: little cores 2x more efficient per instruction.
    little_zeta = PiecewiseRoofline(
        breakpoints=little_eta.breakpoints,
        slopes=tuple(s * 100 for s in little_eta.slopes),
        intercepts=tuple(i * 100 + 50 for i in little_eta.intercepts),
        roof=little_eta.roof * 100 + 50,
    )
    big_zeta = PiecewiseRoofline(
        breakpoints=big_eta.breakpoints,
        slopes=tuple(s * 50 for s in big_eta.slopes),
        intercepts=tuple(i * 50 + 25 for i in big_eta.intercepts),
        roof=big_eta.roof * 50 + 25,
    )
    cores = []
    for core_id in range(little_count):
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.LITTLE,
                cluster_id=0,
                model="gen-little",
                max_frequency_mhz=little_mhz,
                frequency_levels_mhz=(little_mhz / 2, little_mhz),
                eta=little_eta,
                zeta=little_zeta,
                static_power_w=0.0001,
                busy_floor_power_w=0.001,
            )
        )
    for offset in range(big_count):
        core_id = little_count + offset
        cores.append(
            CoreSpec(
                core_id=core_id,
                core_type=CoreType.BIG,
                cluster_id=1,
                model="gen-big",
                max_frequency_mhz=big_mhz,
                frequency_levels_mhz=(big_mhz / 2, big_mhz),
                eta=big_eta,
                zeta=big_zeta,
                static_power_w=0.0002,
                busy_floor_power_w=0.003,
            )
        )
    clusters = (
        ClusterSpec(
            cluster_id=0,
            core_type=CoreType.LITTLE,
            core_ids=tuple(range(little_count)),
        ),
        ClusterSpec(
            cluster_id=1,
            core_type=CoreType.BIG,
            core_ids=tuple(range(little_count, little_count + big_count)),
        ),
    )
    return BoardSpec(
        name=f"generated {little_count}+{big_count}",
        cores=tuple(cores),
        clusters=clusters,
        interconnect=reference.interconnect,
        uncore_power_w=0.0002,
        context_switch_instructions=330.0,
        replication_latency_overhead=0.07,
        replication_energy_overhead=0.27,
    )


@pytest.fixture(scope="module")
def profile():
    return profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=3
    )


boards = st.builds(
    make_board,
    little_count=st.integers(min_value=2, max_value=6),
    big_count=st.integers(min_value=1, max_value=3),
    little_mhz=st.sampled_from([800.0, 1200.0, 1600.0]),
    big_mhz=st.sampled_from([1400.0, 1800.0, 2200.0]),
    big_speedup=st.sampled_from([1.3, 1.8, 2.5]),
)


class TestRandomBoards:
    @given(boards, st.sampled_from([18.0, 30.0, 60.0]))
    @settings(max_examples=15, deadline=None)
    def test_schedule_never_beaten_by_random_plans(
        self, profile, board, constraint
    ):
        """No sampled feasible plan has lower modelled energy than the
        scheduler's optimum under the same model."""
        context = WorkloadContext.build(board, profile, constraint)
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        if not result.feasible:
            return
        rng = np.random.default_rng(0)
        for _ in range(30):
            assignments = tuple(
                (int(rng.choice(board.core_ids)),)
                for _ in context.fine_graph.tasks
            )
            estimate = model.evaluate(
                SchedulingPlan(
                    graph=context.fine_graph, assignments=assignments
                )
            )
            if estimate.feasible:
                assert (
                    result.estimate.energy_uj_per_byte
                    <= estimate.energy_uj_per_byte + 1e-12
                )

    @given(boards)
    @settings(max_examples=10, deadline=None)
    def test_feasible_schedule_honours_constraint(self, profile, board):
        constraint = 40.0
        context = WorkloadContext.build(board, profile, constraint)
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        if result.feasible:
            assert result.estimate.latency_us_per_byte <= constraint

    @given(boards)
    @settings(max_examples=10, deadline=None)
    def test_plan_uses_only_board_cores(self, profile, board):
        context = WorkloadContext.build(board, profile, 60.0)
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        assert set(result.plan.cores_used()) <= set(board.core_ids)
