"""tcomp32: stateless null suppression (Algorithm 2)."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import Tcomp32
from repro.errors import CompressionError, CorruptStreamError


def words_to_bytes(values):
    return np.asarray(values, dtype=np.uint32).tobytes()


@pytest.fixture
def codec():
    return Tcomp32()


class TestRoundTrip:
    def test_empty_input(self, codec):
        result = codec.compress(b"")
        assert codec.decompress(result.payload) == b""

    def test_single_zero_word(self, codec):
        data = words_to_bytes([0])
        assert codec.decompress(codec.compress(data).payload) == data

    def test_max_value_word(self, codec):
        data = words_to_bytes([0xFFFFFFFF])
        assert codec.decompress(codec.compress(data).payload) == data

    def test_mixed_values(self, codec):
        data = words_to_bytes([0, 1, 3, 7, 255, 1 << 20, 0xFFFFFFFF])
        assert codec.decompress(codec.compress(data).payload) == data

    def test_rovio_batch(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert codec.decompress(result.payload) == rovio_data

    def test_sensor_batch(self, codec, sensor_data):
        result = codec.compress(sensor_data)
        assert codec.decompress(result.payload) == sensor_data

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_words(self, values):
        codec = Tcomp32()
        data = words_to_bytes(values)
        assert codec.decompress(codec.compress(data).payload) == data


class TestCompression:
    def test_small_values_compress(self, codec):
        # 1000 words that need <= 8 bits each: 13 bits out of 32.
        data = words_to_bytes([200] * 1000)
        result = codec.compress(data)
        assert result.compression_ratio > 2.0

    def test_random_values_expand(self, codec, rng):
        data = rng.integers(0, 1 << 32, 500, dtype=np.uint32).tobytes()
        result = codec.compress(data)
        # 5-bit header per 32-bit word: ratio just below 1.
        assert 0.8 < result.compression_ratio < 1.0

    def test_unaligned_input_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.compress(b"abc")

    def test_output_size_formula(self, codec):
        # Every word = 3 -> n=2 -> 5 + 2 = 7 bits per word plus header.
        data = words_to_bytes([3] * 64)
        result = codec.compress(data)
        expected_bits = 64 * 7
        expected_bytes = 4 + (expected_bits + 7) // 8
        assert result.output_size == expected_bytes


class TestCostModel:
    def test_step_cover(self, codec):
        assert codec.step_ids() == ("s0", "s1", "s2")
        assert not codec.stateful

    def test_counters_track_significant_bits(self, codec):
        data = words_to_bytes([1, 3, 7])  # 1 + 2 + 3 bits
        result = codec.compress(data)
        assert result.counters["significant_bits"] == 6
        assert result.counters["mean_significant_bits"] == pytest.approx(2.0)

    def test_kappa_ordering(self, codec, rovio_data):
        costs = codec.compress(rovio_data).step_costs
        # read << write < encode in operational intensity (paper Fig 3).
        assert (
            costs["s0"].operational_intensity
            < costs["s2"].operational_intensity
            < costs["s1"].operational_intensity
        )

    def test_encode_cost_grows_with_dynamic_range(self, codec):
        narrow = codec.compress(words_to_bytes([3] * 256))
        wide = codec.compress(words_to_bytes([0xFFFFFFF] * 256))
        assert (
            wide.step_costs["s1"].instructions
            > narrow.step_costs["s1"].instructions
        )
        assert (
            wide.step_costs["s2"].instructions
            > narrow.step_costs["s2"].instructions
        )

    def test_costs_scale_linearly_with_words(self, codec):
        small = codec.compress(words_to_bytes([5] * 100))
        large = codec.compress(words_to_bytes([5] * 400))
        ratio = (
            large.step_costs["s1"].instructions
            / small.step_costs["s1"].instructions
        )
        assert ratio == pytest.approx(4.0, rel=1e-6)

    def test_rovio_anchor_kappas(self, codec, rovio_data):
        """Calibration anchors from the paper's Table IV."""
        from repro.compression.base import StepCost

        costs = codec.compress(rovio_data).step_costs
        fused = StepCost.merged([costs["s0"], costs["s1"]])
        assert 280 < fused.operational_intensity < 360
        assert 90 < costs["s2"].operational_intensity < 115

    def test_s1_forwards_descriptors(self, codec, rovio_data):
        costs = codec.compress(rovio_data).step_costs
        # s1 forwards ~5 bytes per 4-byte word.
        assert costs["s1"].output_bytes == pytest.approx(
            len(rovio_data) * 1.25, rel=0.01
        )


class TestFastPath:
    """The vectorized encoder is byte-identical to the reference."""

    def test_rovio_batch_identical(self, rovio_data):
        fast = Tcomp32(fast=True).compress(rovio_data)
        reference = Tcomp32(fast=False).compress(rovio_data)
        assert fast.payload == reference.payload
        assert fast.counters == reference.counters

    def test_edge_values_identical(self):
        data = words_to_bytes([0, 1, 2, 3, 0xFFFFFFFF, 1 << 31, (1 << 24) - 1])
        assert Tcomp32(fast=True).compress(data).payload == (
            Tcomp32(fast=False).compress(data).payload
        )

    def test_power_of_two_boundaries_identical(self):
        values = []
        for exponent in range(32):
            values.extend([(1 << exponent) - 1, 1 << exponent])
        data = words_to_bytes([v & 0xFFFFFFFF for v in values])
        assert Tcomp32(fast=True).compress(data).payload == (
            Tcomp32(fast=False).compress(data).payload
        )

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_words_identical(self, values):
        data = words_to_bytes(values)
        assert Tcomp32(fast=True).compress(data).payload == (
            Tcomp32(fast=False).compress(data).payload
        )

    def test_fast_round_trips(self, rng):
        data = rng.integers(0, 1 << 32, 20_000, dtype=np.uint32).tobytes()
        codec = Tcomp32(fast=True)
        assert codec.decompress(codec.compress(data).payload) == data

    def test_fast_is_faster_on_large_batches(self, rng):
        import os
        import time

        if os.cpu_count() == 1:
            pytest.skip("timing comparison is noise-bound on 1 CPU")

        def best_of(codec, data, repetitions=3):
            best = float("inf")
            for _ in range(repetitions):
                started = time.perf_counter()
                codec.compress(data)
                best = min(best, time.perf_counter() - started)
            return best

        data = rng.integers(0, 1 << 32, 100_000, dtype=np.uint32).tobytes()
        fast_seconds = best_of(Tcomp32(fast=True), data)
        reference_seconds = best_of(Tcomp32(fast=False), data)
        # relative margin: the vectorized path must win clearly, not by
        # a scheduler-jitter-sized sliver
        assert fast_seconds < reference_seconds * 0.8


class TestCorruption:
    def test_truncated_header(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x01")

    def test_truncated_body(self, codec):
        payload = codec.compress(words_to_bytes([0xFFFFFFFF] * 10)).payload
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload[:-2])

    def test_header_promising_too_many_words(self, codec):
        payload = bytearray(codec.compress(words_to_bytes([7] * 4)).payload)
        struct.pack_into("<I", payload, 0, 10_000)
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(payload))
