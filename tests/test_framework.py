"""The CStream facade (profile -> decompose -> schedule -> execute)."""

import pytest

from repro import CStream
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def framework():
    return CStream(
        codec="tcomp32",
        dataset="rovio",
        batch_size=8192,
        latency_constraint_us_per_byte=26.0,
        profile_batches=4,
    )


class TestConstruction:
    def test_string_names_resolve(self, framework):
        assert framework.codec.name == "tcomp32"
        assert framework.dataset.name == "rovio"

    def test_instances_accepted(self):
        from repro.compression import Tdic32
        from repro.datasets import MicroDataset

        framework = CStream(
            codec=Tdic32(index_bits=10),
            dataset=MicroDataset(dynamic_range=100),
            batch_size=4096,
            latency_constraint_us_per_byte=26.0,
        )
        assert framework.codec.index_bits == 10
        assert framework.dataset.dynamic_range == 100

    def test_default_board_is_rk3399(self, framework):
        assert "rk3399" in framework.board.name

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            CStream(
                codec="tcomp32", dataset="rovio", batch_size=0,
                latency_constraint_us_per_byte=26.0,
            )


class TestWorkflow:
    def test_profile_cached(self, framework):
        assert framework.profile() is framework.profile()

    def test_plan_matches_paper(self, framework):
        schedule = framework.plan()
        assert schedule.feasible
        assert framework.context().fine_graph.describe() == (
            "t0[s0+s1] -> t1[s2]"
        )

    def test_run_produces_metrics(self, framework):
        result = framework.run(repetitions=3, batches_per_repetition=4)
        assert result.clcv == 0.0
        assert result.mean_energy_uj_per_byte > 0

    def test_run_baseline_mechanism(self, framework):
        cstream = framework.run(repetitions=3, batches_per_repetition=4)
        coarse = framework.run(
            repetitions=3, batches_per_repetition=4, mechanism="CS"
        )
        assert (
            coarse.mean_energy_uj_per_byte > cstream.mean_energy_uj_per_byte
        )


class TestCodecPassthrough:
    def test_compress_decompress(self, framework):
        data = framework.dataset.generate(4096, seed=3)
        payload = framework.compress(data)
        assert framework.decompress(payload) == data
        assert len(payload) != len(data)
