"""Experiment harness: specs, caching, tables."""


from repro.bench.harness import (
    PAPER_BATCH_BYTES,
    PAPER_LATENCY_CONSTRAINT,
    Harness,
    WorkloadSpec,
    format_table,
)


class TestWorkloadSpec:
    def test_label(self):
        assert WorkloadSpec.of("lz4", "stock").label == "lz4-stock"

    def test_defaults_match_paper(self):
        spec = WorkloadSpec.of("tcomp32", "rovio")
        assert spec.latency_constraint == PAPER_LATENCY_CONSTRAINT == 26.0
        assert PAPER_BATCH_BYTES == 932_800

    def test_options_frozen_and_hashable(self):
        spec = WorkloadSpec.of(
            "tdic32", "micro",
            codec_options={"index_bits": 10},
            dataset_options={"dynamic_range": 100},
        )
        hash(spec)  # usable as cache key
        assert spec.make_codec().index_bits == 10
        assert spec.make_dataset().dynamic_range == 100

    def test_equal_specs_are_equal(self):
        a = WorkloadSpec.of("lz4", "stock", dataset_options={"instrument_count": 8})
        b = WorkloadSpec.of("lz4", "stock", dataset_options={"instrument_count": 8})
        assert a == b


class TestHarnessCaching:
    def test_profile_cached(self, small_harness, tcomp32_rovio_spec):
        first = small_harness.profile(tcomp32_rovio_spec)
        second = small_harness.profile(tcomp32_rovio_spec)
        assert first is second

    def test_context_cached(self, small_harness, tcomp32_rovio_spec):
        assert small_harness.context(tcomp32_rovio_spec) is (
            small_harness.context(tcomp32_rovio_spec)
        )

    def test_run_cached(self, small_harness, tcomp32_rovio_spec):
        first = small_harness.run(tcomp32_rovio_spec, "CStream", repetitions=2)
        second = small_harness.run(tcomp32_rovio_spec, "CStream", repetitions=2)
        assert first is second

    def test_different_overrides_not_conflated(
        self, small_harness, tcomp32_rovio_spec
    ):
        a = small_harness.run(tcomp32_rovio_spec, "CStream", repetitions=2)
        b = small_harness.run(
            tcomp32_rovio_spec, "CStream", repetitions=2, noise_sigma=0.0
        )
        assert a is not b

    def test_grid_covers_all_cells(self, small_harness, tcomp32_rovio_spec):
        grid = small_harness.grid(
            [tcomp32_rovio_spec], ["CStream", "RR"], repetitions=2
        )
        assert set(grid) == {
            ("tcomp32-rovio", "CStream"),
            ("tcomp32-rovio", "RR"),
        }

    def test_grid_jobs_one_matches_serial_cache(
        self, small_harness, tcomp32_rovio_spec
    ):
        # jobs=1 is the plain serial loop: cells come from (and land in)
        # the same in-memory cache as direct run() calls.
        direct = small_harness.run(tcomp32_rovio_spec, "RR", repetitions=2)
        grid = small_harness.grid(
            [tcomp32_rovio_spec], ["RR"], jobs=1, repetitions=2
        )
        assert grid[("tcomp32-rovio", "RR")] is direct

    def test_clear_caches_forces_recompute_with_equal_numbers(self, board):
        harness = Harness(
            board=board, repetitions=2, batches_per_repetition=4,
            profile_batches=3,
        )
        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=8192)
        first = harness.run(spec, "RR")
        harness.clear_caches()
        second = harness.run(spec, "RR")
        assert first is not second and first == second


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            "demo", ("name", "value"), [("a", 1), ("long-name", 22)]
        )
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "long-name" in lines[4]
        # Header separator row present.
        assert set(lines[2].replace("  ", "")) == {"-"}

    def test_note_rendered(self):
        text = format_table("t", ("a",), [(1,)], note="hello")
        assert text.endswith("note: hello")
