"""Key-partitioned state (the paper's future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import Tdic32
from repro.compression.partitioned import PartitionedCodec
from repro.datasets import MicroDataset
from repro.errors import CompressionError, CorruptStreamError


def words_to_bytes(values):
    return np.asarray(values, dtype=np.uint32).tobytes()


class TestConstruction:
    def test_invalid_shards(self):
        with pytest.raises(CompressionError):
            PartitionedCodec(shards=0)
        with pytest.raises(CompressionError):
            PartitionedCodec(shards=257)

    def test_routing_bits(self):
        assert PartitionedCodec(shards=1).routing_bits == 0
        assert PartitionedCodec(shards=2).routing_bits == 1
        assert PartitionedCodec(shards=6).routing_bits == 3
        assert PartitionedCodec(shards=16).routing_bits == 4

    def test_routing_deterministic(self):
        codec = PartitionedCodec(shards=6)
        assert codec.shard_of(12345) == codec.shard_of(12345)
        assert 0 <= codec.shard_of(0xFFFFFFFF) < 6


class TestRoundTrip:
    @pytest.mark.parametrize("shards", [1, 2, 4, 6])
    def test_rovio(self, shards, rovio_data):
        codec = PartitionedCodec(shards=shards)
        decoder = PartitionedCodec(shards=shards)
        assert decoder.decompress(codec.compress(rovio_data)) == rovio_data

    def test_empty(self):
        codec = PartitionedCodec(shards=4)
        assert PartitionedCodec(shards=4).decompress(codec.compress(b"")) == b""

    def test_cross_batch_state(self):
        encoder = PartitionedCodec(shards=3)
        decoder = PartitionedCodec(shards=3)
        for _ in range(3):
            batch = words_to_bytes([7, 8, 9, 7, 8, 9])
            assert decoder.decompress(encoder.compress(batch)) == batch

    def test_unaligned_rejected(self):
        with pytest.raises(CompressionError):
            PartitionedCodec(shards=2).compress(b"abc")

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_words(self, values):
        data = words_to_bytes(values)
        encoder = PartitionedCodec(shards=4)
        decoder = PartitionedCodec(shards=4)
        assert decoder.decompress(encoder.compress(data)) == data


class TestStateSemantics:
    def test_repeated_symbols_always_same_shard(self):
        """The defining property: a value's dictionary entry lives in
        exactly one shard, so repeats always hit."""
        codec = PartitionedCodec(shards=6)
        data = words_to_bytes([42] * 600)
        payload = codec.compress(data)
        # 1 literal + 599 13-bit hits + routing stream: well under the
        # 2400-byte input and under all-literal encoding (~2475 bytes).
        assert len(payload) < 1400

    def test_beats_private_chunks_when_tables_thrash(self):
        """With small dictionaries and a large hot set, sharding keeps
        the aggregate capacity useful where private chunk dictionaries
        thrash — the case partitioning exists for."""
        data = MicroDataset(
            dynamic_range=1 << 28, symbol_duplication=0.7
        ).generate(65536, seed=3)
        words = np.frombuffer(data, dtype=np.uint32)
        shards = 6

        partitioned = PartitionedCodec(
            shards=shards, codec_factory=lambda: Tdic32(index_bits=6)
        )
        partitioned_bytes = len(partitioned.compress(data))

        chunk = len(words) // shards
        private_bytes = 0
        for index in range(shards):
            codec = Tdic32(index_bits=6)
            start = index * chunk
            end = len(words) if index == shards - 1 else start + chunk
            private_bytes += codec.compress(
                words[start:end].tobytes()
            ).output_size
        assert partitioned_bytes < private_bytes

    def test_reset_clears_all_shards(self):
        codec = PartitionedCodec(shards=2)
        codec.compress(words_to_bytes([1, 2, 3, 4]))
        codec.reset()
        decoder = PartitionedCodec(shards=2)
        batch = words_to_bytes([1, 2, 3, 4])
        assert decoder.decompress(codec.compress(batch)) == batch


class TestCorruption:
    def test_shard_count_mismatch(self, rovio_data):
        payload = PartitionedCodec(shards=4).compress(rovio_data)
        with pytest.raises(CorruptStreamError, match="shards"):
            PartitionedCodec(shards=2).decompress(payload)

    def test_truncated_stream(self, rovio_data):
        payload = PartitionedCodec(shards=2).compress(rovio_data)
        with pytest.raises(CorruptStreamError):
            PartitionedCodec(shards=2).decompress(payload[:12])

    def test_too_short_header(self):
        with pytest.raises(CorruptStreamError):
            PartitionedCodec(shards=2).decompress(b"\x00")


class TestRatioAccounting:
    def test_ratio_includes_routing_overhead(self, rovio_data):
        """The convenience ratio is end-to-end: shard payloads plus the
        routing stream plus framing."""
        codec = PartitionedCodec(shards=6)
        ratio = PartitionedCodec(shards=6).compression_ratio(rovio_data)
        payload = codec.compress(rovio_data)
        assert ratio == pytest.approx(len(rovio_data) / len(payload))
