"""The Jetson-TX2-class board (future-work hardware) and ablations."""

import pytest

from repro.simcore.boards import jetson_tx2_like, rk3399
from repro.simcore.interconnect import Path


@pytest.fixture(scope="module")
def jetson():
    return jetson_tx2_like()


class TestTopology:
    def test_four_plus_two(self, jetson):
        assert len(jetson.little_core_ids) == 4
        assert len(jetson.big_core_ids) == 2

    def test_core_models(self, jetson):
        assert jetson.core_by_id[0].model == "Cortex-A57"
        assert jetson.core_by_id[4].model == "Denver2"

    def test_same_max_frequency_both_clusters(self, jetson):
        assert (
            jetson.core_by_id[0].max_frequency_mhz
            == jetson.core_by_id[4].max_frequency_mhz
        )


class TestMilderAsymmetry:
    def test_no_in_order_dip(self, jetson):
        """A57 is out-of-order: its η must be monotone (no κ 30-70 dip
        like the A53's)."""
        a57 = jetson.core_by_id[0].eta
        values = [a57.value(k) for k in range(5, 400, 5)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_denver_faster_everywhere(self, jetson):
        for kappa in (50, 150, 300, 450):
            assert (
                jetson.core_by_id[4].eta.value(kappa)
                > jetson.core_by_id[0].eta.value(kappa)
            )

    def test_a57_more_efficient(self, jetson):
        for kappa in (50, 150, 300):
            assert (
                jetson.core_by_id[0].zeta.value(kappa)
                > jetson.core_by_id[4].zeta.value(kappa)
            )

    def test_speed_gap_milder_than_rk3399(self, jetson):
        rk = rk3399()
        kappa = 300
        rk_gap = rk.core_by_id[4].eta.value(kappa) / rk.core_by_id[0].eta.value(
            kappa
        )
        jetson_gap = jetson.core_by_id[4].eta.value(
            kappa
        ) / jetson.core_by_id[0].eta.value(kappa)
        assert jetson_gap < rk_gap

    def test_interconnect_cheaper_than_rk3399(self, jetson):
        rk = rk3399()
        for path in (Path.C0, Path.C1, Path.C2):
            assert jetson.interconnect.unit_cost(path) <= (
                rk.interconnect.unit_cost(path)
            )

    def test_direction_asymmetry_still_present(self, jetson):
        assert jetson.interconnect.unit_cost(Path.C2) > (
            jetson.interconnect.unit_cost(Path.C1)
        )


class TestSchedulingOnJetson:
    def test_cstream_schedules_and_meets_constraint(self, jetson):
        from repro.bench.harness import Harness, WorkloadSpec

        harness = Harness(board=jetson, repetitions=5,
                          batches_per_repetition=4, profile_batches=3)
        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=8192)
        result = harness.run(spec, "CStream")
        assert result.clcv == 0.0

    def test_faster_board_lower_latency(self, jetson):
        from repro.bench.harness import Harness, WorkloadSpec

        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=8192)
        latencies = {}
        for board in (rk3399(), jetson):
            harness = Harness(board=board, repetitions=5,
                              batches_per_repetition=4, profile_batches=3)
            latencies[board.name] = harness.run(
                spec, "CStream"
            ).mean_latency_us_per_byte
        assert latencies[jetson.name] < latencies[rk3399().name]


class TestAblationExperiments:
    def test_guard_band_rows(self, small_harness):
        from repro.bench.exp_ablations import abl_guard_band

        result = abl_guard_band(small_harness, repetitions=5)
        assert len(result.rows) == 4
        values = result.extras["values"]
        # Tighter bands never reduce headroom.
        assert values[0.90]["headroom"] >= values[1.0]["headroom"]

    def test_fusion_ablation_orders_granularities(self, small_harness):
        from repro.bench.exp_ablations import abl_fusion

        result = abl_fusion(small_harness, repetitions=5)
        values = result.extras["values"]
        assert values["no fusion"]["stages"] > values["fusion rule"]["stages"]
        assert values["fully fused"]["stages"] == 1
        # Full fusion is the most expensive variant.
        assert values["fully fused"]["E"] > values["fusion rule"]["E"]

    def test_regulator_ablation_stats_faster(self, small_harness):
        from repro.bench.exp_ablations import abl_regulator

        result = abl_regulator(small_harness)
        extras = result.extras
        assert len(extras["stats"]["violations"]) <= len(
            extras["pid"]["violations"]
        )
        assert extras["stats"]["transient_energy"] <= (
            extras["pid"]["transient_energy"] * 1.001
        )

    def test_boards_ablation_covers_both(self):
        from repro.bench.exp_ablations import abl_boards

        result = abl_boards(repetitions=4)
        boards = {row[0] for row in result.rows}
        assert len(boards) == 2
