"""Persistent result cache + parallel grid executor (repro.bench.cache /
repro.bench.parallel).

The property that makes the layer safe for paper-fidelity figures:
serial, parallel and warm-cache execution of the same grid produce
identical ``RunResult`` numbers for every cell.
"""


import pytest

from repro.bench.cache import (
    CACHE_VERSION,
    ResultCache,
    default_cache,
    stable_digest,
)
from repro.bench.harness import Harness, WorkloadSpec
from repro.bench.parallel import default_jobs, run_grid
from repro.simcore.boards import jetson_tx2_like, rk3399

TEST_BATCH = 4096


def small_harness(cache=None, **kwargs):
    kwargs.setdefault("repetitions", 2)
    kwargs.setdefault("batches_per_repetition", 4)
    kwargs.setdefault("profile_batches", 3)
    return Harness(cache=cache, **kwargs)


@pytest.fixture
def spec():
    return WorkloadSpec.of("tcomp32", "rovio", batch_size=TEST_BATCH)


@pytest.fixture
def grid_specs():
    return [
        WorkloadSpec.of("tcomp32", "rovio", batch_size=TEST_BATCH),
        WorkloadSpec.of("tdic32", "stock", batch_size=TEST_BATCH),
    ]


class TestResultCache:
    def test_round_trip_equals_original(self, tmp_path, spec):
        harness = small_harness(cache=ResultCache(tmp_path))
        original = harness.run(spec, "RR")
        reloaded = ResultCache(tmp_path).get(
            harness.run_key(spec, "RR", None, {})
        )
        assert reloaded == original

    def test_version_salt_invalidates(self, tmp_path):
        ResultCache(tmp_path, salt="v1").put(("k",), "value")
        assert ResultCache(tmp_path, salt="v1").get(("k",)) == "value"
        assert ResultCache(tmp_path, salt="v2").get(("k",)) is None

    def test_default_salt_is_code_version(self, tmp_path):
        assert ResultCache(tmp_path).salt == CACHE_VERSION

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path, spec):
        harness = small_harness(cache=ResultCache(tmp_path))
        original = harness.run(spec, "RR")
        key = harness.run_key(spec, "RR", None, {})
        path = harness.cache.path_for(harness.cache.key(key))
        path.write_bytes(b"not a pickle")
        # A fresh harness on the same directory must not crash or serve
        # garbage: the entry is evicted, the cell recomputed identically.
        fresh = small_harness(cache=ResultCache(tmp_path))
        assert fresh.run(spec, "RR") == original
        assert fresh.cache.stats.evictions == 1

    def test_truncated_pickle_falls_back(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(("k",), list(range(100)))
        path = cache.path_for(cache.key(("k",)))
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(("k",)) is None
        assert cache.get(("k",)) is None  # evicted, stays a plain miss

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(5):
            cache.put(("key", index), index)
        assert not list(cache.directory.rglob("*.tmp"))
        assert len(cache) == 5

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(("missing",)) is None
        cache.put(("there",), 1)
        assert cache.get(("there",)) == 1
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (
            1, 1, 1,
        )
        assert cache.stats.hit_rate == 0.5

    def test_stable_digest_is_process_independent(self):
        # Hard-coded expectation: the digest must never depend on
        # PYTHONHASHSEED or process identity.
        assert stable_digest(("a", 1, 2.5), salt="s") == (
            stable_digest(("a", 1, 2.5), salt="s")
        )
        assert stable_digest(("a",)) != stable_digest(("b",))

    def test_default_cache_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None and cache.directory == tmp_path


class TestHarnessKeys:
    def test_run_key_includes_board(self, spec):
        a = small_harness(board=rk3399())
        b = small_harness(board=jetson_tx2_like())
        assert a.run_key(spec, "RR") != b.run_key(spec, "RR")

    def test_run_key_includes_rep_and_batch_counts_and_seed(self, spec):
        base = small_harness()
        assert base.run_key(spec, "RR") != small_harness(
            batches_per_repetition=7
        ).run_key(spec, "RR")
        assert base.run_key(spec, "RR") != small_harness(seed=1).run_key(
            spec, "RR"
        )
        assert base.run_key(spec, "RR", 2) != base.run_key(spec, "RR", 3)

    def test_mutated_board_cannot_serve_stale_cells(self, spec):
        harness = small_harness()
        harness.run(spec, "RR")
        assert harness.cached_run(spec, "RR") is not None
        harness.board = jetson_tx2_like()
        assert harness.cached_run(spec, "RR") is None

    def test_clear_caches(self, spec):
        harness = small_harness()
        harness.run(spec, "RR")
        assert harness._profiles and harness._contexts and harness._runs
        harness.clear_caches()
        assert not (harness._profiles or harness._contexts or harness._runs)

    def test_explicit_none_disables_persistent_cache(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert Harness(cache=None).cache is None
        assert Harness().cache is not None


class TestParallelGrid:
    MECHANISMS = ["CStream", "RR"]

    def test_serial_and_parallel_results_identical(self, grid_specs):
        serial = small_harness().grid(
            grid_specs, self.MECHANISMS, repetitions=2
        )
        parallel = small_harness().grid(
            grid_specs, self.MECHANISMS, jobs=2, repetitions=2
        )
        assert serial == parallel
        assert set(serial) == {
            (spec.label, mechanism)
            for spec in grid_specs
            for mechanism in self.MECHANISMS
        }

    def test_warm_cache_identical_with_no_dispatch(self, tmp_path,
                                                   grid_specs):
        cold = small_harness(cache=ResultCache(tmp_path))
        expected = cold.grid(grid_specs, self.MECHANISMS, jobs=2,
                             repetitions=2)
        warm = small_harness(cache=ResultCache(tmp_path))
        assert warm.grid(grid_specs, self.MECHANISMS, jobs=2,
                         repetitions=2) == expected
        # Every cell was a persistent-cache hit; no worker ran.
        assert warm.cache.stats.hits == len(expected)
        assert warm.cache.stats.stores == 0

    def test_parallel_results_merged_into_memory_cache(self, grid_specs):
        harness = small_harness()
        results = harness.grid(grid_specs, self.MECHANISMS, jobs=2,
                               repetitions=2)
        for spec in grid_specs:
            for mechanism in self.MECHANISMS:
                assert harness.cached_run(spec, mechanism, 2, {}) is (
                    results[(spec.label, mechanism)]
                )

    def test_profile_sharing_fast_path(self, grid_specs):
        harness = small_harness()
        run_grid(harness, grid_specs, self.MECHANISMS, jobs=2, repetitions=2)
        # The parent computed (and kept) one profile per spec to ship.
        assert len(harness._profiles) == len(grid_specs)

    def test_default_jobs_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert default_jobs() == 3
        assert Harness(repetitions=2).jobs == 3
