"""Pipeline executor semantics on the simulated board."""

import pytest

from repro.core.plan import SchedulingPlan
from repro.errors import ConfigurationError
from repro.runtime.executor import (
    ExecutionConfig,
    MechanismDynamics,
    PipelineExecutor,
)
from repro.simcore.boards import rk3399

BIG, BIG2, LITTLE = 4, 5, 0


@pytest.fixture(scope="module")
def setup():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset

    board = rk3399()
    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=5
    )
    context = WorkloadContext.build(board, profile, 26.0)
    return board, profile, context


def make_executor(board, **overrides):
    options = {
        "latency_constraint_us_per_byte": 26.0,
        "repetitions": 3,
        "batches_per_repetition": 5,
        "warmup_batches": 2,
        "seed": 1,
    }
    options.update(overrides)
    return PipelineExecutor(board, ExecutionConfig(**options))


def paper_plan(context):
    return SchedulingPlan(
        graph=context.fine_graph, assignments=((BIG,), (LITTLE,))
    )


class TestConfigValidation:
    def test_invalid_constraint(self, setup):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(latency_constraint_us_per_byte=0)

    def test_warmup_must_leave_batches(self, setup):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                batches_per_repetition=2,
                warmup_batches=2,
            )

    def test_zero_repetitions_rejected(self, setup):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0, repetitions=0
            )


class TestBasicExecution:
    def test_all_batches_complete(self, setup):
        board, profile, context = setup
        executor = make_executor(board)
        result = executor.run(
            paper_plan(context),
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
        )
        assert len(result.repetitions) == 3
        for repetition in result.repetitions:
            assert len(repetition.batches) == 5

    def test_deterministic_given_seed(self, setup):
        board, profile, context = setup
        results = [
            make_executor(board).run(
                paper_plan(context),
                profile.per_batch_step_costs,
                profile.batch_size_bytes,
            )
            for _ in range(2)
        ]
        assert results[0].mean_energy_uj_per_byte == (
            results[1].mean_energy_uj_per_byte
        )
        assert results[0].mean_latency_us_per_byte == (
            results[1].mean_latency_us_per_byte
        )

    def test_measured_latency_matches_model(self, setup):
        """Steady-state period ≈ the cost model's L_est (Table V)."""
        board, profile, context = setup
        model = context.cost_model(context.fine_graph)
        estimate = model.evaluate(paper_plan(context))
        executor = make_executor(board, noise_sigma=0.0)
        result = executor.run(
            paper_plan(context),
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
        )
        assert result.mean_latency_us_per_byte == pytest.approx(
            estimate.latency_us_per_byte, rel=0.05
        )

    def test_pipeline_fill_batch_slower(self, setup):
        board, profile, context = setup
        executor = make_executor(board, noise_sigma=0.0)
        result = executor.run(
            paper_plan(context),
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
        )
        batches = result.repetitions[0].batches
        # Batch 0 crosses the whole pipeline; later ones are periods.
        assert batches[0].latency_us_per_byte > batches[2].latency_us_per_byte

    def test_plan_provider_called_per_repetition(self, setup):
        board, profile, context = setup
        seen = []

        def provider(repetition, rng):
            seen.append(repetition)
            return paper_plan(context)

        make_executor(board).run(
            provider, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        assert seen == [0, 1, 2]


class TestCapacityEffects:
    def test_colocation_serializes(self, setup):
        board, profile, context = setup
        apart = SchedulingPlan(
            graph=context.fine_graph, assignments=((BIG,), (BIG2,))
        )
        together = SchedulingPlan(
            graph=context.fine_graph, assignments=((BIG,), (BIG,))
        )
        executor = make_executor(board, noise_sigma=0.0)
        run = lambda plan: executor.run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        ).mean_latency_us_per_byte
        assert run(together) > run(apart) * 1.5

    def test_replication_splits_work(self, setup):
        board, profile, context = setup
        single = SchedulingPlan(
            graph=context.fine_graph, assignments=((BIG,), (0,))
        )
        replicated = SchedulingPlan(
            graph=context.fine_graph, assignments=((BIG,), (0, 1))
        )
        executor = make_executor(board, noise_sigma=0.0)
        run = lambda plan: executor.run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        ).mean_latency_us_per_byte
        assert run(replicated) < run(single)


class TestCommunicationEffects:
    def test_cross_cluster_direction_asymmetry(self, setup):
        """little->big consumers wait longer than big->little (c2 > c1).

        Synthetic costs make the producer nearly free, so the measured
        period isolates consumer compute + transfer latency.
        """
        from repro.compression.base import StepCost

        board, profile, context = setup
        batch = profile.batch_size_bytes
        synthetic = {
            "s0": StepCost(instructions=100, memory_accesses=10,
                           input_bytes=batch, output_bytes=batch),
            "s1": StepCost(instructions=100, memory_accesses=10,
                           input_bytes=batch, output_bytes=batch),
            "s2": StepCost(instructions=batch * 20, memory_accesses=batch,
                           input_bytes=batch, output_bytes=batch // 2),
        }
        executor = make_executor(board, noise_sigma=0.0)

        def period(producer, consumer):
            plan = SchedulingPlan(
                graph=context.fine_graph,
                assignments=((producer,), (consumer,)),
            )
            return executor.run(
                plan, [synthetic] * 5, batch
            ).mean_latency_us_per_byte

        intra = period(BIG, BIG2)
        big_to_little_extra = period(BIG, LITTLE) - period(LITTLE, LITTLE)
        little_to_big_extra = period(LITTLE, BIG) - period(BIG2, BIG)
        assert little_to_big_extra > big_to_little_extra > 0
        assert period(LITTLE, BIG) > intra


class TestEnergyAccounting:
    def test_violating_plan_pays_overload_penalty(self, setup):
        board, profile, context = setup
        violating = SchedulingPlan(
            graph=context.fine_graph, assignments=((LITTLE,), (1,))
        )
        with_penalty = make_executor(board).run(
            violating, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        without_penalty = make_executor(board, overload_penalty=0.0).run(
            violating, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        assert with_penalty.clcv == 1.0
        assert (
            with_penalty.mean_energy_uj_per_byte
            > without_penalty.mean_energy_uj_per_byte
        )

    def test_feasible_plan_pays_no_penalty(self, setup):
        board, profile, context = setup
        plan = paper_plan(context)
        with_penalty = make_executor(board).run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        without_penalty = make_executor(board, overload_penalty=0.0).run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        assert with_penalty.mean_energy_uj_per_byte == pytest.approx(
            without_penalty.mean_energy_uj_per_byte
        )

    def test_os_dynamics_cost_more(self, setup):
        board, profile, context = setup
        plan = paper_plan(context)
        executor = make_executor(board)
        quiet = executor.run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        noisy = executor.run(
            plan,
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
            dynamics=MechanismDynamics(
                context_switches_per_kb=58.6,
                migration_rate_per_batch=0.3,
                latency_jitter_sigma=0.02,
            ),
        )
        assert (
            noisy.mean_energy_uj_per_byte > quiet.mean_energy_uj_per_byte
        )
        assert (
            noisy.mean_latency_us_per_byte > quiet.mean_latency_us_per_byte
        )

    def test_energy_scale_matches_model(self, setup):
        board, profile, context = setup
        model = context.cost_model(context.fine_graph)
        estimate = model.evaluate(paper_plan(context))
        result = make_executor(board, noise_sigma=0.0).run(
            paper_plan(context),
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
        )
        # Measured >= modelled (static floor, message energy), within 15%.
        assert result.mean_energy_uj_per_byte >= estimate.energy_uj_per_byte
        assert result.mean_energy_uj_per_byte == pytest.approx(
            estimate.energy_uj_per_byte, rel=0.15
        )


class TestSharedState:
    def test_shared_state_slows_and_burns(self, setup):
        board, profile, context = setup
        # Two lock-contended replicas form the pipeline bottleneck.
        plan = SchedulingPlan(
            graph=context.fine_graph, assignments=((BIG,), (0, 1))
        )
        shared = make_executor(board, shared_state=True).run(
            plan,
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
            shared_state_stages={1},
        )
        private = make_executor(board, shared_state=False).run(
            plan,
            profile.per_batch_step_costs,
            profile.batch_size_bytes,
            shared_state_stages={1},
        )
        assert (
            shared.mean_latency_us_per_byte
            > private.mean_latency_us_per_byte
        )
        assert (
            shared.mean_energy_uj_per_byte > private.mean_energy_uj_per_byte
        )


class TestGovernors:
    def test_static_frequency_map_slows_execution(self, setup):
        board, profile, context = setup
        plan = paper_plan(context)
        fast = make_executor(board, noise_sigma=0.0).run(
            plan, profile.per_batch_step_costs, profile.batch_size_bytes
        )
        slow = make_executor(
            board,
            noise_sigma=0.0,
            frequency_map={BIG: 600.0, BIG2: 600.0, 0: 600.0, 1: 600.0,
                           2: 600.0, 3: 600.0},
        ).run(plan, profile.per_batch_step_costs, profile.batch_size_bytes)
        assert (
            slow.mean_latency_us_per_byte > fast.mean_latency_us_per_byte
        )

    def test_conservative_governor_steps_down_idle_cores(self, setup):
        board, profile, context = setup
        plan = paper_plan(context)
        executor = make_executor(
            board,
            governor="conservative",
            repetitions=1,
            batches_per_repetition=10,
            warmup_batches=4,
        )
        result = executor.run(
            plan, profile.per_batch_step_costs * 2, profile.batch_size_bytes
        )
        default = make_executor(
            board, repetitions=1, batches_per_repetition=10, warmup_batches=4
        ).run(plan, profile.per_batch_step_costs * 2, profile.batch_size_bytes)
        assert (
            result.mean_energy_uj_per_byte
            < default.mean_energy_uj_per_byte
        )
