"""The six mechanisms and the break-down ablations."""

import numpy as np
import pytest

from repro.core.baselines import (
    MECHANISM_NAMES,
    AsymmetricComputationAblation,
    BigOnlyMechanism,
    CStreamMechanism,
    CoarseGrainedMechanism,
    DecompositionAblation,
    LittleOnlyMechanism,
    OSMechanism,
    RoundRobinMechanism,
    SimpleAblation,
    get_mechanism,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def context():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    return WorkloadContext.build(rk3399(), profile, 26.0)


class TestRegistry:
    def test_paper_names(self):
        assert MECHANISM_NAMES == ("CStream", "OS", "CS", "RR", "BO", "LO")

    def test_all_resolve(self):
        for name in MECHANISM_NAMES:
            assert get_mechanism(name).name == name

    def test_ablation_aliases(self):
        assert isinstance(get_mechanism("+asy-comm."), CStreamMechanism)
        assert isinstance(
            get_mechanism("+asy-comp."), AsymmetricComputationAblation
        )

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_mechanism("magic")


class TestCStream:
    def test_uses_fine_graph(self, context):
        outcome = CStreamMechanism().prepare(context)
        assert outcome.graph is context.fine_graph
        assert outcome.scheduled_feasible

    def test_plan_is_model_optimal(self, context):
        outcome = CStreamMechanism().prepare(context)
        assert outcome.estimate is not None
        assert outcome.estimate.feasible

    def test_minimal_context_switching(self, context):
        outcome = CStreamMechanism().prepare(context)
        assert outcome.dynamics.context_switches_per_kb < 0.1


class TestCS:
    def test_uses_coarse_graph(self, context):
        outcome = CoarseGrainedMechanism().prepare(context)
        assert outcome.graph is context.coarse_graph
        assert outcome.graph.stage_count == 1

    def test_more_energy_than_cstream(self, context):
        cstream = CStreamMechanism().prepare(context)
        coarse = CoarseGrainedMechanism().prepare(context)
        assert (
            coarse.estimate.energy_uj_per_byte
            > cstream.estimate.energy_uj_per_byte
        )


class TestRR:
    def test_sequential_core_mapping(self, context):
        outcome = RoundRobinMechanism().prepare(context)
        cores = [cores[0] for cores in outcome.plan.assignments]
        assert cores == list(
            context.board.core_ids[: context.fine_graph.stage_count]
        )


class TestRandomizedMechanisms:
    def test_bo_only_big_cores(self, context):
        outcome = BigOnlyMechanism().prepare(context)
        big = set(context.board.big_core_ids)
        for repetition in range(5):
            plan = outcome.plan(repetition, np.random.default_rng(repetition))
            assert set(plan.cores_used()) <= big

    def test_lo_only_little_cores(self, context):
        outcome = LittleOnlyMechanism().prepare(context)
        little = set(context.board.little_core_ids)
        for repetition in range(5):
            plan = outcome.plan(repetition, np.random.default_rng(repetition))
            assert set(plan.cores_used()) <= little

    def test_placements_vary_across_repetitions(self, context):
        outcome = LittleOnlyMechanism().prepare(context)
        plans = {
            outcome.plan(r, np.random.default_rng(r)).flat()
            for r in range(20)
        }
        assert len(plans) > 1


class TestOS:
    def test_worker_count_defaults_to_cores(self, context):
        outcome = OSMechanism().prepare(context)
        plan = outcome.plan(0, np.random.default_rng(0))
        assert plan.total_replicas == len(context.board.cores)

    def test_heavy_context_switching(self, context):
        outcome = OSMechanism().prepare(context)
        assert outcome.dynamics.context_switches_per_kb > 10
        assert outcome.dynamics.migration_rate_per_batch > 0

    def test_custom_worker_count(self, context):
        outcome = OSMechanism(worker_count=3).prepare(context)
        plan = outcome.plan(0, np.random.default_rng(0))
        assert plan.total_replicas == 3


class TestAblations:
    def test_simple_replicates_whole_procedure(self, context):
        outcome = SimpleAblation(replicas=2).prepare(context)
        plan = outcome.plan(0, np.random.default_rng(0))
        assert plan.graph.stage_count == 1
        assert plan.replicas(0) == 2
        # Replicas land on distinct cores.
        assert len(set(plan.assignments[0])) == 2

    def test_simple_rejects_zero_replicas(self):
        with pytest.raises(ConfigurationError):
            SimpleAblation(replicas=0)

    def test_decomposition_ablation_uses_fine_graph(self, context):
        outcome = DecompositionAblation().prepare(context)
        plan = outcome.plan(0, np.random.default_rng(0))
        assert plan.graph is context.fine_graph

    def test_asy_comp_blind_to_communication(self, context):
        """The +asy-comp. plan is chosen with l_comm = 0, so its real
        latency exceeds its belief."""
        outcome = AsymmetricComputationAblation().prepare(context)
        aware_model = context.cost_model(context.fine_graph)
        true_estimate = aware_model.evaluate(outcome.plan)
        assert (
            true_estimate.latency_us_per_byte
            > outcome.estimate.latency_us_per_byte
        )
