"""Framed streaming sessions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression.stream import (
    FRAME_MAGIC,
    CompressionSession,
    DecompressionSession,
)
from repro.datasets import get_dataset
from repro.errors import CorruptStreamError


def batches(count=4, size=2048):
    return list(get_dataset("rovio").stream(size, count, seed=5))


class TestRoundTrip:
    @pytest.mark.parametrize("codec_name", ["tcomp32", "tdic32", "lz4"])
    def test_multi_batch_stream(self, codec_name):
        originals = batches()
        encoder = CompressionSession(get_codec(codec_name))
        frames = [encoder.write_batch(batch) for batch in originals]
        decoder = DecompressionSession(get_codec(codec_name))
        decoded = []
        for frame in frames:
            decoded.extend(decoder.feed(frame))
        decoder.finish()
        assert decoded == originals

    def test_byte_dribble_reassembly(self):
        """Frames split at arbitrary byte boundaries still decode."""
        originals = batches(3)
        encoder = CompressionSession(get_codec("tdic32"))
        wire = b"".join(encoder.write_batch(b) for b in originals)
        decoder = DecompressionSession(get_codec("tdic32"))
        decoded = []
        for offset in range(0, len(wire), 97):
            decoded.extend(decoder.feed(wire[offset:offset + 97]))
        decoder.finish()
        assert decoded == originals

    def test_write_stream_generator(self):
        originals = batches(3)
        encoder = CompressionSession(get_codec("tcomp32"))
        frames = list(encoder.write_stream(iter(originals)))
        assert len(frames) == 3
        assert encoder.frames_written == 3

    @given(st.lists(st.binary(min_size=4, max_size=64).map(
        lambda b: b[: len(b) - len(b) % 4]), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_batches(self, raw_batches):
        raw_batches = [b for b in raw_batches if b]
        if not raw_batches:
            return
        encoder = CompressionSession(get_codec("tcomp32"))
        decoder = DecompressionSession(get_codec("tcomp32"))
        decoded = []
        for batch in raw_batches:
            decoded.extend(decoder.feed(encoder.write_batch(batch)))
        assert decoded == raw_batches


class TestAccounting:
    def test_ratio_includes_framing(self):
        encoder = CompressionSession(get_codec("tcomp32"))
        batch = bytes(4096)  # all zero: highly compressible
        encoder.write_batch(batch)
        assert 1.0 < encoder.compression_ratio < 4096 / 10

    def test_empty_session_ratio(self):
        assert CompressionSession(
            get_codec("tcomp32")
        ).compression_ratio == float("inf")


class TestCorruption:
    def wire(self, codec_name="tcomp32", count=2):
        encoder = CompressionSession(get_codec(codec_name))
        return b"".join(encoder.write_batch(b) for b in batches(count))

    def test_bad_magic_detected(self):
        wire = bytearray(self.wire())
        wire[0] ^= 0xFF
        decoder = DecompressionSession(get_codec("tcomp32"))
        with pytest.raises(CorruptStreamError, match="magic"):
            decoder.feed(bytes(wire))

    def test_payload_corruption_detected_by_checksum(self):
        wire = bytearray(self.wire())
        wire[20] ^= 0x01  # inside the first payload
        decoder = DecompressionSession(get_codec("tcomp32"))
        with pytest.raises(CorruptStreamError, match="checksum"):
            decoder.feed(bytes(wire))

    def test_dropped_frame_detected(self):
        encoder = CompressionSession(get_codec("tcomp32"))
        frames = [encoder.write_batch(b) for b in batches(3)]
        decoder = DecompressionSession(get_codec("tcomp32"))
        decoder.feed(frames[0])
        with pytest.raises(CorruptStreamError, match="out of order"):
            decoder.feed(frames[2])  # frame 1 lost

    def test_codec_mismatch_detected(self):
        wire = self.wire("tdic32")  # stateful flag set
        decoder = DecompressionSession(get_codec("tcomp32"))
        with pytest.raises(CorruptStreamError, match="statefulness"):
            decoder.feed(wire)

    def test_trailing_garbage_detected(self):
        decoder = DecompressionSession(get_codec("tcomp32"))
        decoder.feed(self.wire() + b"\x00\x01")
        with pytest.raises(CorruptStreamError, match="trailing"):
            decoder.finish()

    def test_magic_constant_value(self):
        assert FRAME_MAGIC == 0xC57E  # "CStrEam"
