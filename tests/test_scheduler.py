"""Plan search and iterative scaling (§V-C, §IV-B)."""

import itertools

import pytest

from repro.core.plan import SchedulingPlan
from repro.core.scheduler import Scheduler
from repro.errors import InfeasiblePlanError


@pytest.fixture(scope="module")
def context():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    return WorkloadContext.build(rk3399(), profile, 26.0)


@pytest.fixture(scope="module")
def model(context):
    return context.cost_model(context.fine_graph)


class TestSearch:
    def test_finds_paper_optimal_plan(self, model):
        """At L_set=26 the optimum is t0@big + t1@little (Table IV/V)."""
        scheduler = Scheduler(model)
        result = scheduler.schedule()
        assert result.feasible
        plan = result.plan
        big = set(model.board.big_core_ids)
        little = set(model.board.little_core_ids)
        assert set(plan.assignments[0]) <= big
        assert set(plan.assignments[1]) <= little
        assert result.replica_counts == (1, 1)

    def test_optimal_among_exhaustive_enumeration(self, model, context):
        """The cluster-split search matches brute force over all
        single-replica core assignments."""
        scheduler = Scheduler(model)
        best, _, _ = scheduler.search((1, 1))
        brute_best = None
        for cores in itertools.product(model.board.core_ids, repeat=2):
            plan = SchedulingPlan(
                graph=context.fine_graph,
                assignments=tuple((core,) for core in cores),
            )
            estimate = model.evaluate(plan)
            if estimate.feasible and (
                brute_best is None
                or estimate.energy_uj_per_byte < brute_best.energy_uj_per_byte
            ):
                brute_best = estimate
        assert best.energy_uj_per_byte == pytest.approx(
            brute_best.energy_uj_per_byte
        )

    def test_min_latency_plan_returned(self, model):
        scheduler = Scheduler(model)
        _, min_latency, _ = scheduler.search((1, 1))
        assert min_latency is not None
        # The fastest single-replica plan uses big cores for both tasks.
        assert set(min_latency.plan.cores_used()) <= set(
            model.board.big_core_ids
        )

    def test_plan_count_reported(self, model):
        result = Scheduler(model).schedule()
        assert result.plans_evaluated > 0

    def test_pruned_search_matches_unpruned(self, model):
        """The branch-and-bound cuts must be admissible: the optimum
        equals a no-pruning enumeration over the same split space."""
        import itertools as it

        scheduler = Scheduler(model)
        for counts in ((1, 1), (2, 1), (2, 2), (1, 3)):
            best, fastest, _ = scheduler.search(counts)
            stage_splits = [
                list(scheduler._stage_placements(r)) for r in counts
            ]
            exhaustive_best = None
            exhaustive_fastest = None
            for combo in it.product(*stage_splits):
                load = {}
                assignments = []
                for stage_index, split in enumerate(combo):
                    cores = scheduler._assign_cores(split, load)
                    assignments.append(cores)
                    for core in cores:
                        load[core] = load.get(core, 0.0) + (
                            model.compute_latency(
                                stage_index, core, len(cores)
                            )
                        )
                estimate = model.evaluate(
                    SchedulingPlan(
                        graph=model.graph, assignments=tuple(assignments)
                    )
                )
                if exhaustive_fastest is None or (
                    estimate.latency_us_per_byte
                    < exhaustive_fastest.latency_us_per_byte
                ):
                    exhaustive_fastest = estimate
                if estimate.feasible and (
                    exhaustive_best is None
                    or estimate.energy_uj_per_byte
                    < exhaustive_best.energy_uj_per_byte
                ):
                    exhaustive_best = estimate
            if exhaustive_best is None:
                assert best is None
            else:
                assert best.energy_uj_per_byte == pytest.approx(
                    exhaustive_best.energy_uj_per_byte
                )
            assert fastest.latency_us_per_byte == pytest.approx(
                exhaustive_fastest.latency_us_per_byte
            )


class TestIterativeScaling:
    def test_tight_constraint_forces_replication(self, context):
        tight = context.cost_model(context.fine_graph)
        tight.latency_constraint_us_per_byte = 12.0
        result = Scheduler(tight).schedule()
        assert result.feasible
        assert sum(result.replica_counts) > 2
        assert result.estimate.latency_us_per_byte <= 12.0

    def test_infeasible_raises_without_best_effort(self, context):
        impossible = context.cost_model(context.fine_graph)
        impossible.latency_constraint_us_per_byte = 0.5
        with pytest.raises(InfeasiblePlanError):
            Scheduler(impossible).schedule()

    def test_best_effort_returns_min_latency(self, context):
        impossible = context.cost_model(context.fine_graph)
        impossible.latency_constraint_us_per_byte = 0.5
        result = Scheduler(impossible).schedule(best_effort=True)
        assert not result.feasible
        assert result.estimate.latency_us_per_byte > 0.5

    def test_energy_monotone_in_constraint(self, context):
        """Fig 10: looser constraints never cost more energy."""
        energies = []
        for constraint in (12.0, 17.0, 22.0, 27.0, 40.0):
            model = context.cost_model(context.fine_graph)
            model.latency_constraint_us_per_byte = constraint
            result = Scheduler(model).schedule(best_effort=True)
            energies.append(result.estimate.energy_uj_per_byte)
        assert all(b <= a * 1.001 for a, b in zip(energies, energies[1:]))

    def test_loose_constraint_prefers_little_cores(self, context):
        model = context.cost_model(context.fine_graph)
        model.latency_constraint_us_per_byte = 60.0
        result = Scheduler(model).schedule()
        little = set(model.board.little_core_ids)
        assert set(result.plan.cores_used()) <= little

    def test_replica_cap_respected(self, model):
        scheduler = Scheduler(model, max_replicas_per_stage=1)
        result = scheduler.schedule(best_effort=True)
        assert max(result.replica_counts) == 1


class TestCoarseGraphScheduling:
    def test_coarse_graph_needs_replication(self, context):
        """CS's behaviour: the whole procedure is too slow on one core,
        so data parallelism is its only lever (paper §VII-A)."""
        model = context.cost_model(context.coarse_graph)
        result = Scheduler(model).schedule(best_effort=True)
        assert result.feasible
        assert result.replica_counts[0] >= 2

    def test_coarse_costs_more_than_fine(self, context):
        """Decomposition's benefit (Fig 17): the fine-grained optimum
        beats the coarse-grained optimum on energy."""
        coarse = Scheduler(
            context.cost_model(context.coarse_graph)
        ).schedule(best_effort=True)
        fine = Scheduler(
            context.cost_model(context.fine_graph)
        ).schedule(best_effort=True)
        assert (
            fine.estimate.energy_uj_per_byte
            < coarse.estimate.energy_uj_per_byte
        )


class TestSearchInstrumentation:
    def test_schedule_attaches_search_stats(self, model):
        from repro.core.scheduler import SearchStats

        result = Scheduler(model).schedule(best_effort=True)
        stats = result.search_stats
        assert isinstance(stats, SearchStats)
        assert stats.plans_evaluated >= 1
        assert stats.nodes_expanded >= 1
        assert stats.scaling_rounds >= 1
        assert stats.wall_clock_s >= 0.0
        pairs = dict(stats.as_pairs())
        assert set(pairs) == {
            "nodes_expanded", "branches_pruned", "plans_evaluated",
            "scaling_rounds", "wall_clock_s", "warm_start_hits",
        }

    def test_stats_do_not_affect_equality(self, model):
        from dataclasses import replace

        first = Scheduler(model).schedule(best_effort=True)
        second = replace(first, search_stats=None)
        assert first == second

    def test_search_publishes_registry_counters(self, model):
        from repro.obs.registry import REGISTRY

        before = REGISTRY.counter("scheduler.plans_evaluated")
        Scheduler(model).schedule(best_effort=True)
        assert REGISTRY.counter("scheduler.plans_evaluated") > before
