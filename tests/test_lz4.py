"""lz4: LZ77-family block compression (Algorithm 5)."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import Lz4
from repro.errors import CompressionError, CorruptStreamError


@pytest.fixture
def codec():
    return Lz4()


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"").payload) == b""

    def test_short_literal_only(self, codec):
        data = b"hello"
        assert codec.decompress(codec.compress(data).payload) == data

    def test_long_repetition(self, codec):
        data = b"abcd" * 500
        result = codec.compress(data)
        assert codec.decompress(result.payload) == data
        assert result.compression_ratio > 10

    def test_single_byte_run(self, codec):
        """Self-overlapping match (offset 1) — the classic RLE case."""
        data = b"\x00" * 1000
        result = codec.compress(data)
        assert codec.decompress(result.payload) == data
        assert result.compression_ratio > 20

    def test_overlapping_match_offset_3(self, codec):
        data = b"xyz" * 300
        assert codec.decompress(codec.compress(data).payload) == data

    def test_incompressible(self, codec, rng):
        data = rng.integers(0, 256, 2000, dtype=np.uint8).tobytes()
        result = codec.compress(data)
        assert codec.decompress(result.payload) == data
        assert result.compression_ratio < 1.01

    def test_long_literal_run_extended_length(self, codec, rng):
        # > 15 literals triggers the extended-length encoding.
        data = bytes(rng.permutation(256).astype(np.uint8)) * 1
        assert codec.decompress(codec.compress(data).payload) == data

    def test_very_long_match_extended_length(self, codec):
        # match length >> 19 exercises 255-chains in the match field.
        data = b"Q" * 5000
        assert codec.decompress(codec.compress(data).payload) == data

    def test_text_like_data(self, codec, sensor_data):
        result = codec.compress(sensor_data)
        assert codec.decompress(result.payload) == sensor_data
        assert result.compression_ratio > 1.5

    def test_rovio_batch(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert codec.decompress(result.payload) == rovio_data

    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes(self, data):
        codec = Lz4()
        assert codec.decompress(codec.compress(data).payload) == data

    @given(
        st.binary(min_size=1, max_size=32),
        st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_repeated_fragments(self, fragment, repeats):
        codec = Lz4()
        data = fragment * repeats
        assert codec.decompress(codec.compress(data).payload) == data


class TestParameters:
    def test_invalid_index_bits(self):
        with pytest.raises(CompressionError):
            Lz4(index_bits=0)
        with pytest.raises(CompressionError):
            Lz4(index_bits=25)

    def test_invalid_max_search_length(self):
        with pytest.raises(CompressionError):
            Lz4(max_search_length=2)

    def test_max_search_length_splits_matches(self):
        data = b"Z" * 2000
        unbounded = Lz4().compress(data)
        bounded = Lz4(max_search_length=16).compress(data)
        assert bounded.counters["matches"] > unbounded.counters["matches"]
        assert Lz4().decompress(bounded.payload) == data

    def test_small_table_still_correct(self):
        codec = Lz4(index_bits=4)
        data = b"the quick brown fox " * 50
        assert codec.decompress(codec.compress(data).payload) == data


class TestCounters:
    def test_no_matches_in_unique_data(self, codec, rng):
        data = bytes(rng.permutation(200).astype(np.uint8))
        result = codec.compress(data)
        assert result.counters["matches"] == 0
        assert result.counters["matched_fraction"] == 0.0

    def test_matched_fraction_high_for_runs(self, codec):
        result = codec.compress(b"ab" * 1000)
        assert result.counters["matched_fraction"] > 0.95

    def test_literals_plus_matches_cover_input(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert (
            result.counters["matched_bytes"]
            + result.counters["literal_bytes"]
            == len(rovio_data)
        )

    def test_probe_count_bounded_by_input(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert 0 < result.counters["probes"] <= len(rovio_data)


class TestCostModel:
    def test_five_steps(self, codec):
        assert codec.step_ids() == ("s0", "s1", "s2", "s3", "s4")
        assert codec.stateful

    def test_s2_memory_bound(self, codec, stock_data):
        costs = codec.compress(stock_data).step_costs
        assert costs["s2"].operational_intensity < 30

    def test_s3_cost_grows_with_matching(self, codec):
        unique = Lz4().compress(bytes(range(256)) * 1)
        matched = Lz4().compress(b"abcdefgh" * 100)
        per_byte_unique = unique.step_costs["s3"].instructions / 256
        per_byte_matched = matched.step_costs["s3"].instructions / 800
        assert per_byte_matched > per_byte_unique

    def test_s4_cost_tracks_output(self, codec, rng):
        compressible = Lz4().compress(b"m" * 1000)
        incompressible = Lz4().compress(
            rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
        )
        assert (
            compressible.step_costs["s4"].instructions
            < incompressible.step_costs["s4"].instructions
        )


class TestCorruption:
    def test_truncated_header(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"ab")

    def test_truncated_literals(self, codec):
        payload = codec.compress(b"hello world, hello world").payload
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload[:8])

    def test_header_length_mismatch(self, codec):
        payload = bytearray(codec.compress(b"some data here").payload)
        struct.pack_into("<I", payload, 0, 5)  # promise fewer bytes
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(payload))

    def test_invalid_offset_zero(self, codec):
        # Hand-craft: 4 literals, then a match with offset 0.
        body = bytes([0x40]) + b"abcd" + b"\x00\x00"
        payload = struct.pack("<I", 10) + body
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload)

    def test_offset_beyond_output(self, codec):
        body = bytes([0x10]) + b"a" + b"\x05\x00"
        payload = struct.pack("<I", 6) + body
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload)
