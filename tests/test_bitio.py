"""Bit-level I/O: the foundation every codec builds on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter, bits_required
from repro.errors import CorruptStreamError


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_one_needs_one_bit(self):
        assert bits_required(1) == 1

    def test_paper_example(self):
        # Algorithm 2's comment: n=2 for number=3.
        assert bits_required(3) == 2

    def test_powers_of_two(self):
        for exponent in range(1, 32):
            assert bits_required(1 << exponent) == exponent + 1
            assert bits_required((1 << exponent) - 1) == exponent

    def test_max_uint32(self):
        assert bits_required(0xFFFFFFFF) == 32

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_required(-1)


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.getvalue() == b""
        assert len(writer) == 0

    def test_single_byte(self):
        writer = BitWriter()
        writer.write(0xAB, 8)
        assert writer.getvalue() == b"\xab"

    def test_msb_first_packing(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b1, 1)
        assert writer.getvalue() == bytes([0b1011_0000])

    def test_cross_byte_value(self):
        writer = BitWriter()
        writer.write(0xFFF, 12)
        assert writer.getvalue() == b"\xff\xf0"

    def test_bit_length_tracks_writes(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.write(0, 5)
        assert writer.bit_length == 6
        writer.write(0x7F, 7)
        assert writer.bit_length == 13

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert len(writer) == 0

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 4)

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0, -1)

    def test_write_bytes_aligned(self):
        writer = BitWriter()
        writer.write_bytes(b"abc")
        assert writer.getvalue() == b"abc"

    def test_write_bytes_unaligned(self):
        writer = BitWriter()
        writer.write(1, 4)
        writer.write_bytes(b"\xff")
        assert writer.getvalue() == b"\x1f\xf0"

    def test_align_pads_with_zeros(self):
        writer = BitWriter()
        writer.write(1, 1)
        writer.align()
        assert writer.bit_length == 8
        assert writer.getvalue() == b"\x80"

    def test_align_on_boundary_is_noop(self):
        writer = BitWriter()
        writer.write(0xFF, 8)
        writer.align()
        assert writer.bit_length == 8

    def test_getvalue_does_not_mutate(self):
        writer = BitWriter()
        writer.write(0b11, 2)
        first = writer.getvalue()
        second = writer.getvalue()
        assert first == second
        writer.write(0b111111, 6)
        assert writer.getvalue() == bytes([0b1111_1111])

    def test_large_value_64_bits(self):
        writer = BitWriter()
        writer.write((1 << 64) - 1, 64)
        assert writer.getvalue() == b"\xff" * 8


class TestBitReader:
    def test_read_back_single(self):
        reader = BitReader(b"\xab")
        assert reader.read(8) == 0xAB

    def test_read_partial_bits(self):
        reader = BitReader(bytes([0b1011_0000]))
        assert reader.read(3) == 0b101
        assert reader.read(1) == 0b1

    def test_position_advances(self):
        reader = BitReader(b"\xff\xff")
        reader.read(5)
        assert reader.position == 5
        assert reader.remaining_bits == 11

    def test_read_past_end_raises(self):
        reader = BitReader(b"\xff")
        with pytest.raises(CorruptStreamError):
            reader.read(9)

    def test_read_zero_bits(self):
        reader = BitReader(b"")
        assert reader.read(0) == 0

    def test_read_bytes_aligned_fast_path(self):
        reader = BitReader(b"hello world")
        assert reader.read_bytes(5) == b"hello"
        assert reader.read_bytes(6) == b" world"

    def test_read_bytes_unaligned(self):
        reader = BitReader(b"\x0f\xf0")
        reader.read(4)
        assert reader.read_bytes(1) == b"\xff"

    def test_read_bytes_past_end_raises(self):
        reader = BitReader(b"ab")
        with pytest.raises(CorruptStreamError):
            reader.read_bytes(3)

    def test_align_skips_to_boundary(self):
        reader = BitReader(b"\xff\x42")
        reader.read(3)
        reader.align()
        assert reader.position == 8
        assert reader.read(8) == 0x42

    def test_negative_width_rejected(self):
        reader = BitReader(b"\x00")
        with pytest.raises(ValueError):
            reader.read(-2)


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=(1 << 24) - 1),
                      st.integers(min_value=24, max_value=32)),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_sequences_round_trip(self, items):
        writer = BitWriter()
        for value, width in items:
            writer.write(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in items:
            assert reader.read(width) == value

    @given(st.binary(max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_bytes_round_trip(self, payload):
        writer = BitWriter()
        writer.write_bytes(payload)
        reader = BitReader(writer.getvalue())
        assert reader.read_bytes(len(payload)) == payload

    @given(
        st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=64
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_variable_width_codes_round_trip(self, widths):
        # Write each width's maximum value — the worst packing case.
        writer = BitWriter()
        for width in widths:
            writer.write((1 << width) - 1 if width else 0, width)
        reader = BitReader(writer.getvalue())
        for width in widths:
            expected = (1 << width) - 1 if width else 0
            assert reader.read(width) == expected
