"""Hardware model: rooflines, frequency scaling, power, replication."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.hardware import (
    CoreType,
    PiecewiseRoofline,
    replication_factor,
)
from repro.simcore.boards import rk3399


@pytest.fixture(scope="module")
def big(board_module=None):
    return rk3399().cores_of_type(CoreType.BIG)[0]


@pytest.fixture(scope="module")
def little():
    return rk3399().cores_of_type(CoreType.LITTLE)[0]


class TestPiecewiseRoofline:
    def test_segment_evaluation(self):
        curve = PiecewiseRoofline(
            breakpoints=(10.0, 20.0),
            slopes=(1.0, 0.5),
            intercepts=(0.0, 5.0),
            roof=15.0,
        )
        assert curve.value(5.0) == 5.0
        assert curve.value(15.0) == 12.5
        assert curve.value(100.0) == 15.0

    def test_roof_above_last_breakpoint(self):
        curve = PiecewiseRoofline((1.0,), (2.0,), (0.0,), roof=7.0)
        assert curve.value(50.0) == 7.0

    def test_negative_kappa_rejected(self):
        curve = PiecewiseRoofline((1.0,), (1.0,), (0.0,), roof=1.0)
        with pytest.raises(ValueError):
            curve.value(-1.0)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseRoofline((1.0, 2.0), (1.0,), (0.0,), roof=1.0)

    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseRoofline((2.0, 1.0), (1.0, 1.0), (0.0, 0.0), roof=1.0)

    def test_value_floors_at_epsilon(self):
        # A pathological segment dipping below zero must not return <= 0.
        curve = PiecewiseRoofline((10.0,), (-1.0,), (1.0,), roof=5.0)
        assert curve.value(9.0) > 0

    def test_sample_matches_value(self, little):
        kappas = (10.0, 50.0, 200.0)
        assert little.eta.sample(kappas) == tuple(
            little.eta.value(k) for k in kappas
        )


class TestAsymmetricComputation:
    """The asymmetric computation effect (paper §II-B)."""

    def test_big_faster_at_high_kappa(self, big, little):
        for kappa in (100, 200, 320, 450):
            assert big.eta.value(kappa) > little.eta.value(kappa)

    def test_little_more_efficient_everywhere(self, big, little):
        for kappa in (10, 50, 102, 220, 320):
            assert little.zeta.value(kappa) > big.zeta.value(kappa)

    def test_little_eta_dips_in_stall_region(self, little):
        """Fig 3's key observation: η decreases between κ 30 and 70 on
        the in-order little core."""
        assert little.eta.value(30) > little.eta.value(50) > little.eta.value(69)

    def test_big_eta_monotone(self, big):
        values = [big.eta.value(k) for k in range(5, 500, 5)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_capacity_is_roof(self, big):
        assert big.capacity() == big.eta.roof

    def test_big_core_advantage_grows_past_25(self, big, little):
        """Paper: above κ≈25 running on big cores becomes increasingly
        cost-effective."""
        gain_low = big.eta.value(25) / little.eta.value(25)
        gain_high = big.eta.value(300) / little.eta.value(300)
        assert gain_high > gain_low


class TestFrequencyScaling:
    def test_eta_scales_down(self, big):
        assert big.eta_at(300, 900.0) < big.eta_at(300, 1800.0)

    def test_eta_sublinear_in_frequency(self, big):
        half = big.eta_at(300, 900.0)
        full = big.eta_at(300, 1800.0)
        assert half > 0.5 * full  # memory-bound share does not scale

    def test_default_frequency_is_max(self, big):
        assert big.eta_at(300) == big.eta_at(300, 1800.0)

    def test_power_scales_superlinearly(self, big):
        half = big.busy_power_w(300, 900.0)
        full = big.busy_power_w(300, 1800.0)
        assert half < 0.5 * full

    def test_busy_power_at_max_matches_rooflines(self, big):
        kappa = 300
        expected = big.eta.value(kappa) / big.zeta.value(kappa)
        assert big.busy_power_w(kappa) == pytest.approx(expected)

    def test_energy_per_instruction_u_shape(self, little):
        """Fig 15: the lowest frequency is not the most efficient."""
        kappa = 102

        def energy_per_instruction(freq):
            return little.busy_power_w(kappa, freq) / little.eta_at(kappa, freq)

        lowest = energy_per_instruction(408.0)
        middle = energy_per_instruction(816.0)
        maximum = energy_per_instruction(1416.0)
        assert middle < maximum
        assert middle < lowest

    def test_invalid_frequency_rejected(self, big):
        with pytest.raises(ConfigurationError):
            big.eta_at(100, -5.0)

    def test_overclocking_clamped(self, big):
        assert big.eta_at(100, 9999.0) == big.eta_at(100, 1800.0)


class TestReplicationFactor:
    def test_single_replica_free(self):
        assert replication_factor(0.27, 1) == 1.0

    def test_two_replicas_is_anchor(self):
        # Table IV: t_re×2 costs ~27% more than t_all.
        assert replication_factor(0.27, 2) == pytest.approx(1.27)

    def test_sublinear_growth(self):
        six = replication_factor(0.27, 6)
        linear = 1 + 0.27 * 5
        assert 1.27 < six < linear

    def test_invalid_replicas(self):
        with pytest.raises(ConfigurationError):
            replication_factor(0.1, 0)
