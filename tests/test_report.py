"""Markdown report generation."""

import pytest

from repro.bench.report import generate_report


class TestGenerateReport:
    def test_single_experiment_report(self, tmp_path, small_harness):
        path = tmp_path / "report.md"
        text = generate_report(
            str(path), harness=small_harness, experiment_ids=["tab4"]
        )
        assert path.read_text() == text
        assert "# CStream reproduction report" in text
        assert "## tab4" in text
        assert "| Task |" in text  # markdown table header

    def test_configuration_recorded(self, tmp_path, small_harness):
        text = generate_report(
            str(tmp_path / "r.md"),
            harness=small_harness,
            experiment_ids=["tab2"],
        )
        assert "rk3399" in text
        assert f"| repetitions per cell | {small_harness.repetitions} |" in text

    def test_multiple_experiments_in_order(self, tmp_path, small_harness):
        text = generate_report(
            str(tmp_path / "r.md"),
            harness=small_harness,
            experiment_ids=["tab2", "tab4"],
        )
        assert text.index("## tab2") < text.index("## tab4")

    def test_unknown_experiment_rejected(self, tmp_path, small_harness):
        with pytest.raises(KeyError):
            generate_report(
                str(tmp_path / "r.md"),
                harness=small_harness,
                experiment_ids=["fig99"],
            )
