"""PSO tuning of the PID gains (the paper's §VII-A configuration step)."""

import pytest

from repro.core.pid_tuning import (
    DEFAULT_BOUNDS,
    pso_tune_pid,
    step_response_fitness,
)
from repro.errors import ConfigurationError


class TestFitness:
    def test_paper_gains_are_good(self):
        """The paper's PSO-tuned gains score far better than naive ones."""
        paper = step_response_fitness((0.1, 0.85, 0.05))
        sluggish = step_response_fitness((0.01, 0.05, 0.0))
        assert paper < sluggish / 5

    def test_aggressive_gains_penalized_for_overshoot(self):
        paper = step_response_fitness((0.1, 0.85, 0.05))
        aggressive = step_response_fitness((1.0, 1.5, 0.5))
        assert paper < aggressive

    def test_negative_gains_infeasible(self):
        assert step_response_fitness((-0.1, 0.8, 0.0)) == float("inf")

    def test_perfect_tracking_low_cost(self):
        # I=1 with P=D=0 reaches the step in one move: cost ~0.
        assert step_response_fitness((0.0, 1.0, 0.0)) == pytest.approx(
            0.0, abs=1e-9
        )


class TestPso:
    def test_converges_near_optimum(self):
        result = pso_tune_pid(seed=3)
        assert result.fitness < step_response_fitness((0.1, 0.85, 0.05)) + 1e-6

    def test_tuned_gains_track_a_step_quickly(self):
        from repro.core.adaptive import IncrementalPID

        result = pso_tune_pid(seed=1)
        controller = IncrementalPID(*result.gains)
        x = 0.0
        for _ in range(5):
            x += controller.step(1.0 - x)
        assert x == pytest.approx(1.0, abs=0.05)

    def test_integral_dominates_like_the_paper(self):
        """The tuned optimum lands in the paper's I-heavy corner."""
        result = pso_tune_pid(seed=2)
        p, i, d = result.gains
        assert i > p
        assert i > d

    def test_history_monotone_nonincreasing(self):
        result = pso_tune_pid(seed=0, iterations=15)
        history = result.history
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_deterministic_per_seed(self):
        assert pso_tune_pid(seed=9).gains == pso_tune_pid(seed=9).gains

    def test_positions_respect_bounds(self):
        result = pso_tune_pid(seed=4)
        for gain, (low, high) in zip(result.gains, DEFAULT_BOUNDS):
            assert low - 1e-12 <= gain <= high + 1e-12

    def test_evaluation_budget_accounted(self):
        result = pso_tune_pid(seed=0, swarm_size=10, iterations=5)
        assert result.evaluations == 10 + 10 * 5

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            pso_tune_pid(swarm_size=1)
        with pytest.raises(ConfigurationError):
            pso_tune_pid(bounds=((0, 1), (0, 1)))
        with pytest.raises(ConfigurationError):
            pso_tune_pid(bounds=((1, 0), (0, 1), (0, 1)))

    def test_converges_on_arrival_rate_step(self):
        """Mid-run the arrival rate doubles; the tuned PID retunes the
        service-rate setpoint to the new arrival rate within a handful
        of control periods and holds it without oscillating."""
        from repro.core.adaptive import IncrementalPID

        result = pso_tune_pid(seed=5)
        controller = IncrementalPID(*result.gains)
        service_rate = 0.0
        arrival_rate = 1.0
        history = []
        for tick in range(30):
            if tick == 15:
                arrival_rate = 2.0
            service_rate += controller.step(arrival_rate - service_rate)
            history.append(service_rate)
        # Settled on the initial rate before the step...
        assert history[14] == pytest.approx(1.0, abs=0.05)
        # ...and re-converged on the doubled rate after it.
        assert history[-1] == pytest.approx(2.0, abs=0.05)
        assert all(rate < 2.3 for rate in history)  # no wild overshoot

    def test_custom_fitness(self):
        # Tune against a different target: any callable works.
        result = pso_tune_pid(
            fitness=lambda gains: (gains[0] - 0.5) ** 2
            + (gains[1] - 0.5) ** 2
            + (gains[2] - 0.25) ** 2,
            seed=0,
        )
        assert result.gains[0] == pytest.approx(0.5, abs=0.05)
        assert result.gains[2] == pytest.approx(0.25, abs=0.05)
