"""Fleet serving tier: admission, shedding, breaker, failover.

The scenario runs are the expensive part (each arm mounts one
SessionController per placed tenant), so the three-arm comparison is
computed once per fleet size at module scope and every acceptance
check reads from it.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.verify import verify_fleet_health
from repro.errors import ConfigurationError
from repro.fleet.backoff import BackoffPolicy
from repro.fleet.breaker import (
    LEGAL_TRANSITIONS,
    BreakerConfig,
    CircuitBreaker,
    replay_transitions,
)
from repro.fleet.registry import BOARD_KINDS, build_fleet
from repro.fleet.scenario import (
    FLEET_ARMS,
    FleetScenarioSpec,
    run_fleet_arm,
    run_fleet_scenario,
)
from repro.fleet.tenants import build_tenant_catalog, build_tenant_workloads
from repro.obs.check import validate_fleet_health
from repro.obs.health import FleetHealth


@pytest.fixture(scope="module")
def comparison_small():
    return run_fleet_scenario(FleetScenarioSpec(boards=3, tenants=6))


@pytest.fixture(scope="module")
def comparison_large():
    return run_fleet_scenario(FleetScenarioSpec(boards=6, tenants=12))


class TestBackoffDeterminism:
    def test_identical_across_reruns(self):
        first = BackoffPolicy(seed=7)
        second = BackoffPolicy(seed=7)
        for tenant_id in range(4):
            assert first.schedule((tenant_id,), 6) == (
                second.schedule((tenant_id,), 6)
            )

    def test_independent_of_computation_order(self):
        policy = BackoffPolicy(seed=3)
        keys = [(tenant, attempt) for tenant in range(6)
                for attempt in range(5)]
        serial = {
            key: policy.delay_windows((key[0],), key[1]) for key in keys
        }
        # jobs=2: the same draws from two workers in scrambled order
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = {
                key: pool.submit(policy.delay_windows, (key[0],), key[1])
                for key in reversed(keys)
            }
            threaded = {key: f.result() for key, f in futures.items()}
        assert serial == threaded

    def test_delays_grow_and_respect_cap(self):
        policy = BackoffPolicy()
        schedule = policy.schedule((0,), 8)
        # pre-jitter growth is monotone until the cap; jitter is < 25%
        # so each delay stays within its attempt's envelope
        for attempt, delay in enumerate(schedule):
            raw = min(
                policy.base_windows * policy.factor ** attempt,
                policy.cap_windows,
            )
            assert raw <= delay < raw * (1.0 + policy.jitter)
            assert delay <= policy.max_delay_windows

    def test_distinct_keys_get_distinct_jitter(self):
        policy = BackoffPolicy()
        delays = {policy.delay_windows((t,), 0) for t in range(8)}
        assert len(delays) == 8  # no thundering herd

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_windows=0.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay_windows((0,), -1)


class TestCircuitBreaker:
    def test_full_cycle(self):
        breaker = CircuitBreaker(
            board_index=0,
            config=BreakerConfig(failure_threshold=2, cooldown_windows=2),
        )
        assert breaker.allows_traffic(0)
        breaker.record_failure(0)
        assert breaker.state == "closed"
        breaker.record_failure(1)
        assert breaker.state == "open"
        assert not breaker.allows_traffic(2)  # cooling down
        assert breaker.allows_traffic(3)  # probe window
        assert breaker.state == "half-open"
        breaker.record_failure(3)
        assert breaker.state == "open"
        assert breaker.allows_traffic(5)
        breaker.record_success(5)
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_transitions_replayable(self):
        breaker = CircuitBreaker(board_index=0)
        for window in range(2):
            breaker.record_failure(window)
        assert breaker.allows_traffic(3)  # cooldown elapsed: half-open
        breaker.record_success(3)
        final = replay_transitions(tuple(breaker.transitions))
        assert final == breaker.state == "closed"
        for transition in breaker.transitions:
            assert (
                transition.from_state, transition.to_state
            ) in LEGAL_TRANSITIONS

    def test_replay_rejects_broken_chain(self):
        breaker = CircuitBreaker(board_index=0)
        breaker.record_failure(0)
        breaker.record_failure(1)  # closed -> open
        with pytest.raises(ConfigurationError):
            replay_transitions(tuple(breaker.transitions), "half-open")

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(board_index=0)
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_failure(2)
        assert breaker.state == "closed"  # never reached the threshold


class TestFleetRegistry:
    def test_three_kinds_cycle(self):
        fleet = build_fleet(4)
        assert [b.kind for b in fleet] == [
            "rk3399", "jetson", "edge", "rk3399",
        ]
        assert [b.board_index for b in fleet] == [0, 1, 2, 3]
        assert len({b.name for b in fleet}) == 4

    def test_edge_board_is_asymmetric(self):
        board = BOARD_KINDS["edge"]()
        assert len(board.little_core_ids) == 2
        assert len(board.big_core_ids) == 4

    def test_catalog_slos_scale_with_priority(self):
        workloads = build_tenant_workloads(
            build_tenant_catalog(3), seed=0
        )
        for workload in workloads:
            assert (
                workload.l_set_us_per_byte
                > workload.reference_latency_us_per_byte
            )


class TestScenarioAcceptance:
    @pytest.mark.parametrize("fixture_name",
                             ["comparison_small", "comparison_large"])
    def test_failover_beats_static(self, fixture_name, request):
        comparison = request.getfixturevalue(fixture_name)
        static = comparison.summary("static")
        failover = comparison.summary("shed-failover")
        # the crash strands the static arm's victims for good
        assert static.steady_violations > 0
        # acceptance bar: all victims re-placed within 3 windows of the
        # crash, and <= 25% of static's steady-state violations remain
        assert failover.failovers >= 1
        assert failover.failover_lag_windows is not None
        assert failover.failover_lag_windows <= 3
        assert (
            failover.steady_violations <= 0.25 * static.steady_violations
        )

    def test_shedding_alone_already_helps(self, comparison_small):
        static = comparison_small.summary("static")
        shed = comparison_small.summary("shed")
        assert shed.steady_violations < static.steady_violations
        assert shed.sheds >= 1
        assert shed.failovers == 0

    def test_every_arm_admits_the_catalogue(self, comparison_small):
        for arm in FLEET_ARMS:
            assert comparison_small.summary(arm).tenants_admitted == 6

    def test_no_tenant_runs_on_the_dead_board(self, comparison_small):
        for arm in FLEET_ARMS:
            health = comparison_small.healths[arm]
            for window in health.windows:
                dead = {
                    b.board_index for b in window.boards if not b.alive
                }
                for tenant in window.tenants:
                    if tenant.state == "running":
                        assert tenant.board_index not in dead

    def test_breaker_trace_replays_from_the_report(self, comparison_small):
        health = comparison_small.healths["shed-failover"]
        per_board = {}
        for event in health.events:
            if event.kind != "breaker":
                continue
            edge = event.detail.split(" (")[0]
            from_state, to_state = edge.split("->")
            per_board.setdefault(event.board_index, []).append(
                (from_state, to_state)
            )
        assert per_board, "crash must trip at least one breaker"
        for board_index, edges in per_board.items():
            state = "closed"
            for from_state, to_state in edges:
                assert from_state == state, board_index
                assert (from_state, to_state) in LEGAL_TRANSITIONS
                state = to_state
            final = health.windows[-1].boards[board_index].breaker_state
            assert state == final


class TestDeterminism:
    def test_rerun_is_byte_identical(self, comparison_small):
        spec = FleetScenarioSpec(boards=3, tenants=6)
        rerun = run_fleet_arm(spec, "shed-failover")
        assert rerun.to_json() == (
            comparison_small.healths["shed-failover"].to_json()
        )

    def test_arms_share_catalogue_independent_of_run_order(self):
        # arms computed concurrently (jobs=2) must equal the serial
        # pass — nothing in the gateway depends on global state
        spec = FleetScenarioSpec(boards=3, tenants=6, windows=6)
        boards = build_fleet(spec.boards)
        workloads = build_tenant_workloads(
            build_tenant_catalog(spec.tenants, seed=spec.seed),
            seed=spec.seed,
        )
        serial = {
            arm: run_fleet_arm(spec, arm, workloads=workloads,
                               boards=boards).to_json()
            for arm in FLEET_ARMS
        }
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = {
                arm: pool.submit(run_fleet_arm, spec, arm,
                                 workloads=workloads, boards=boards)
                for arm in reversed(FLEET_ARMS)
            }
            threaded = {
                arm: f.result().to_json() for arm, f in futures.items()
            }
        assert serial == threaded

    def test_seed_changes_the_run(self, comparison_small):
        other = run_fleet_arm(
            FleetScenarioSpec(boards=3, tenants=6, seed=1), "shed-failover"
        )
        assert other.to_json() != (
            comparison_small.healths["shed-failover"].to_json()
        )


class TestHealthReport:
    def test_roundtrip_and_finite(self, comparison_small):
        for arm in FLEET_ARMS:
            health = comparison_small.healths[arm]
            assert health.finite()
            restored = FleetHealth.from_json(health.to_json())
            assert restored == health
            assert restored.schema_version == 2

    def test_flt_invariants_hold(self, comparison_small):
        for arm in FLEET_ARMS:
            payload = json.loads(comparison_small.healths[arm].to_json())
            assert verify_fleet_health(payload) == []
            assert validate_fleet_health(payload) == []

    def test_flt001_catches_a_planted_violation(self, comparison_small):
        payload = json.loads(
            comparison_small.healths["static"].to_json()
        )
        # plant: a tenant left running on a board marked dead
        window = payload["windows"][-1]
        dead = [b for b in window["boards"] if not b["alive"]]
        running = [
            t for t in window["tenants"] if t["state"] == "running"
        ]
        assert dead and running
        running[0]["board_index"] = dead[0]["board_index"]
        findings = verify_fleet_health(payload)
        assert any(f.code == "FLT001" for f in findings)

    def test_flt005_catches_an_oversized_retry(self, comparison_small):
        payload = json.loads(comparison_small.healths["shed"].to_json())
        requeues = [
            e for e in payload["events"]
            if e["kind"] == "shed" and "retry in" in e["detail"]
        ]
        assert requeues, "the shed arm must requeue with backoff"
        requeues[0]["detail"] = "board dead; requeued, retry in 99.0 windows"
        findings = verify_fleet_health(payload)
        assert any(f.code == "FLT005" for f in findings)
