"""The bench CLI (`python -m repro.bench`)."""


from repro.bench.__main__ import main


class TestBenchCli:
    def test_listing(self, capsys):
        assert main([]) == 0
        output = capsys.readouterr().out
        assert "fig7" in output and "tab5" in output and "abl_guard" in output

    def test_single_experiment(self, capsys):
        assert main(["tab4"]) == 0
        output = capsys.readouterr().out
        assert "task comparison" in output
        assert "t_re x2" in output

    def test_repetitions_forwarded_when_supported(self, capsys):
        assert main(["fig17", "--repetitions", "4"]) == 0
        assert "break-down" in capsys.readouterr().out

    def test_repetitions_ignored_when_unsupported(self, capsys):
        # tab4 takes no repetitions parameter; the flag must not crash it.
        assert main(["tab4", "--repetitions", "4"]) == 0

    def test_report_command(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_REPETITIONS", "2")
        # A fresh default harness would still be heavy; patch it small.
        from repro.bench import report as report_module
        from repro.bench.harness import Harness

        monkeypatch.setattr(
            report_module, "Harness",
            lambda: Harness(repetitions=2, batches_per_repetition=4,
                            profile_batches=3),
        )
        path = tmp_path / "out.md"
        assert main(["report", "--output", str(path)]) == 0
        assert path.exists()
        assert "CStream reproduction report" in path.read_text()
