"""Plan and power-trace rendering."""

import pytest

from repro.core.plan import SchedulingPlan
from repro.core.scheduler import Scheduler
from repro.runtime.visualize import render_plan, render_power_trace


@pytest.fixture
def estimate(tcomp32_rovio_context):
    context = tcomp32_rovio_context
    model = context.cost_model(context.fine_graph)
    return Scheduler(model).schedule(best_effort=True).estimate


class TestRenderPlan:
    def test_every_core_listed(self, estimate, board):
        text = render_plan(estimate, board)
        for core in board.cores:
            assert f"core {core.core_id}" in text

    def test_idle_cores_marked(self, estimate, board):
        text = render_plan(estimate, board)
        assert "idle" in text

    def test_bottleneck_marked_once(self, estimate, board):
        text = render_plan(estimate, board)
        assert text.count("<- bottleneck") == 1

    def test_summary_line(self, estimate, board):
        text = render_plan(estimate, board)
        assert "L_est=" in text and "E_est=" in text

    def test_task_names_visible(self, estimate, board):
        text = render_plan(estimate, board)
        assert "t0" in text and "t1" in text

    def test_colocated_tasks_share_a_bar(self, tcomp32_rovio_context, board):
        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        plan = SchedulingPlan(
            graph=context.fine_graph, assignments=((4,), (4,))
        )
        text = render_plan(model.evaluate(plan), board)
        core4_line = next(
            line for line in text.splitlines() if line.startswith("core 4")
        )
        assert "t0" in core4_line and "t1" in core4_line


class TestRenderPowerTrace:
    def test_empty_trace(self):
        assert render_power_trace([]) == "(no samples)"

    def test_sparkline_length_bounded(self):
        samples = [(float(t), 0.01) for t in range(1000)]
        text = render_power_trace(samples, width=40)
        sparkline = text.splitlines()[0]
        assert len(sparkline) <= 41

    def test_peak_reported(self):
        samples = [(0.0, 0.005), (100.0, 0.025), (200.0, 0.01)]
        text = render_power_trace(samples)
        assert "25.0 mW" in text

    def test_levels_track_power(self):
        low = [(float(t), 0.001) for t in range(50)]
        high = [(float(50 + t), 0.02) for t in range(50)]
        text = render_power_trace(low + high, width=10)
        sparkline = text.splitlines()[0]
        # The second half must render denser glyphs than the first.
        assert sparkline[:5].count("@") == 0
        assert "@" in sparkline[5:]

    def test_meter_trace_renders(self, board):
        from repro.simcore.power import EnergyMeter

        meter = EnergyMeter(board, sampling_interval_us=50.0)
        meter.record_busy(0, 100.0, 200.0, 0.01)
        text = render_power_trace(meter.power_trace(500.0))
        assert "peak" in text


class TestRenderGantt:
    @pytest.fixture
    def trace(self, tcomp32_rovio_context, board):
        from repro.runtime.executor import ExecutionConfig, PipelineExecutor
        from repro.core.scheduler import Scheduler

        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        plan = Scheduler(model).schedule(best_effort=True).plan
        executor = PipelineExecutor(
            board,
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                repetitions=1,
                batches_per_repetition=4,
            ),
        )
        executor.run(
            plan,
            context.profile.per_batch_step_costs,
            context.profile.batch_size_bytes,
        )
        return executor.last_trace

    def test_empty_trace(self, board):
        from repro.runtime.visualize import render_gantt

        assert render_gantt({}, board) == "(empty trace)"

    def test_every_core_row(self, trace, board):
        from repro.runtime.visualize import render_gantt

        text = render_gantt(trace, board)
        for core in board.cores:
            assert f"core {core.core_id}" in text

    def test_batches_visible(self, trace, board):
        from repro.runtime.visualize import render_gantt

        text = render_gantt(trace, board)
        for digit in "0123":
            assert digit in text

    def test_trace_spans_consistent(self, trace):
        for spans in trace.values():
            for _, _, start, end in spans:
                assert end >= start >= 0.0

    def test_busy_cores_match_plan(self, trace):
        busy = {core for core, spans in trace.items() if spans}
        assert busy == {0, 4}  # t0@big(4), t1@little(0)
