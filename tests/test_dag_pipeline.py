"""DAG pipelines end to end: shape model, decomposition, execution,
registry.

The chain pipeline is now the degenerate case of a DAG — these tests
cover everything the generalization added: explicit ``predecessors`` on
:class:`~repro.core.task.Task`, join-coverage validation on
:class:`~repro.core.task.TaskGraph`, DAG-aware decomposition of codec
step graphs, fork-join routing with a deterministic join barrier in the
executor, the critical-path estimate in the cost model, and the codec
registry that lets DAG workloads (``unlz4``, ``mltc``) join the grid
without editing ``repro/compression/__init__``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Harness, WorkloadSpec
from repro.compression import codec_names, get_codec, register_codec
from repro.compression.base import StatelessCompressor
from repro.core.baselines import WorkloadContext
from repro.core.decomposition import validate_step_dependencies
from repro.core.profiler import profile_workload
from repro.core.scheduler import Scheduler
from repro.core.task import Task, TaskGraph
from repro.datasets import get_dataset
from repro.errors import ConfigurationError

TEST_BATCH = 8192
RELAXED_CONSTRAINT = 60.0


@pytest.fixture(scope="module")
def unlz4_context(board):
    profile = profile_workload(
        get_codec("unlz4"), get_dataset("rovio"), TEST_BATCH, batches=3
    )
    return WorkloadContext.build(board, profile, RELAXED_CONSTRAINT)


def fork_join_graph():
    """d0 -> {d1, d2} -> d3, one step per task."""
    return TaskGraph(
        codec_name="toy-dag",
        tasks=(
            Task(name="t0", step_ids=("d0",), stage_index=0),
            Task(name="t1", step_ids=("d1",), stage_index=1,
                 predecessors=(0,)),
            Task(name="t2", step_ids=("d2",), stage_index=2,
                 predecessors=(0,)),
            Task(name="t3", step_ids=("d3",), stage_index=3,
                 predecessors=(1, 2)),
        ),
    )


class TestTaskShape:
    def test_chain_predecessors_are_implicit(self):
        task = Task(name="t1", step_ids=("s1",), stage_index=1)
        assert task.predecessors == (0,)
        assert task.is_chain_stage

    def test_root_task_has_no_predecessors(self):
        task = Task(name="t0", step_ids=("s0",), stage_index=0)
        assert task.predecessors == ()
        assert task.is_chain_stage

    def test_forward_predecessor_rejected(self):
        with pytest.raises(ConfigurationError, match="topological"):
            Task(name="t1", step_ids=("s1",), stage_index=1,
                 predecessors=(1,))

    def test_negative_predecessor_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(name="t1", step_ids=("s1",), stage_index=1,
                 predecessors=(-1,))

    def test_predecessors_normalized_sorted_unique(self):
        task = Task(name="t3", step_ids=("s3",), stage_index=3,
                    predecessors=(2, 1, 2))
        assert task.predecessors == (1, 2)
        assert not task.is_chain_stage


class TestTaskGraphShape:
    def test_fork_join_navigation(self):
        graph = fork_join_graph()
        assert not graph.is_chain
        assert graph.roots() == (0,)
        assert graph.sink_index == 3
        assert graph.predecessors_of(3) == (1, 2)
        assert graph.successors_of(0) == (1, 2)

    def test_join_coverage_enforced(self):
        # t1 produces output nobody consumes: rejected with the codec
        # named, so the error is actionable from a bench log.
        with pytest.raises(ConfigurationError) as caught:
            TaskGraph(
                codec_name="toy-dag",
                tasks=(
                    Task(name="t0", step_ids=("d0",), stage_index=0),
                    Task(name="t1", step_ids=("d1",), stage_index=1,
                         predecessors=(0,)),
                    Task(name="t2", step_ids=("d2",), stage_index=2,
                         predecessors=(0,)),
                ),
            )
        assert "toy-dag" in str(caught.value)
        assert "t1" in str(caught.value)

    def test_errors_name_the_codec(self):
        with pytest.raises(ConfigurationError, match="toy-dag"):
            TaskGraph(codec_name="toy-dag", tasks=())

    def test_describe_annotates_dag_joins(self):
        description = fork_join_graph().describe()
        assert description == (
            "t0[d0] ; t1[d1]<-[t0] ; t2[d2]<-[t0] ; t3[d3]<-[t1,t2]"
        )

    def test_chain_describe_unchanged(self):
        graph = TaskGraph(
            codec_name="toy",
            tasks=(
                Task(name="t0", step_ids=("s0", "s1"), stage_index=0),
                Task(name="t1", step_ids=("s2",), stage_index=1),
            ),
        )
        assert graph.describe() == "t0[s0+s1] -> t1[s2]"


class TestStepDependencyValidation:
    def test_unknown_producer_rejected(self):
        with pytest.raises(ConfigurationError, match="toy"):
            validate_step_dependencies(
                "toy", ("a", "b"), {"a": (), "b": ("zz",)}
            )

    def test_forward_producer_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_step_dependencies(
                "toy", ("a", "b"), {"a": ("b",), "b": ()}
            )

    def test_orphan_step_rejected(self):
        # "a" feeds nothing and is not the sink: its output disappears.
        with pytest.raises(ConfigurationError):
            validate_step_dependencies(
                "toy", ("a", "b", "c"), {"a": (), "b": (), "c": ("b",)}
            )

    def test_fork_join_accepted(self):
        validate_step_dependencies(
            "toy",
            ("d0", "d1", "d2", "d3"),
            {"d0": (), "d1": ("d0",), "d2": ("d0",), "d3": ("d1", "d2")},
        )


class TestDagDecomposition:
    def test_profile_carries_step_dependencies(self, unlz4_context):
        assert unlz4_context.profile.dependency_map() == {
            "d0": (), "d1": ("d0",), "d2": ("d0",), "d3": ("d1", "d2"),
        }

    def test_decomposition_is_a_valid_dag(self, unlz4_context):
        graph = unlz4_context.fine_graph
        assert not graph.is_chain
        assert set(graph.covered_steps()) == {"d0", "d1", "d2", "d3"}
        sink_task = graph.tasks[graph.sink_index]
        assert "d3" in sink_task.step_ids

    def test_joins_never_fuse_across_groups(self, unlz4_context):
        graph = unlz4_context.fine_graph
        dependencies = unlz4_context.profile.dependency_map()
        for task in graph.tasks:
            # Within a task, every non-first step's producers must all
            # be inside the task or the group fusion rule was violated.
            inside = set(task.step_ids)
            first = task.step_ids[0]
            for step_id in task.step_ids:
                if step_id == first:
                    continue
                producers = set(dependencies[step_id])
                assert producers <= inside, (task.name, step_id)


class TestDagScheduling:
    @pytest.fixture(scope="class")
    def dag_schedule(self, unlz4_context):
        model = unlz4_context.cost_model(unlz4_context.fine_graph)
        return Scheduler(model).schedule(best_effort=True), model

    def test_critical_path_at_least_bottleneck_stage(self, dag_schedule):
        result, model = dag_schedule
        estimate = result.estimate
        assert estimate.critical_path_us_per_byte > 0.0
        bottleneck = max(
            task.l_us_per_byte for task in estimate.task_estimates
        )
        assert estimate.critical_path_us_per_byte >= bottleneck * 0.999

    def test_scalar_oracle_matches_vectorized_on_dag(self, dag_schedule):
        result, model = dag_schedule
        vectorized = model.evaluate(result.plan)
        scalar = model._evaluate_scalar(result.plan)
        assert vectorized.latency_us_per_byte == scalar.latency_us_per_byte
        assert vectorized.energy_uj_per_byte == scalar.energy_uj_per_byte
        assert (
            vectorized.critical_path_us_per_byte
            == scalar.critical_path_us_per_byte
        )


class TestDagExecution:
    @pytest.mark.parametrize("codec", ["unlz4", "mltc"])
    def test_dag_codecs_run_end_to_end(self, board, codec):
        harness = Harness(
            board=board, repetitions=2, batches_per_repetition=4,
            profile_batches=3,
        )
        spec = WorkloadSpec.of(
            codec, "rovio", batch_size=TEST_BATCH,
            latency_constraint=RELAXED_CONSTRAINT,
        )
        result = harness.run(spec, "CStream")
        assert result.mean_latency_us_per_byte > 0.0
        assert result.mean_energy_uj_per_byte > 0.0

    def test_fork_join_run_is_deterministic(self, board):
        def run_once():
            harness = Harness(
                board=board, repetitions=2, batches_per_repetition=4,
                profile_batches=3,
            )
            spec = WorkloadSpec.of(
                "unlz4", "rovio", batch_size=TEST_BATCH,
                latency_constraint=RELAXED_CONSTRAINT,
            )
            return harness.run(spec, "CStream")

        assert run_once() == run_once()

    def test_traced_dag_run_passes_trace_invariants(self, board):
        from repro.analysis.verify import iter_recorder_events, verify_trace_events

        harness = Harness(
            board=board, repetitions=1, batches_per_repetition=4,
            profile_batches=3,
        )
        spec = WorkloadSpec.of(
            "unlz4", "rovio", batch_size=TEST_BATCH,
            latency_constraint=RELAXED_CONSTRAINT,
        )
        result, recorder = harness.run_traced(spec, "CStream")
        findings = verify_trace_events(iter_recorder_events(recorder))
        errors = [f for f in findings if f.severity == "error"]
        assert errors == []
        assert result.mean_latency_us_per_byte > 0.0


class TestCodecRegistry:
    def test_paper_codecs_listed_first(self):
        names = codec_names()
        assert names[:3] == ("tcomp32", "lz4", "tdic32")
        assert "unlz4" in names and "mltc" in names

    def test_lazy_codecs_resolve_on_demand(self):
        assert get_codec("unlz4").name == "unlz4"
        assert get_codec("mltc", channels=3).channels == 3

    def test_register_codec_decorator(self):
        from repro.compression import registry

        @register_codec
        class Toy(StatelessCompressor):
            name = "toy-registry-test"

            def compress(self, data):  # pragma: no cover - never called
                raise NotImplementedError

            def decompress(self, payload):  # pragma: no cover
                raise NotImplementedError

        try:
            assert get_codec("toy-registry-test").name == "toy-registry-test"
            assert "toy-registry-test" in codec_names()
        finally:
            del registry._REGISTRY["toy-registry-test"]

    def test_conflicting_registration_rejected(self):
        from repro.compression import registry

        @register_codec
        class Toy(StatelessCompressor):
            name = "toy-conflict-test"

            def compress(self, data):  # pragma: no cover
                raise NotImplementedError

            def decompress(self, payload):  # pragma: no cover
                raise NotImplementedError

        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                @register_codec
                class Other(StatelessCompressor):
                    name = "toy-conflict-test"

                    def compress(self, data):  # pragma: no cover
                        raise NotImplementedError

                    def decompress(self, payload):  # pragma: no cover
                        raise NotImplementedError
        finally:
            del registry._REGISTRY["toy-conflict-test"]

    def test_unnamed_codec_rejected(self):
        class Nameless(StatelessCompressor):
            def compress(self, data):  # pragma: no cover
                raise NotImplementedError

            def decompress(self, payload):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="name"):
            register_codec(Nameless)

    def test_unknown_codec_names_the_known_set(self):
        with pytest.raises(ConfigurationError, match="unlz4"):
            get_codec("definitely-not-a-codec")


class TestDagPlanDescription:
    def test_plan_describe_includes_join_annotations(self, unlz4_context):
        model = unlz4_context.cost_model(unlz4_context.fine_graph)
        plan = Scheduler(model).schedule(best_effort=True).estimate.plan
        description = plan.describe()
        assert "<-[" in description
        assert " ; " in description
