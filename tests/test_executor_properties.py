"""Property tests: invariants of the pipeline executor.

These use synthetic stage costs and hypothesis-drawn plans so the
invariants are checked far from the calibrated operating point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import StepCost
from repro.core.plan import SchedulingPlan
from repro.core.task import Task, TaskGraph
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.simcore.boards import rk3399

BATCH_BYTES = 8192

GRAPH = TaskGraph(
    codec_name="synthetic",
    tasks=(
        Task(name="t0", step_ids=("s0",), stage_index=0),
        Task(name="t1", step_ids=("s1",), stage_index=1),
    ),
)


def synthetic_costs(instructions_0=400_000, instructions_1=300_000):
    return {
        "s0": StepCost(
            instructions=instructions_0,
            memory_accesses=instructions_0 / 200.0,
            input_bytes=BATCH_BYTES,
            output_bytes=BATCH_BYTES,
        ),
        "s1": StepCost(
            instructions=instructions_1,
            memory_accesses=instructions_1 / 100.0,
            input_bytes=BATCH_BYTES,
            output_bytes=BATCH_BYTES // 2,
        ),
    }


def run_plan(plan, costs=None, batches=5, noise=0.0, **config_overrides):
    board = rk3399()
    options = {
        "latency_constraint_us_per_byte": 1e9,  # effectively unconstrained
        "repetitions": 1,
        "batches_per_repetition": batches,
        "warmup_batches": 2,
        "noise_sigma": noise,
        "overload_penalty": 0.0,
    }
    options.update(config_overrides)
    executor = PipelineExecutor(board, ExecutionConfig(**options))
    result = executor.run(
        plan, [costs or synthetic_costs()] * batches, BATCH_BYTES
    )
    return result, executor


core_ids = st.sampled_from([0, 1, 2, 3, 4, 5])
plans = st.tuples(
    st.lists(core_ids, min_size=1, max_size=3, unique=True),
    st.lists(core_ids, min_size=1, max_size=3, unique=True),
).map(
    lambda pair: SchedulingPlan(
        graph=GRAPH,
        assignments=(tuple(pair[0]), tuple(pair[1])),
    )
)


class TestInvariants:
    @given(plans)
    @settings(max_examples=25, deadline=None)
    def test_all_batches_complete_under_any_plan(self, plan):
        result, _ = run_plan(plan)
        assert len(result.repetitions[0].batches) == 5
        assert all(
            batch.latency_us_per_byte > 0
            for batch in result.repetitions[0].batches
        )

    @given(plans)
    @settings(max_examples=25, deadline=None)
    def test_period_at_least_bottleneck_compute(self, plan):
        """The pipeline can never beat its slowest stage."""
        board = rk3399()
        result, _ = run_plan(plan)
        floor = 0.0
        for stage_index, cores in enumerate(plan.assignments):
            cost = GRAPH.tasks[stage_index].merged_cost(synthetic_costs())
            for core_id in cores:
                core = board.core_by_id[core_id]
                compute = (
                    cost.instructions
                    / len(cores)
                    / core.eta_at(cost.operational_intensity)
                    / BATCH_BYTES
                )
                floor = max(floor, compute)
        assert result.mean_latency_us_per_byte >= floor * 0.99

    @given(plans)
    @settings(max_examples=20, deadline=None)
    def test_trace_spans_never_overlap_per_core(self, plan):
        """A core is a serial resource: its busy spans cannot overlap."""
        _, executor = run_plan(plan)
        for spans in executor.last_trace.values():
            ordered = sorted(spans, key=lambda span: span[2])
            for earlier, later in zip(ordered, ordered[1:]):
                assert later[2] >= earlier[3] - 1e-9

    @given(plans)
    @settings(max_examples=20, deadline=None)
    def test_energy_positive_and_finite(self, plan):
        result, _ = run_plan(plan)
        energy = result.mean_energy_uj_per_byte
        assert np.isfinite(energy)
        assert energy > 0


class TestScalingBehaviour:
    def test_more_replicas_never_slower(self):
        latencies = []
        for replicas in (1, 2, 3):
            plan = SchedulingPlan(
                graph=GRAPH,
                assignments=((4,), tuple(range(replicas))),
            )
            result, _ = run_plan(plan)
            latencies.append(result.mean_latency_us_per_byte)
        assert latencies[1] <= latencies[0]

    def test_noise_inflates_variance_not_mean_much(self):
        plan = SchedulingPlan(graph=GRAPH, assignments=((4,), (0,)))
        quiet, _ = run_plan(plan, noise=0.0)
        noisy, _ = run_plan(plan, noise=0.02, repetitions=10)
        assert noisy.mean_latency_us_per_byte == pytest.approx(
            quiet.mean_latency_us_per_byte, rel=0.05
        )
        spread = {
            r.latency_us_per_byte for r in noisy.repetitions
        }
        assert len(spread) > 1

    def test_faster_cores_shorter_window(self):
        big_plan = SchedulingPlan(graph=GRAPH, assignments=((4,), (5,)))
        little_plan = SchedulingPlan(graph=GRAPH, assignments=((0,), (1,)))
        big_result, _ = run_plan(big_plan)
        little_result, _ = run_plan(little_plan)
        assert (
            big_result.mean_latency_us_per_byte
            < little_result.mean_latency_us_per_byte
        )

    def test_batch_energy_accumulates_all_stage_work(self):
        """Busy energy per batch matches instructions/ζ within the
        replication/noise-free model."""
        board = rk3399()
        plan = SchedulingPlan(graph=GRAPH, assignments=((4,), (0,)))
        result, _ = run_plan(plan)
        expected = 0.0
        for stage_index, cores in enumerate(plan.assignments):
            cost = GRAPH.tasks[stage_index].merged_cost(synthetic_costs())
            core = board.core_by_id[cores[0]]
            expected += cost.instructions / core.zeta.value(
                cost.operational_intensity
            )
        # Per-byte energy must be at least the instructions/ζ busy floor
        # and within 20 % of it (static power and message overheads).
        floor = expected / BATCH_BYTES
        assert floor <= result.mean_energy_uj_per_byte <= floor * 1.2
