"""Chaos sessions: failover recovery, retries, determinism, caching.

End-to-end coverage of the fault subsystem: a permanent core failure
mid-session must be survived by the adaptive controller (replan onto
surviving cores, strictly fewer steady-state violations than the static
plan limping on emergency reroutes), corruption retries must be traced
and TRC006/TRC007-clean, and the whole thing must stay byte-identical
under a fixed seed — including through the parallel grid runner and the
persistent cache (whose keys must separate faulted from fault-free
cells).
"""

import re

import pytest

from repro.analysis.verify import iter_recorder_events, verify_trace_events
from repro.bench.cache import ResultCache
from repro.bench.harness import Harness, WorkloadSpec
from repro.core.plan import SchedulingPlan
from repro.faults.chaos import ChaosSpec, run_chaos_session
from repro.faults.model import CoreFailure, DvfsThrottle, FaultPlan
from repro.obs.trace import TraceRecorder
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.simcore.boards import rk3399

TEST_BATCH = 8192


def chaos_harness():
    return Harness(
        board=rk3399(),
        repetitions=1,
        batches_per_repetition=18,
        profile_batches=3,
        cache=None,
    )


def chaos_spec(**kwargs):
    kwargs.setdefault("batch_bytes", TEST_BATCH)
    return ChaosSpec(**kwargs)


def _cores_in(description):
    return {
        int(piece)
        for group in re.findall(r"@\[([^\]]+)\]", description)
        for piece in group.split(",")
    }


@pytest.fixture(scope="module")
def failure_run():
    recorder = TraceRecorder()
    comparison = run_chaos_session(
        chaos_harness(), chaos_spec(scenario="core-failure"), trace=recorder
    )
    return comparison, recorder


@pytest.fixture(scope="module")
def corruption_run():
    recorder = TraceRecorder()
    comparison = run_chaos_session(
        chaos_harness(),
        chaos_spec(scenario="corruption", corruption_probability=0.4),
        trace=recorder,
    )
    return comparison, recorder


class TestCoreFailureRecovery:
    def test_adaptive_strictly_beats_static(self, failure_run):
        comparison, _ = failure_run
        assert (
            comparison.adaptive_steady_violations
            < comparison.static_steady_violations
        )
        assert comparison.adaptive_steady_violations == 0

    def test_static_never_recovers_adaptive_does(self, failure_run):
        comparison, _ = failure_run
        assert comparison.static_recovery_us is None
        assert comparison.adaptive_recovery_us is not None
        assert comparison.adaptive_recovery_us > 0

    def test_failover_event_names_dead_core(self, failure_run):
        comparison, _ = failure_run
        (failover,) = comparison.failover_events
        assert failover.failed_cores == (comparison.victim_core,)
        assert any(
            event.reason == "failover"
            for event in comparison.controller_events
        )

    def test_final_plan_avoids_dead_core(self, failure_run):
        comparison, _ = failure_run
        final = comparison.adaptive.final_plan_description
        assert comparison.victim_core not in _cores_in(final)
        # the static arm keeps (emergency-rerouting) the original plan
        static_final = comparison.static.final_plan_description
        assert comparison.victim_core in _cores_in(static_final)

    def test_fault_event_reported_in_both_faulted_arms(self, failure_run):
        comparison, _ = failure_run
        for arm in (comparison.static, comparison.adaptive):
            assert any(
                event.kind == "core-failure"
                and event.core_id == comparison.victim_core
                for event in arm.fault_events
            )
        assert comparison.baseline.fault_events == ()

    def test_adaptive_energy_overhead_smaller(self, failure_run):
        comparison, _ = failure_run
        assert (
            comparison.adaptive_energy_overhead
            < comparison.static_energy_overhead
        )

    def test_trace_passes_invariants_including_trc006(self, failure_run):
        _, recorder = failure_run
        assert recorder.core_failures == 1
        findings = verify_trace_events(iter_recorder_events(recorder))
        assert [f for f in findings if f.severity == "error"] == []


class TestCorruptionRetries:
    def test_retries_fired_and_traced(self, corruption_run):
        comparison, recorder = corruption_run
        corrupt = [
            event
            for event in comparison.adaptive.fault_events
            if event.kind == "batch-corruption"
        ]
        assert corrupt
        assert recorder.corrupted_batches == len(corrupt)
        assert recorder.batch_retries >= len(corrupt)

    def test_trace_passes_invariants_including_trc007(self, corruption_run):
        _, recorder = corruption_run
        findings = verify_trace_events(iter_recorder_events(recorder))
        assert [f for f in findings if f.severity == "error"] == []

    def test_corruption_inflates_latency_not_correctness(
        self, corruption_run
    ):
        comparison, _ = corruption_run
        corrupt_batches = {
            event.batch for event in comparison.static.fault_events
        }
        clean = {
            b.batch_index: b.latency_us_per_byte
            for b in comparison.baseline.batches
        }
        faulted = {
            b.batch_index: b.latency_us_per_byte
            for b in comparison.static.batches
        }
        assert any(
            faulted[batch] > clean[batch] for batch in corrupt_batches
        )


class TestDeterminism:
    def test_same_seed_same_plan_byte_identical(self):
        runs = []
        for _ in range(2):
            recorder = TraceRecorder()
            comparison = run_chaos_session(
                chaos_harness(),
                chaos_spec(scenario="core-failure+corruption"),
                trace=recorder,
            )
            runs.append((comparison, recorder))
        first, second = runs
        for arm in ("baseline", "static", "adaptive"):
            a, b = getattr(first[0], arm), getattr(second[0], arm)
            assert a.batches == b.batches
            assert a.completion_ts_us == b.completion_ts_us
            assert a.fault_events == b.fault_events
            assert a.plan_descriptions == b.plan_descriptions
        assert list(iter_recorder_events(first[1])) == list(
            iter_recorder_events(second[1])
        )

    def test_fault_free_path_identical_to_empty_plan(
        self, board, tcomp32_rovio_profile, tcomp32_rovio_context
    ):
        plan = SchedulingPlan(
            graph=tcomp32_rovio_context.fine_graph, assignments=((4,), (0,))
        )

        def run(fault_plan):
            executor = PipelineExecutor(
                board,
                ExecutionConfig(
                    latency_constraint_us_per_byte=26.0,
                    repetitions=2,
                    batches_per_repetition=6,
                    warmup_batches=1,
                    fault_plan=fault_plan,
                ),
            )
            per_batch = (
                list(tcomp32_rovio_profile.per_batch_step_costs) * 6
            )[:6]
            return executor.run(
                plan, per_batch, tcomp32_rovio_profile.batch_size_bytes
            )

        assert run(None) == run(FaultPlan())


class TestGridAndCache:
    def test_serial_matches_jobs2_under_faults(self):
        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=4096)
        plan = FaultPlan(events=(CoreFailure(core_id=4, at_batch=2),))

        def grid(jobs):
            harness = Harness(
                board=rk3399(),
                repetitions=2,
                batches_per_repetition=4,
                profile_batches=3,
                cache=None,
            )
            return harness.grid(
                [spec], ["CStream", "RR"], jobs=jobs, fault_plan=plan
            )

        assert grid(1) == grid(2)

    def test_run_key_separates_fault_plans(self):
        harness = chaos_harness()
        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=TEST_BATCH)
        failure = FaultPlan(events=(CoreFailure(core_id=4, at_batch=2),))
        throttle = FaultPlan(events=(
            DvfsThrottle(core_id=4, at_batch=2, frequency_mhz=600.0),
        ))
        keys = {
            harness.run_key(spec, "CStream", None, overrides)
            for overrides in (
                {},
                {"fault_plan": failure},
                {"fault_plan": throttle},
            )
        }
        assert len(keys) == 3
        # same plan content -> same key (the fingerprint, not identity)
        assert harness.run_key(
            spec, "CStream", None,
            {"fault_plan": FaultPlan(events=failure.events)},
        ) == harness.run_key(spec, "CStream", None, {"fault_plan": failure})

    def test_faulted_cell_never_hits_fault_free_entry(self, tmp_path):
        harness = Harness(
            board=rk3399(),
            repetitions=1,
            batches_per_repetition=4,
            profile_batches=3,
            cache=ResultCache(tmp_path),
        )
        spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=4096)
        clean_key = harness.run_key(spec, "CStream", None, {})
        harness.cache.put(clean_key, "fault-free-result")
        faulted_key = harness.run_key(
            spec, "CStream", None,
            {"fault_plan": FaultPlan(
                events=(CoreFailure(core_id=4, at_batch=2),)
            )},
        )
        assert harness.cache.get(faulted_key) is None
        assert harness.cache.get(clean_key) == "fault-free-result"


@pytest.fixture(scope="module")
def interconnect_run():
    return run_chaos_session(
        chaos_harness(), chaos_spec(scenario="interconnect")
    )


@pytest.fixture(scope="module")
def heavy_corruption_run():
    return run_chaos_session(
        chaos_harness(),
        chaos_spec(scenario="corruption", corruption_probability=0.6),
    )


class TestResidualDiagnosis:
    """Signal-free faults: no heartbeat, only the residual ledger."""

    def test_interconnect_health_names_degraded_link(self, interconnect_run):
        health = interconnect_run.health
        assert health is not None
        dominant = health.dominant()
        assert dominant is not None
        assert dominant.kind == "path"
        assert dominant.key == "c1"
        assert dominant.score >= 3.0

    def test_interconnect_diagnosis_replan_beats_static(
        self, interconnect_run
    ):
        assert any(
            event.reason == "diagnosis"
            for event in interconnect_run.controller_events
        )
        assert interconnect_run.failover_events == ()
        assert (
            interconnect_run.adaptive_steady_violations
            < interconnect_run.static_steady_violations
        )

    def test_corruption_health_names_retry_stage(self, heavy_corruption_run):
        health = heavy_corruption_run.health
        assert health is not None
        dominant = health.dominant()
        assert dominant is not None
        assert dominant.kind == "retry"
        assert dominant.score >= 3.0

    def test_corruption_diagnosis_replan_beats_static(
        self, heavy_corruption_run
    ):
        assert any(
            event.reason == "diagnosis"
            for event in heavy_corruption_run.controller_events
        )
        assert (
            heavy_corruption_run.adaptive_steady_violations
            < heavy_corruption_run.static_steady_violations
        )

    def test_health_report_is_schema_and_invariant_clean(
        self, interconnect_run
    ):
        import json

        from repro.analysis.verify import verify_health
        from repro.obs.check import validate_health

        payload = json.loads(interconnect_run.health.to_json())
        assert validate_health(payload) == []
        assert verify_health(payload) == []

    def test_heartbeat_scenarios_stay_heartbeat_driven(self, failure_run):
        # Telemetry defaults on for chaos sessions, but the core-failure
        # win must still come from the failover path, not diagnosis.
        comparison, _ = failure_run
        assert comparison.health is not None
        reasons = {e.reason for e in comparison.controller_events}
        assert "failover" in reasons
