"""Golden byte-identity suite for the simulator fast path.

The performance work (vectorized cost model, indexed event calendar,
batched trace dispatch, chunked grid fan-out) is only admissible if it
changes *nothing* observable: every ``RunResult`` float, every trace
event, every plan the scheduler picks. This suite pins that contract to
pickles captured **before** the fast path landed
(``tests/golden/golden_identity.pkl``): a representative grid slice
(all three codecs x CStream/OS), one traced cell with its full event
stream, one faulted cell, and the CStream plan choice per codec.

Regenerate (only when an *intentional* numbers change ships — which
invalidates every cached figure, so think twice)::

    PYTHONPATH=src python tests/test_golden_identity.py --regen

``RunResult`` equality is exact: the dataclass compares repetition
tuples with ``==`` on raw float fields, so any low-bit drift — a
re-associated sum, a pairwise numpy reduction, a reordered event —
fails the suite.
"""

import pathlib
import pickle
import sys

import pytest

from repro.bench.harness import Harness, WorkloadSpec
from repro.core.baselines import get_mechanism
from repro.faults.model import CoreFailure, FaultPlan

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_identity.pkl"


def _deterministic_pairs(pairs):
    """Search-stats pairs minus wall-clock (real time is not a golden)."""
    return tuple(
        (name, value) for name, value in pairs if name != "wall_clock_s"
    )

GOLDEN_BATCH = 16384
CODECS = ("tcomp32", "lz4", "tdic32")
MECHANISMS = ("CStream", "OS")

#: a big core (rk3399: 4 little + 2 big) dying mid-run — exercises
#: failover rerouting, the reroute penalty, and the faulted cache key
GOLDEN_FAULT = FaultPlan(events=(CoreFailure(core_id=4, at_batch=2),), seed=7)


def golden_harness() -> Harness:
    """Small fixed configuration; must never change (it keys the goldens)."""
    return Harness(
        repetitions=3,
        batches_per_repetition=5,
        profile_batches=4,
        seed=0,
        cache=None,
        jobs=1,
    )


def spec_for(codec: str) -> WorkloadSpec:
    return WorkloadSpec.of(codec, "rovio", batch_size=GOLDEN_BATCH)


def compute_goldens() -> dict:
    """Run the golden slice with whatever code is importable right now."""
    harness = golden_harness()
    runs = {
        (codec, mechanism): harness.run(spec_for(codec), mechanism)
        for codec in CODECS
        for mechanism in MECHANISMS
    }

    traced_harness = golden_harness()
    traced_result, recorder = traced_harness.run_traced(
        spec_for("tcomp32"), "CStream"
    )
    traced = {
        "result": traced_result,
        "events": tuple(recorder.events),
        "event_count": len(recorder.events),
        "summary": traced_result.trace_summary,
    }

    faulted = golden_harness().run(
        spec_for("tdic32"), "CStream", fault_plan=GOLDEN_FAULT
    )

    plans = {}
    plan_harness = golden_harness()
    for codec in CODECS:
        context = plan_harness.context(spec_for(codec))
        outcome = get_mechanism("CStream").prepare(context)
        plans[codec] = {
            "assignments": outcome.plan.assignments,
            "latency_us_per_byte": outcome.estimate.latency_us_per_byte,
            "energy_uj_per_byte": outcome.estimate.energy_uj_per_byte,
            "feasible": outcome.estimate.feasible,
            "search": outcome.search_stats.as_pairs(),
        }

    return {"runs": runs, "traced": traced, "faulted": faulted, "plans": plans}


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            "golden pickle missing; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_identity.py --regen`"
        )
    return pickle.loads(GOLDEN_PATH.read_bytes())


@pytest.fixture(scope="module")
def fresh() -> dict:
    return compute_goldens()


class TestGoldenIdentity:
    def test_run_results_bit_identical(self, golden, fresh):
        assert set(fresh["runs"]) == set(golden["runs"])
        for cell, expected in golden["runs"].items():
            actual = fresh["runs"][cell]
            assert actual == expected, f"cell {cell} drifted"
            # Belt and braces: dataclass eq already compares raw floats,
            # but make the per-repetition comparison failure-readable.
            for index, (a, b) in enumerate(
                zip(actual.repetitions, expected.repetitions)
            ):
                assert a == b, f"cell {cell} repetition {index} drifted"

    def test_traced_numbers_match_untraced_golden(self, golden, fresh):
        assert fresh["traced"]["result"] == golden["runs"][
            ("tcomp32", "CStream")
        ]

    def test_traced_event_stream_identical(self, golden, fresh):
        expected = golden["traced"]["events"]
        actual = fresh["traced"]["events"]
        assert len(actual) == golden["traced"]["event_count"]
        first_mismatch = next(
            (i for i, (a, b) in enumerate(zip(actual, expected)) if a != b),
            None,
        )
        assert first_mismatch is None, (
            f"trace diverges at event {first_mismatch}: "
            f"{actual[first_mismatch]} != {expected[first_mismatch]}"
        )
        assert actual == expected

    def test_traced_summary_counters_identical(self, golden, fresh):
        import dataclasses

        expected = golden["traced"]["summary"]
        actual = fresh["traced"]["summary"]
        for field in dataclasses.fields(type(expected)):
            a, b = getattr(actual, field.name), getattr(expected, field.name)
            if field.name == "scheduler":
                a, b = _deterministic_pairs(a), _deterministic_pairs(b)
            assert a == b, f"summary field {field.name} drifted"

    def test_faulted_cell_identical(self, golden, fresh):
        assert fresh["faulted"] == golden["faulted"]

    def test_chain_plans_stay_chain_shaped(self):
        """The DAG generalization is invisible to the paper's codecs:
        every golden codec still decomposes to a chain whose tasks carry
        the implicit chain predecessors and whose description uses the
        pre-refactor arrow format (no DAG annotations)."""
        harness = golden_harness()
        for codec in CODECS:
            context = harness.context(spec_for(codec))
            graph = context.fine_graph
            assert graph.is_chain, codec
            for task in graph.tasks:
                assert task.is_chain_stage, (codec, task.name)
            description = graph.describe()
            assert ";" not in description, codec
            assert "<-" not in description, codec

    def test_plan_choices_identical(self, golden, fresh):
        for codec in CODECS:
            expected = golden["plans"][codec]
            actual = fresh["plans"][codec]
            assert actual["assignments"] == expected["assignments"], codec
            assert (
                actual["latency_us_per_byte"]
                == expected["latency_us_per_byte"]
            ), codec
            assert (
                actual["energy_uj_per_byte"] == expected["energy_uj_per_byte"]
            ), codec
            assert actual["feasible"] == expected["feasible"], codec
            assert _deterministic_pairs(actual["search"]) == (
                _deterministic_pairs(expected["search"])
            ), codec


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = compute_goldens()
    GOLDEN_PATH.write_bytes(pickle.dumps(payload, protocol=4))
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    if "--regen" in sys.argv[1:]:
        _regenerate()
    else:
        print(__doc__)
        sys.exit(2)
