"""Dry-run profiling of workloads, rooflines and communication."""

import pytest

from repro.compression import get_codec
from repro.core.profiler import (
    measure_communication,
    profile_roofline,
    profile_workload,
)
from repro.datasets import get_dataset
from repro.errors import ProfilingError
from repro.simcore.boards import rk3399
from repro.simcore.interconnect import Path


class TestProfileWorkload:
    def test_basic_profile(self):
        profile = profile_workload(
            get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=3
        )
        assert profile.codec_name == "tcomp32"
        assert profile.dataset_name == "rovio"
        assert profile.batch_count == 3
        assert profile.step_ids == ("s0", "s1", "s2")
        assert not profile.stateful

    def test_batch_size_rounded_to_tuples(self):
        profile = profile_workload(
            get_codec("tcomp32"), get_dataset("rovio"), 8190, batches=2
        )
        assert profile.batch_size_bytes == 8190 - 8190 % 16

    def test_mean_costs_average_batches(self):
        profile = profile_workload(
            get_codec("tdic32"), get_dataset("rovio"), 8192, batches=4
        )
        for step_id in profile.step_ids:
            instructions = [
                costs[step_id].instructions
                for costs in profile.per_batch_step_costs
            ]
            mean = sum(instructions) / len(instructions)
            assert profile.mean_step_costs[step_id].instructions == (
                pytest.approx(mean)
            )

    def test_warmup_excluded(self):
        """The first (cold-dictionary) batch must not skew the mean."""
        with_warmup = profile_workload(
            get_codec("lz4"), get_dataset("rovio"), 8192, batches=3,
            warmup_batches=1,
        )
        without = profile_workload(
            get_codec("lz4"), get_dataset("rovio"), 8192, batches=3,
            warmup_batches=0,
        )
        # The cold batch has fewer matches -> lower s3 cost.
        assert (
            without.mean_step_costs["s3"].instructions
            < with_warmup.mean_step_costs["s3"].instructions
        )

    def test_compression_ratio_positive(self):
        profile = profile_workload(
            get_codec("lz4"), get_dataset("sensor"), 8192, batches=2
        )
        assert profile.compression_ratio > 1.0

    def test_step_kappa_accessor(self):
        profile = profile_workload(
            get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=2
        )
        assert profile.step_kappa("s1") > profile.step_kappa("s0")

    def test_zero_batches_rejected(self):
        with pytest.raises(ProfilingError):
            profile_workload(
                get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=0
            )

    def test_negative_warmup_rejected(self):
        with pytest.raises(ProfilingError):
            profile_workload(
                get_codec("tcomp32"), get_dataset("rovio"), 8192,
                batches=2, warmup_batches=-1,
            )


class TestProfileRoofline:
    def test_sample_count_matches_grid(self):
        core = rk3399().core_by_id[0]
        samples = profile_roofline(core, kappas=(10.0, 50.0, 100.0))
        assert samples.kappas == (10.0, 50.0, 100.0)
        assert len(samples.eta_values) == 3
        assert len(samples.zeta_values) == 3

    def test_noise_bounded(self):
        core = rk3399().core_by_id[4]
        samples = profile_roofline(core, noise=0.01, seed=1)
        for kappa, eta in zip(samples.kappas, samples.eta_values):
            assert eta == pytest.approx(core.eta.value(kappa), rel=0.08)

    def test_zero_noise_exact(self):
        core = rk3399().core_by_id[0]
        samples = profile_roofline(core, kappas=(25.0,), noise=0.0)
        assert samples.eta_values[0] == core.eta.value(25.0)

    def test_deterministic_per_seed(self):
        core = rk3399().core_by_id[0]
        assert profile_roofline(core, seed=5) == profile_roofline(core, seed=5)

    def test_different_cores_different_noise(self):
        board = rk3399()
        little = profile_roofline(board.core_by_id[0], kappas=(400.0,))
        other = profile_roofline(board.core_by_id[1], kappas=(400.0,))
        assert little.eta_values != other.eta_values

    def test_empty_grid_rejected(self):
        with pytest.raises(ProfilingError):
            profile_roofline(rk3399().core_by_id[0], kappas=())


class TestMeasureCommunication:
    def test_all_paths_measured(self):
        table = measure_communication(rk3399())
        for path in (Path.C0, Path.C1, Path.C2):
            assert table.unit_cost(path) > 0
            assert table.overhead(path) > 0

    def test_local_free(self):
        table = measure_communication(rk3399())
        assert table.unit_cost(Path.LOCAL) == 0.0
        assert table.overhead(Path.LOCAL) == 0.0

    def test_measured_close_to_truth(self):
        board = rk3399()
        table = measure_communication(board, noise=0.02, seed=0)
        for path in (Path.C0, Path.C1, Path.C2):
            assert table.unit_cost(path) == pytest.approx(
                board.interconnect.unit_cost(path), rel=0.1
            )

    def test_preserves_asymmetry(self):
        table = measure_communication(rk3399())
        assert table.unit_cost(Path.C2) > table.unit_cost(Path.C1)
