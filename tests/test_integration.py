"""Cross-module invariants: the paper's headline claims end to end."""

import pytest

from repro import CStream
from repro.compression import CODEC_NAMES, get_codec
from repro.datasets import DATASET_NAMES, get_dataset


class TestHeadlineClaims:
    """The abstract's claims, exercised through the public API."""

    def test_cstream_beats_every_baseline_on_default_workload(
        self, small_harness, tcomp32_rovio_spec
    ):
        cstream = small_harness.run(tcomp32_rovio_spec, "CStream")
        for mechanism in ("OS", "CS", "RR", "BO", "LO"):
            baseline = small_harness.run(tcomp32_rovio_spec, mechanism)
            assert (
                cstream.mean_energy_uj_per_byte
                <= baseline.mean_energy_uj_per_byte * 1.02
            ), mechanism

    def test_cstream_never_violates_constraint(
        self, small_harness, tcomp32_rovio_spec
    ):
        assert small_harness.run(tcomp32_rovio_spec, "CStream").clcv == 0.0

    def test_every_workload_round_trips_through_cstream(self):
        """The compressed output of every Algorithm-Dataset procedure
        decodes back to the input."""
        for codec_name in CODEC_NAMES:
            for dataset_name in DATASET_NAMES:
                codec = get_codec(codec_name)
                data = get_dataset(dataset_name).generate(4096, seed=11)
                payload = codec.compress(data).payload
                decoder = get_codec(codec_name)
                assert decoder.decompress(payload) == data, (
                    codec_name,
                    dataset_name,
                )


class TestModelFidelity:
    def test_estimates_track_measurements(
        self, small_harness, tcomp32_rovio_spec
    ):
        """Table V's claim: the model approximates measurement well."""
        from repro.core.scheduler import Scheduler

        context = small_harness.context(tcomp32_rovio_spec)
        model = context.cost_model(context.fine_graph)
        schedule = Scheduler(model).schedule(best_effort=True)
        measured = small_harness.run(tcomp32_rovio_spec, "CStream")
        assert measured.mean_latency_us_per_byte == pytest.approx(
            schedule.estimate.latency_us_per_byte, rel=0.15
        )
        assert measured.mean_energy_uj_per_byte == pytest.approx(
            schedule.estimate.energy_uj_per_byte, rel=0.25
        )


class TestConstraintSemantics:
    def test_tighter_constraint_never_cheaper(self):
        """Tightening L_set can only cost energy (Fig 10's monotonicity)
        through the public facade."""
        energies = []
        for constraint in (14.0, 26.0):
            framework = CStream(
                codec="tcomp32",
                dataset="rovio",
                batch_size=8192,
                latency_constraint_us_per_byte=constraint,
                profile_batches=3,
            )
            result = framework.run(repetitions=4, batches_per_repetition=4)
            assert result.clcv == 0.0
            energies.append(result.mean_energy_uj_per_byte)
        assert energies[0] >= energies[1]

    def test_measured_latency_respects_constraint(self):
        framework = CStream(
            codec="tdic32",
            dataset="stock",
            batch_size=8192,
            latency_constraint_us_per_byte=26.0,
            profile_batches=3,
        )
        result = framework.run(repetitions=4, batches_per_repetition=4)
        assert result.mean_latency_us_per_byte <= 26.0


class TestDeterminism:
    def test_full_pipeline_reproducible(self, tcomp32_rovio_spec):
        from repro.bench.harness import Harness

        results = []
        for _ in range(2):
            harness = Harness(
                repetitions=3, batches_per_repetition=4, profile_batches=3
            )
            results.append(
                harness.run(tcomp32_rovio_spec, "CStream")
                .mean_energy_uj_per_byte
            )
        assert results[0] == results[1]

    def test_seed_changes_measurements(self, tcomp32_rovio_spec):
        from repro.bench.harness import Harness

        a = Harness(repetitions=3, batches_per_repetition=4, seed=0,
                    profile_batches=3)
        b = Harness(repetitions=3, batches_per_repetition=4, seed=99,
                    profile_batches=3)
        assert a.run(tcomp32_rovio_spec, "CStream").mean_latency_us_per_byte != (
            b.run(tcomp32_rovio_spec, "CStream").mean_latency_us_per_byte
        )


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import ReproError
        from repro import errors

        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_catching_base_class_works(self):
        from repro import ReproError
        from repro.compression import get_codec

        with pytest.raises(ReproError):
            get_codec("nonexistent")
