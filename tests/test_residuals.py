"""Residual ledger unit tests: collector slicing, breakdown, scoring.

End-to-end detection (chaos scenarios ending in a named culprit) lives
in ``test_chaos.py``; here the ledger math is pinned down on small
hand-checkable fakes — the HLT001 sum property, EWMA warmup, the
zero-baseline rule for components that appear mid-session, and
bit-exact determinism across ledger instances.
"""

import math
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs.residuals import (
    LedgerConfig,
    ResidualLedger,
    TelemetryCollector,
    WindowTelemetry,
    predicted_breakdown,
)
from repro.obs.residuals import _stage_of


# -- fakes -------------------------------------------------------------------


class _Path:
    def __init__(self, value):
        self.value = value


class _Table:
    _UNIT = {"local": 0.0, "c1": 0.01}
    _OVERHEAD = {"local": 0.0, "c1": 5.0}

    def unit_cost(self, path):
        return self._UNIT[path.value]

    def overhead(self, path):
        return self._OVERHEAD[path.value]


class _Board:
    def path_between(self, producer, consumer):
        return _Path("local" if producer == consumer else "c1")


class _Model:
    profile = SimpleNamespace(batch_size_bytes=1000)
    board = _Board()
    communication = _Table()

    @staticmethod
    def stage_output_bytes(stage_index):
        return 500.0


def _estimate(latency=3.0):
    return SimpleNamespace(
        task_estimates=[
            SimpleNamespace(
                core_id=0, l_comp_us_per_byte=2.0, energy_uj_per_byte=0.5
            ),
            SimpleNamespace(
                core_id=1, l_comp_us_per_byte=1.0, energy_uj_per_byte=0.25
            ),
        ],
        latency_us_per_byte=latency,
    )


_PLAN = SimpleNamespace(assignments=((0,), (0, 1)))


def _telemetry(window_index, batch_start, retry_us=(), comm_extra=0.0):
    return WindowTelemetry(
        window_index=window_index,
        batch_start=batch_start,
        batch_count=2,
        batch_bytes=1000,
        busy_us=(((0, 0), 4200.0), ((1, 1), 2100.0)),
        energy_uj=((0, 1100.0), (1, 560.0)),
        comm_us=(("c1", 15.0 + comm_extra), ("local", 0.0)),
        retry_us=tuple(retry_us),
        retries=tuple((batch_start, 2) for _ in retry_us),
    )


# -- collector ---------------------------------------------------------------


class _FakeServer:
    def __init__(self):
        self.spans = []
        self.energy_by_batch = {}


def test_collector_slices_spans_incrementally():
    collector = TelemetryCollector()
    server = _FakeServer()
    server.spans = [("s0r0", 0, 0.0, 10.0), ("s0r0", 1, 10.0, 25.0)]
    server.energy_by_batch = {0: 3.0, 1: 4.0}
    first = collector.collect_window(0, 0, 2, 100, {0: server})
    assert dict(first.busy_us) == {(0, 0): 25.0}
    assert dict(first.energy_uj) == {0: 7.0}

    # New spans/energy only; the previous window's spans are not
    # recounted and out-of-window energy is excluded.
    server.spans.append(("s1r0", 2, 25.0, 31.0))
    server.energy_by_batch[2] = 5.0
    second = collector.collect_window(1, 2, 1, 100, {0: server})
    assert dict(second.busy_us) == {(1, 0): 6.0}
    assert dict(second.energy_uj) == {0: 5.0}
    assert [w.window_index for w in collector.windows] == [0, 1]


def test_collector_drains_hook_accumulators():
    collector = TelemetryCollector()
    collector.comm("c1", 7.5, batch_index=0)
    collector.comm("c1", 2.5, batch_index=1)
    collector.retry(1, 2, 40.0, attempts=3)
    window = collector.collect_window(0, 0, 2, 100, {})
    assert dict(window.comm_us) == {"c1": 10.0}
    assert dict(window.retry_us) == {2: 40.0}
    assert window.retries == ((1, 3),)
    # Drained: the next window starts from zero.
    empty = collector.collect_window(1, 2, 2, 100, {})
    assert empty.comm_us == ()
    assert empty.retry_us == ()


def test_stage_label_parsing():
    assert _stage_of("s2r1") == 2
    assert _stage_of("s10r0") == 10
    assert _stage_of("junk") == -1


# -- predicted breakdown -----------------------------------------------------


def test_predicted_breakdown_matches_hand_computation():
    comp, comm, energy = predicted_breakdown(_PLAN, _estimate(), _Model())
    assert comp == {0: 2.0, 1: 1.0}
    assert energy == {0: 0.5, 1: 0.25}
    # Stage 1: 500 output bytes / 2 consumers / 1 producer = 250-byte
    # share; the cross-cluster hop pays 250 * 0.01 + 5.0 = 7.5 µs,
    # normalized by the 1000-byte batch.
    assert comm["c1"] == pytest.approx(7.5 / 1000.0)
    assert comm["local"] == pytest.approx(0.0)


# -- ledger ------------------------------------------------------------------


def test_ledger_components_sum_to_window_residual():
    ledger = ResidualLedger()
    window = ledger.observe(_telemetry(0, 0), 3.4, _PLAN, _estimate(), _Model())
    attributed = math.fsum(
        c.residual_us_per_byte for c in window.components
    )
    assert window.latency_residual_us_per_byte == pytest.approx(0.4)
    assert attributed + window.unattributed_us_per_byte == pytest.approx(
        window.latency_residual_us_per_byte, abs=1e-12
    )


def test_ledger_warmup_window_never_scores():
    ledger = ResidualLedger(LedgerConfig(warmup_windows=1))
    window = ledger.observe(
        _telemetry(0, 0, retry_us=((1, 9000.0),)),
        8.0, _PLAN, _estimate(), _Model(),
    )
    assert all(c.score == 0.0 for c in window.components)


def test_ledger_scores_first_seen_component_against_zero_baseline():
    ledger = ResidualLedger()
    ledger.observe(_telemetry(0, 0), 3.4, _PLAN, _estimate(), _Model())
    # Retry time appears for the first time after warmup: it has no
    # baseline to hide behind, so its whole residual is anomalous.
    window = ledger.observe(
        _telemetry(1, 2, retry_us=((1, 9000.0),)),
        8.0, _PLAN, _estimate(), _Model(),
    )
    retry = [c for c in window.components if c.kind == "retry"]
    assert len(retry) == 1
    assert retry[0].key == "1"
    # 9000 µs / 2000 bytes = 4.5 µs/byte over a 0.06 µs/byte floor.
    assert retry[0].score > 3.0
    assert retry[0].score == pytest.approx(4.5 / 0.06, rel=1e-3)
    assert window.top_component().kind == "retry"


def test_ledger_is_deterministic_across_instances():
    def run():
        ledger = ResidualLedger(LedgerConfig(seed=7))
        out = []
        for index in range(4):
            retry = ((1, 500.0 * index),) if index >= 2 else ()
            window = ledger.observe(
                _telemetry(index, 2 * index, retry_us=retry),
                3.4 + 0.1 * index, _PLAN, _estimate(), _Model(),
            )
            out.append(tuple((c.kind, c.key, c.score)
                             for c in window.components))
        return out

    assert run() == run()


def test_ledger_config_validation():
    with pytest.raises(ConfigurationError):
        LedgerConfig(smoothing=1.5)
    with pytest.raises(ConfigurationError):
        LedgerConfig(scale_floor_fraction=0.0)
    with pytest.raises(ConfigurationError):
        LedgerConfig(warmup_windows=-1)
    ledger = ResidualLedger()
    with pytest.raises(ConfigurationError):
        ledger.observe(
            WindowTelemetry(0, 0, 0, 1000, (), (), (), (), ()),
            1.0, _PLAN, _estimate(), _Model(),
        )
