"""Interconnect cost model and the Table II probe."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.boards import rk3399
from repro.simcore.interconnect import (
    InterconnectSpec,
    Path,
    PathCost,
    stream_probe,
)


@pytest.fixture(scope="module")
def spec():
    return rk3399().interconnect


class TestPathCost:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            PathCost(
                unit_cost_us_per_byte=-1.0,
                message_overhead_us=0.0,
                raw_bandwidth_gbps=1.0,
                raw_latency_ns=1.0,
            )

    def test_missing_path_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(costs={Path.C0: spec.costs[Path.C0]})


class TestCostOrdering:
    def test_latency_ordering_c0_c1_c2(self, spec):
        assert (
            spec.unit_cost(Path.C0)
            < spec.unit_cost(Path.C1)
            < spec.unit_cost(Path.C2)
        )

    def test_overhead_ordering(self, spec):
        assert (
            spec.message_overhead(Path.C0)
            < spec.message_overhead(Path.C1)
            < spec.message_overhead(Path.C2)
        )

    def test_raw_bandwidth_ordering_matches_paper(self, spec):
        assert spec.costs[Path.C0].raw_bandwidth_gbps == pytest.approx(2.7)
        assert spec.costs[Path.C1].raw_bandwidth_gbps == pytest.approx(0.7)
        assert spec.costs[Path.C2].raw_bandwidth_gbps == pytest.approx(0.4)

    def test_raw_latency_matches_paper(self, spec):
        assert spec.costs[Path.C0].raw_latency_ns == pytest.approx(70.4)
        assert spec.costs[Path.C1].raw_latency_ns == pytest.approx(142.4)
        assert spec.costs[Path.C2].raw_latency_ns == pytest.approx(420.8)

    def test_local_path_free(self, spec):
        assert spec.unit_cost(Path.LOCAL) == 0.0
        assert spec.message_overhead(Path.LOCAL) == 0.0
        assert spec.message_energy(Path.LOCAL) == 0.0
        assert spec.transfer_latency_us(Path.LOCAL, 1 << 20) == 0.0


class TestTransferLatency:
    def test_eq7_linear_form(self, spec):
        """Eq 7: latency = bytes x unit cost + ω."""
        cost = spec.costs[Path.C1]
        transferred = 1000.0
        expected = (
            transferred * cost.unit_cost_us_per_byte + cost.message_overhead_us
        )
        assert spec.transfer_latency_us(Path.C1, transferred) == pytest.approx(
            expected
        )

    def test_zero_bytes_costs_overhead_only(self, spec):
        assert spec.transfer_latency_us(Path.C2, 0.0) == pytest.approx(
            spec.costs[Path.C2].message_overhead_us
        )


class TestSymmetrized:
    def test_c2_priced_like_c1(self, spec):
        symmetric = spec.symmetrized()
        assert symmetric.unit_cost(Path.C2) == spec.unit_cost(Path.C1)
        assert symmetric.message_overhead(Path.C2) == spec.message_overhead(
            Path.C1
        )

    def test_original_untouched(self, spec):
        spec.symmetrized()
        assert spec.unit_cost(Path.C2) > spec.unit_cost(Path.C1)


class TestStreamProbe:
    def test_probe_near_raw_numbers(self, spec):
        probe = stream_probe(spec, Path.C0)
        assert probe["bandwidth_gbps"] == pytest.approx(2.7, rel=0.05)
        assert probe["latency_ns"] == pytest.approx(70.4, rel=0.05)

    def test_probe_deterministic_per_seed(self, spec):
        assert stream_probe(spec, Path.C1, seed=9) == stream_probe(
            spec, Path.C1, seed=9
        )

    def test_probe_rejects_local(self, spec):
        with pytest.raises(ConfigurationError):
            stream_probe(spec, Path.LOCAL)

    def test_probe_rejects_empty(self, spec):
        with pytest.raises(ConfigurationError):
            stream_probe(spec, Path.C0, probe_bytes=0)

    def test_probe_total_time_scales_with_size(self, spec):
        small = stream_probe(spec, Path.C2, probe_bytes=1 << 10)
        large = stream_probe(spec, Path.C2, probe_bytes=1 << 20)
        assert large["total_ns"] == pytest.approx(
            small["total_ns"] * 1024, rel=1e-9
        )
