"""Stress and property tests for the discrete-event engine."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore.engine import Simulator, Store


class TestEventOrderingProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_timeouts_fire_in_time_order(self, delays):
        simulator = Simulator()
        fired = []
        for delay in delays:
            event = simulator.timeout(delay, delay)
            event.callbacks.append(lambda e: fired.append(e.value))
        simulator.run()
        assert fired == sorted(fired)
        assert simulator.now == max(delays)

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_chained_processes_accumulate_time(self, steps):
        simulator = Simulator()

        def worker():
            for _ in range(steps):
                yield simulator.timeout(1.0)
            return simulator.now

        process = simulator.process(worker())
        simulator.run()
        assert process.value == pytest.approx(float(steps))


class TestManyProcesses:
    def test_thousand_interleaved_tickers(self):
        simulator = Simulator()
        counters = [0] * 1000

        def ticker(index):
            for _ in range(5):
                yield simulator.timeout(1.0 + index * 1e-6)
                counters[index] += 1

        for index in range(1000):
            simulator.process(ticker(index))
        simulator.run()
        assert all(count == 5 for count in counters)

    def test_producer_consumer_chain(self):
        """A 10-stage store relay delivers every item in order."""
        simulator = Simulator()
        stages = [Store(simulator, capacity=2) for _ in range(10)]
        received = []

        def relay(upstream, downstream):
            while True:
                item = yield upstream.get()
                if item is None:
                    yield downstream.put(None)
                    return
                yield simulator.timeout(0.1)
                yield downstream.put(item)

        def sink(upstream):
            while True:
                item = yield upstream.get()
                if item is None:
                    return
                received.append(item)

        def source(downstream):
            for item in range(50):
                yield downstream.put(item)
            yield downstream.put(None)

        for index in range(9):
            simulator.process(relay(stages[index], stages[index + 1]))
        simulator.process(sink(stages[9]))
        simulator.process(source(stages[0]))
        simulator.run()
        assert received == list(range(50))

    def test_store_round_robin_consumers(self):
        """Two consumers on one store drain it without loss or dupes."""
        simulator = Simulator()
        store = Store(simulator)
        seen = []

        def consumer(name):
            for _ in range(25):
                item = yield store.get()
                seen.append(item)

        for item in range(50):
            store.put(item)
        simulator.process(consumer("a"))
        simulator.process(consumer("b"))
        simulator.run()
        assert sorted(seen) == list(range(50))

    def test_heap_never_corrupts_under_mixed_load(self):
        simulator = Simulator()
        log = []

        def jittery(period, count, name):
            for index in range(count):
                yield simulator.timeout(period)
                log.append((simulator.now, name, index))

        simulator.process(jittery(0.7, 30, "x"))
        simulator.process(jittery(1.3, 20, "y"))
        simulator.process(jittery(3.1, 10, "z"))
        simulator.run()
        times = [entry[0] for entry in log]
        assert times == sorted(times)
        assert len(log) == 60


class TestRunUntil:
    def test_partial_run_resumable(self):
        simulator = Simulator()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            simulator.timeout(delay).callbacks.append(
                lambda e, d=delay: fired.append(d)
            )
        simulator.run(until=1.5)
        assert fired == [1.0]
        simulator.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_until_exact_boundary_fires_event(self):
        simulator = Simulator()
        fired = []
        simulator.timeout(2.0).callbacks.append(lambda e: fired.append(1))
        simulator.run(until=2.0)
        assert fired == [1]
