"""Board specification: the simulated rk3399 matches the paper's setup."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.boards import BoardSpec, rk3399
from repro.simcore.hardware import ClusterSpec, CoreType
from repro.simcore.interconnect import Path


@pytest.fixture(scope="module")
def board():
    return rk3399()


class TestRk3399Topology:
    def test_six_cores(self, board):
        assert len(board.cores) == 6

    def test_four_little_two_big(self, board):
        assert board.little_core_ids == (0, 1, 2, 3)
        assert board.big_core_ids == (4, 5)

    def test_two_clusters(self, board):
        assert len(board.clusters) == 2
        assert board.cluster_by_id[0].core_type is CoreType.LITTLE
        assert board.cluster_by_id[1].core_type is CoreType.BIG

    def test_core_models(self, board):
        assert board.core_by_id[0].model == "Cortex-A53"
        assert board.core_by_id[4].model == "Cortex-A72"

    def test_paper_frequencies(self, board):
        assert board.core_by_id[0].max_frequency_mhz == 1416.0
        assert board.core_by_id[4].max_frequency_mhz == 1800.0

    def test_core_cluster_mapping(self, board):
        for core_id in range(4):
            assert board.core_cluster[core_id] == 0
        for core_id in (4, 5):
            assert board.core_cluster[core_id] == 1


class TestPathClassification:
    def test_same_core_local(self, board):
        assert board.path_between(0, 0) is Path.LOCAL

    def test_intra_little_cluster(self, board):
        assert board.path_between(0, 3) is Path.C0

    def test_intra_big_cluster(self, board):
        assert board.path_between(4, 5) is Path.C0

    def test_big_to_little_is_c1(self, board):
        assert board.path_between(4, 0) is Path.C1

    def test_little_to_big_is_c2(self, board):
        assert board.path_between(0, 4) is Path.C2

    def test_direction_asymmetry(self, board):
        """The paper's asymmetric communication effect."""
        down = board.interconnect.unit_cost(board.path_between(5, 1))
        up = board.interconnect.unit_cost(board.path_between(1, 5))
        assert up > down


class TestValidation:
    def test_duplicate_core_ids_rejected(self, board):
        core = board.cores[0]
        with pytest.raises(ConfigurationError):
            BoardSpec(
                name="bad",
                cores=(core, core),
                clusters=(
                    ClusterSpec(cluster_id=0, core_type=CoreType.LITTLE,
                                core_ids=(core.core_id,)),
                ),
                interconnect=board.interconnect,
                uncore_power_w=0.0,
                context_switch_instructions=1.0,
                replication_latency_overhead=0.0,
                replication_energy_overhead=0.0,
            )

    def test_unclustered_core_rejected(self, board):
        with pytest.raises(ConfigurationError):
            BoardSpec(
                name="bad",
                cores=board.cores,
                clusters=(board.clusters[0],),  # big cores orphaned
                interconnect=board.interconnect,
                uncore_power_w=0.0,
                context_switch_instructions=1.0,
                replication_latency_overhead=0.0,
                replication_energy_overhead=0.0,
            )

    def test_empty_board_rejected(self, board):
        with pytest.raises(ConfigurationError):
            BoardSpec(
                name="empty",
                cores=(),
                clusters=(),
                interconnect=board.interconnect,
                uncore_power_w=0.0,
                context_switch_instructions=1.0,
                replication_latency_overhead=0.0,
                replication_energy_overhead=0.0,
            )

    def test_with_interconnect_swaps_only_interconnect(self, board):
        symmetric = board.with_interconnect(board.interconnect.symmetrized())
        assert symmetric.cores == board.cores
        assert symmetric.interconnect.unit_cost(
            Path.C2
        ) == board.interconnect.unit_cost(Path.C1)


class TestCalibrationAnchors:
    """The board reproduces the paper's Table IV operating points for
    tcomp32-Rovio's decomposed tasks (within calibration tolerance)."""

    def test_t0_latency_anchor(self, board):
        # t0: κ≈318, ~270 instructions/byte.
        big, little = board.core_by_id[4], board.core_by_id[0]
        instructions_per_byte = 270.0
        l_big = instructions_per_byte / big.eta.value(318)
        l_little = instructions_per_byte / little.eta.value(318)
        assert l_big == pytest.approx(15.0, rel=0.15)
        assert l_little == pytest.approx(32.6, rel=0.15)

    def test_t1_latency_anchor(self, board):
        big, little = board.core_by_id[4], board.core_by_id[0]
        instructions_per_byte = 118.0
        assert instructions_per_byte / big.eta.value(102) == pytest.approx(
            13.5, rel=0.15
        )
        assert instructions_per_byte / little.eta.value(102) == pytest.approx(
            21.7, rel=0.15
        )

    def test_t1_energy_strongly_favours_little(self, board):
        # Table IV: t1 is ~3x cheaper on a little core.
        big, little = board.core_by_id[4], board.core_by_id[0]
        ratio = big.zeta.value(102) / little.zeta.value(102)
        assert ratio < 0.5

    def test_t0_energy_nearly_equal(self, board):
        # Table IV: at κ≈320 the energy gap is small (0.29 vs 0.27).
        big, little = board.core_by_id[4], board.core_by_id[0]
        ratio = little.zeta.value(318) / big.zeta.value(318)
        assert 1.0 < ratio < 1.6
