"""Dataset generators reproduce their traces' statistical profiles."""

import numpy as np
import pytest

from repro.compression.stats import analyze_batch
from repro.datasets import (
    DATASET_NAMES,
    MicroDataset,
    RovioDataset,
    SensorDataset,
    StockDataset,
    get_dataset,
)
from repro.errors import ConfigurationError, DatasetError

SAMPLE_BYTES = 32768


@pytest.fixture(params=DATASET_NAMES)
def dataset(request):
    return get_dataset(request.param)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in DATASET_NAMES:
            assert get_dataset(name).name == name

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_dataset("taxi")

    def test_options_forwarded(self):
        dataset = get_dataset("micro", dynamic_range=1234)
        assert dataset.dynamic_range == 1234


class TestCommonContract:
    def test_generates_requested_bytes(self, dataset):
        data = dataset.generate(SAMPLE_BYTES, seed=0)
        expected = SAMPLE_BYTES - SAMPLE_BYTES % dataset.tuple_bytes
        assert len(data) == expected

    def test_deterministic_per_seed(self, dataset):
        assert dataset.generate(4096, seed=5) == dataset.generate(4096, seed=5)

    def test_seeds_differ(self, dataset):
        assert dataset.generate(4096, seed=1) != dataset.generate(4096, seed=2)

    def test_zero_bytes(self, dataset):
        assert dataset.generate(0) == b""

    def test_negative_bytes_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.generate(-1)

    def test_stream_batches(self, dataset):
        batches = list(dataset.stream(4096, 3, seed=0))
        assert len(batches) == 3
        sizes = {len(batch) for batch in batches}
        assert len(sizes) == 1  # uniform batch size

    def test_stream_rejects_sub_tuple_batches(self, dataset):
        with pytest.raises(DatasetError):
            list(dataset.stream(1, 1))

    def test_batches_are_contiguous_stream(self, dataset):
        whole = dataset.generate(8192 - 8192 % dataset.tuple_bytes, seed=3)
        usable = 4096 - 4096 % dataset.tuple_bytes
        parts = list(dataset.stream(4096, 2, seed=3))
        assert b"".join(parts) == whole[: 2 * usable]


class TestSensor:
    def test_ascii_only(self):
        data = SensorDataset().generate(SAMPLE_BYTES, seed=0)
        assert all(byte < 128 for byte in data)

    def test_record_structure(self):
        data = SensorDataset().generate(160, seed=0)
        for offset in range(0, len(data), 16):
            record = data[offset:offset + 16]
            assert record.startswith(b"<s")
            assert record.endswith(b"/>")

    def test_low_symbol_entropy(self):
        stats = analyze_batch(SensorDataset().generate(SAMPLE_BYTES, seed=0))
        assert stats.symbol_entropy_bits < 10

    def test_vocabulary_duplication_from_markup(self):
        stats = analyze_batch(SensorDataset().generate(SAMPLE_BYTES, seed=0))
        assert stats.vocabulary_duplication > 0.3

    def test_fewer_stations_more_duplication(self):
        few = analyze_batch(
            SensorDataset(station_count=2).generate(SAMPLE_BYTES, seed=0)
        )
        many = analyze_batch(
            SensorDataset(station_count=500).generate(SAMPLE_BYTES, seed=0)
        )
        assert few.vocabulary_duplication > many.vocabulary_duplication

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            SensorDataset(station_count=0)
        with pytest.raises(DatasetError):
            SensorDataset(station_count=10_000)
        with pytest.raises(DatasetError):
            SensorDataset(value_walk_step=0)


class TestRovio:
    def test_high_key_duplication(self):
        data = RovioDataset().generate(SAMPLE_BYTES, seed=0)
        keys = np.frombuffer(data, dtype=np.uint64)[0::2]
        assert np.unique(keys).size <= 256

    def test_payloads_high_entropy(self):
        data = RovioDataset().generate(SAMPLE_BYTES, seed=0)
        payloads = np.frombuffer(data, dtype=np.uint64)[1::2]
        assert np.unique(payloads).size > 0.99 * payloads.size

    def test_zipf_concentrates_traffic(self):
        data = RovioDataset(zipf_exponent=2.0).generate(SAMPLE_BYTES, seed=0)
        keys = np.frombuffer(data, dtype=np.uint64)[0::2]
        _, counts = np.unique(keys, return_counts=True)
        # The hottest key dominates under strong skew.
        assert counts.max() > 0.3 * keys.size

    def test_vocabulary_duplication_near_half(self):
        stats = analyze_batch(RovioDataset().generate(SAMPLE_BYTES, seed=0))
        assert 0.3 < stats.vocabulary_duplication < 0.6

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            RovioDataset(key_population=0)
        with pytest.raises(DatasetError):
            RovioDataset(zipf_exponent=0)


class TestStock:
    def test_keys_mostly_unique(self):
        data = StockDataset().generate(SAMPLE_BYTES, seed=0)
        keys = np.frombuffer(data, dtype=np.uint32)[0::2]
        assert np.unique(keys).size > 0.95 * keys.size

    def test_keys_monotone(self):
        data = StockDataset().generate(SAMPLE_BYTES, seed=0)
        keys = np.frombuffer(data, dtype=np.uint32)[0::2]
        assert np.all(np.diff(keys.astype(np.int64)) > 0)

    def test_prices_near_base(self):
        dataset = StockDataset(base_price=1_000_000, price_step=10)
        data = dataset.generate(SAMPLE_BYTES, seed=0)
        prices = np.frombuffer(data, dtype=np.uint32)[1::2]
        assert abs(int(prices.mean()) - 1_000_000) < 50_000

    def test_lower_duplication_than_rovio(self):
        stock = analyze_batch(StockDataset().generate(SAMPLE_BYTES, seed=0))
        rovio = analyze_batch(RovioDataset().generate(SAMPLE_BYTES, seed=0))
        assert stock.vocabulary_duplication < rovio.vocabulary_duplication

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            StockDataset(instrument_count=0)
        with pytest.raises(DatasetError):
            StockDataset(base_price=0)


class TestMicro:
    def test_dynamic_range_respected(self):
        data = MicroDataset(dynamic_range=1000).generate(SAMPLE_BYTES, seed=0)
        values = np.frombuffer(data, dtype=np.uint32)
        assert values.max() < 1000

    def test_dynamic_range_controls_significant_bits(self):
        narrow = analyze_batch(
            MicroDataset(dynamic_range=1 << 8).generate(SAMPLE_BYTES, seed=0)
        )
        wide = analyze_batch(
            MicroDataset(dynamic_range=1 << 24).generate(SAMPLE_BYTES, seed=0)
        )
        assert narrow.dynamic_range_bits < 9
        assert 20 < wide.dynamic_range_bits < 25

    @pytest.mark.parametrize("target", [0.0, 0.3, 0.6, 0.9])
    def test_symbol_duplication_tracks_target(self, target):
        dataset = MicroDataset(
            dynamic_range=1 << 28, symbol_duplication=target
        )
        stats = analyze_batch(dataset.generate(SAMPLE_BYTES, seed=0))
        assert stats.symbol_duplication == pytest.approx(target, abs=0.08)

    @pytest.mark.parametrize("target", [0.0, 0.3, 0.6])
    def test_vocabulary_duplication_tracks_target(self, target):
        dataset = MicroDataset(
            dynamic_range=1 << 28, vocabulary_duplication=target
        )
        stats = analyze_batch(dataset.generate(SAMPLE_BYTES, seed=0))
        assert stats.vocabulary_duplication == pytest.approx(target, abs=0.12)

    def test_duplication_bursts_grow_with_level(self):
        """Higher vocabulary duplication produces longer lz4 matches."""
        from repro.compression import get_codec

        def mean_match(dup):
            data = MicroDataset(
                dynamic_range=1 << 28, vocabulary_duplication=dup
            ).generate(SAMPLE_BYTES, seed=0)
            counters = get_codec("lz4").compress(data).counters
            if counters["matches"] == 0:
                return 0.0
            return counters["matched_bytes"] / counters["matches"]

        assert mean_match(0.9) > mean_match(0.3)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            MicroDataset(dynamic_range=1)
        with pytest.raises(DatasetError):
            MicroDataset(dynamic_range=1 << 33)
        with pytest.raises(DatasetError):
            MicroDataset(symbol_duplication=1.5)
        with pytest.raises(DatasetError):
            MicroDataset(vocabulary_duplication=-0.1)
