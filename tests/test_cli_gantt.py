"""CLI Gantt flag and remaining command paths."""

from repro.cli import main


class TestSimulateGantt:
    def test_gantt_printed(self, capsys):
        assert main(
            ["simulate", "tcomp32", "rovio", "--repetitions", "2", "--gantt"]
        ) == 0
        output = capsys.readouterr().out
        assert "core 0" in output and "core 5" in output
        assert "ms" in output  # timeline footer

    def test_gantt_shows_plan_cores_busy(self, capsys):
        main(["simulate", "tcomp32", "rovio", "--repetitions", "2", "--gantt"])
        output = capsys.readouterr().out
        gantt_lines = [
            line for line in output.splitlines() if line.startswith("core")
        ]
        busy = [line for line in gantt_lines if any(d in line for d in "0123")]
        assert len(busy) >= 2  # at least the two pipeline stages
