"""Task graphs and scheduling plans (Definitions 1-2)."""

import pytest

from repro.compression.base import StepCost
from repro.core.plan import SchedulingPlan, TaskEstimate
from repro.core.task import Task, TaskGraph
from repro.errors import ConfigurationError


def make_graph():
    return TaskGraph(
        codec_name="tcomp32",
        tasks=(
            Task(name="t0", step_ids=("s0", "s1"), stage_index=0),
            Task(name="t1", step_ids=("s2",), stage_index=1),
        ),
    )


STEP_COSTS = {
    "s0": StepCost(instructions=10, memory_accesses=2, input_bytes=100,
                   output_bytes=100),
    "s1": StepCost(instructions=90, memory_accesses=1, input_bytes=100,
                   output_bytes=120),
    "s2": StepCost(instructions=50, memory_accesses=5, input_bytes=120,
                   output_bytes=60),
}


class TestTask:
    def test_merged_cost(self):
        task = Task(name="t0", step_ids=("s0", "s1"), stage_index=0)
        merged = task.merged_cost(STEP_COSTS)
        assert merged.instructions == 100
        assert merged.input_bytes == 100
        assert merged.output_bytes == 120

    def test_missing_step_rejected(self):
        task = Task(name="t9", step_ids=("s9",), stage_index=0)
        with pytest.raises(ConfigurationError):
            task.merged_cost(STEP_COSTS)

    def test_empty_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(name="t0", step_ids=(), stage_index=0)

    def test_negative_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(name="t0", step_ids=("s0",), stage_index=-1)


class TestTaskGraph:
    def test_stage_count(self):
        assert make_graph().stage_count == 2

    def test_covered_steps_in_order(self):
        assert make_graph().covered_steps() == ("s0", "s1", "s2")

    def test_upstream_of_first_stage_is_none(self):
        graph = make_graph()
        assert graph.upstream_of(0) is None
        assert graph.upstream_of(1).name == "t0"

    def test_misnumbered_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(
                codec_name="x",
                tasks=(Task(name="t0", step_ids=("s0",), stage_index=1),),
            )

    def test_duplicate_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(
                codec_name="x",
                tasks=(
                    Task(name="t0", step_ids=("s0",), stage_index=0),
                    Task(name="t1", step_ids=("s0",), stage_index=1),
                ),
            )

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(codec_name="x", tasks=())

    def test_coarse_graph(self):
        graph = TaskGraph.coarse("lz4", ("s0", "s1", "s2", "s3", "s4"))
        assert graph.stage_count == 1
        assert graph.tasks[0].name == "t_all"
        assert graph.covered_steps() == ("s0", "s1", "s2", "s3", "s4")

    def test_describe(self):
        assert make_graph().describe() == "t0[s0+s1] -> t1[s2]"


class TestSchedulingPlan:
    def test_flat_matches_paper_array(self):
        plan = SchedulingPlan(
            graph=make_graph(), assignments=((4,), (0, 1))
        )
        assert plan.flat() == (4, 0, 1)
        assert plan.total_replicas == 3

    def test_replicas_per_stage(self):
        plan = SchedulingPlan(graph=make_graph(), assignments=((4,), (0, 1)))
        assert plan.replicas(0) == 1
        assert plan.replicas(1) == 2

    def test_cores_used_sorted_unique(self):
        plan = SchedulingPlan(graph=make_graph(), assignments=((4,), (0, 4)))
        assert plan.cores_used() == (0, 4)

    def test_tasks_per_core(self):
        plan = SchedulingPlan(graph=make_graph(), assignments=((4,), (4, 0)))
        assert plan.tasks_per_core() == {4: 2, 0: 1}

    def test_wrong_stage_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulingPlan(graph=make_graph(), assignments=((0,),))

    def test_empty_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulingPlan(graph=make_graph(), assignments=((0,), ()))

    def test_describe_mentions_cores(self):
        plan = SchedulingPlan(graph=make_graph(), assignments=((4,), (0,)))
        assert "@[4]" in plan.describe()
        assert "@[0]" in plan.describe()


class TestTaskEstimate:
    def test_latency_is_comp_plus_comm(self):
        estimate = TaskEstimate(
            stage_index=0, replica_index=0, core_id=4, kappa=100.0,
            l_comp_us_per_byte=10.0, l_comm_us_per_byte=2.5,
            energy_uj_per_byte=0.3,
        )
        assert estimate.l_us_per_byte == pytest.approx(12.5)
