"""Fine-grained decomposition and the fusion rule (§IV-B)."""

import pytest

from repro.core.decomposition import decompose
from repro.core.profiler import measure_communication, profile_workload
from repro.core.cost_model import calibrate_curves
from repro.compression import get_codec
from repro.datasets import get_dataset
from repro.simcore.boards import rk3399


@pytest.fixture(scope="module")
def board():
    return rk3399()


@pytest.fixture(scope="module")
def curves(board):
    return calibrate_curves(board)


@pytest.fixture(scope="module")
def communication(board):
    return measure_communication(board)


def decompose_workload(codec_name, dataset_name, board, curves, communication):
    profile = profile_workload(
        get_codec(codec_name), get_dataset(dataset_name), 8192, batches=3
    )
    return decompose(profile, board, curves.eta, communication)


class TestTcomp32Decomposition:
    def test_paper_fig4_structure(self, board, curves, communication):
        """Read and encode fuse; write stays separate (paper Fig 4)."""
        graph = decompose_workload(
            "tcomp32", "rovio", board, curves, communication
        )
        assert graph.describe() == "t0[s0+s1] -> t1[s2]"

    def test_all_steps_covered_once(self, board, curves, communication):
        graph = decompose_workload(
            "tcomp32", "stock", board, curves, communication
        )
        assert graph.covered_steps() == ("s0", "s1", "s2")


class TestStatefulDecomposition:
    @pytest.mark.parametrize("codec_name", ["tdic32", "lz4"])
    def test_read_always_fused_into_successor(
        self, codec_name, board, curves, communication
    ):
        """s0 is a cheap memory copy; shipping its output costs more
        than recomputing, so it never stands alone."""
        graph = decompose_workload(
            codec_name, "rovio", board, curves, communication
        )
        assert graph.tasks[0].step_ids[0] == "s0"
        assert len(graph.tasks[0].step_ids) >= 2

    def test_tdic32_multi_stage(self, board, curves, communication):
        graph = decompose_workload(
            "tdic32", "rovio", board, curves, communication
        )
        assert graph.stage_count >= 3
        assert graph.covered_steps() == ("s0", "s1", "s2", "s3", "s4")

    def test_stage_kappas_differ(self, board, curves, communication):
        """Decomposition's purpose: exposing distinct per-task κ."""
        profile = profile_workload(
            get_codec("tdic32"), get_dataset("rovio"), 8192, batches=3
        )
        graph = decompose(profile, board, curves.eta, communication)
        kappas = [
            task.merged_cost(profile.mean_step_costs).operational_intensity
            for task in graph.tasks
        ]
        assert max(kappas) > 2 * min(kappas)


class TestFusionRule:
    def test_expensive_communication_forces_fusion(
        self, board, curves, communication
    ):
        """With a 100x dearer interconnect every step fuses into one."""
        from repro.core.profiler import CommunicationTable
        from repro.simcore.interconnect import Path

        dear = CommunicationTable(
            unit_cost_us_per_byte={
                path: communication.unit_cost(path) * 100
                for path in (Path.C0, Path.C1, Path.C2)
            },
            message_overhead_us={
                path: communication.overhead(path)
                for path in (Path.C0, Path.C1, Path.C2)
            },
        )
        profile = profile_workload(
            get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=3
        )
        graph = decompose(profile, board, curves.eta, dear)
        assert graph.stage_count == 1

    def test_free_communication_splits_everything(
        self, board, curves, communication
    ):
        from repro.core.profiler import CommunicationTable
        from repro.simcore.interconnect import Path

        free = CommunicationTable(
            unit_cost_us_per_byte={
                path: 0.0 for path in (Path.C0, Path.C1, Path.C2)
            },
            message_overhead_us={
                path: 0.0 for path in (Path.C0, Path.C1, Path.C2)
            },
        )
        profile = profile_workload(
            get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=3
        )
        graph = decompose(profile, board, curves.eta, free)
        assert graph.stage_count == 3
