"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import Simulator, Store


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_run_until_stops_early(self):
        sim = Simulator()
        sim.timeout(100.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_with_empty_heap(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        sim.run()
        assert seen == ["payload"]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_simultaneous_events_fire_in_fifo_order(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            event = sim.timeout(1.0, tag)
            event.callbacks.append(lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(sim.now)
            yield sim.timeout(3.0)
            trace.append(sim.now)
            yield sim.timeout(4.0)
            trace.append(sim.now)

        sim.process(worker())
        sim.run()
        assert trace == [0.0, 3.0, 7.0]

    def test_timeout_value_passed_to_process(self):
        sim = Simulator()
        received = []

        def worker():
            value = yield sim.timeout(1.0, "token")
            received.append(value)

        sim.process(worker())
        sim.run()
        assert received == ["token"]

    def test_process_completion_is_waitable(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(2.0)
            return "done"

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(2.0, "done")]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def ticker(name, period):
            for _ in range(3):
                yield sim.timeout(period)
                trace.append((sim.now, name))

        sim.process(ticker("fast", 1.0))
        sim.process(ticker("slow", 2.5))
        sim.run()
        assert trace == [
            (1.0, "fast"), (2.0, "fast"), (2.5, "slow"),
            (3.0, "fast"), (5.0, "slow"), (7.5, "slow"),
        ]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        seen = []

        def consumer():
            item = yield store.get()
            seen.append(item)

        store.put("x")
        sim.process(consumer())
        sim.run()
        assert seen == ["x"]

    def test_get_waits_for_put(self):
        sim = Simulator()
        store = Store(sim)
        seen = []

        def consumer():
            item = yield store.get()
            seen.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert seen == [(5.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        seen = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                seen.append(item)

        for item in (1, 2, 3):
            store.put(item)
        sim.process(consumer())
        sim.run()
        assert seen == [1, 2, 3]

    def test_capacity_blocks_producer(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        produced = []

        def producer():
            for index in range(3):
                yield store.put(index)
                produced.append((sim.now, index))

        def consumer():
            for _ in range(3):
                yield sim.timeout(10.0)
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # First put is immediate; each later put waits for a get.
        assert produced[0][0] == 0.0
        assert produced[1][0] >= 10.0
        assert produced[2][0] >= 20.0

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_len_reports_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2
