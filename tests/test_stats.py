"""Batch statistics used by the cost model and generators."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.stats import analyze_batch, shannon_entropy


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(Counter()) == 0.0

    def test_single_symbol(self):
        assert shannon_entropy(Counter({"a": 100})) == 0.0

    def test_uniform_two(self):
        assert shannon_entropy(Counter({"a": 5, "b": 5})) == pytest.approx(1.0)

    def test_uniform_n(self):
        counts = Counter({i: 1 for i in range(16)})
        assert shannon_entropy(counts) == pytest.approx(4.0)

    def test_skew_lowers_entropy(self):
        uniform = shannon_entropy(Counter({"a": 50, "b": 50}))
        skewed = shannon_entropy(Counter({"a": 99, "b": 1}))
        assert skewed < uniform


class TestAnalyzeBatch:
    def test_empty_batch(self):
        stats = analyze_batch(b"")
        assert stats.size_bytes == 0
        assert stats.symbol_count == 0
        assert stats.symbol_duplication == 0.0

    def test_symbol_count(self):
        stats = analyze_batch(b"\x00" * 64)
        assert stats.symbol_count == 16

    def test_all_identical_symbols(self):
        data = np.full(100, 7, dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.symbol_duplication == pytest.approx(0.99)

    def test_all_unique_symbols(self):
        data = np.arange(100, dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.symbol_duplication == 0.0

    def test_dynamic_range_of_zero_words(self):
        data = np.zeros(10, dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.dynamic_range_bits == pytest.approx(1.0)

    def test_dynamic_range_of_max_words(self):
        data = np.full(10, 0xFFFFFFFF, dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.dynamic_range_bits == pytest.approx(32.0)

    def test_entropy_bounded_by_log_count(self):
        data = np.arange(64, dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.symbol_entropy_bits == pytest.approx(6.0)

    def test_vocabulary_duplication_independent_of_symbols(self):
        # Pairs (1,2),(3,4),(1,2): symbols repeat AND vocabularies repeat.
        data = np.array([1, 2, 3, 4, 1, 2], dtype=np.uint32).tobytes()
        stats = analyze_batch(data)
        assert stats.vocabulary_duplication == pytest.approx(1 / 3)

    def test_odd_tail_ignored(self):
        # 9 bytes: two symbols + 1 dangling byte.
        stats = analyze_batch(b"\x01\x00\x00\x00\x02\x00\x00\x00\xff")
        assert stats.symbol_count == 2

    @given(st.binary(min_size=4, max_size=512))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, data):
        stats = analyze_batch(data)
        assert 0.0 <= stats.symbol_duplication <= 1.0
        assert 0.0 <= stats.vocabulary_duplication <= 1.0
        assert 0.0 <= stats.dynamic_range_bits <= 32.0
        assert stats.symbol_entropy_bits >= 0.0
        assert stats.size_bytes == len(data)
