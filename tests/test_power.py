"""Energy meter: integration, breakdown, sampling trace."""

import pytest

from repro.errors import SimulationError
from repro.simcore.boards import rk3399
from repro.simcore.power import EnergyMeter


@pytest.fixture
def meter():
    return EnergyMeter(rk3399())


class TestBusyRecording:
    def test_energy_is_power_times_time(self, meter):
        energy = meter.record_busy(0, 0.0, 100.0, 0.02)
        assert energy == pytest.approx(2.0)  # W x µs = µJ

    def test_accumulates_per_core(self, meter):
        meter.record_busy(0, 0.0, 10.0, 1.0)
        meter.record_busy(0, 10.0, 10.0, 1.0)
        meter.record_busy(4, 0.0, 5.0, 2.0)
        by_core = meter.busy_energy_by_core()
        assert by_core[0] == pytest.approx(20.0)
        assert by_core[4] == pytest.approx(10.0)

    def test_negative_duration_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.record_busy(0, 0.0, -1.0, 1.0)

    def test_negative_power_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.record_busy(0, 0.0, 1.0, -1.0)


class TestOverhead:
    def test_overhead_accumulates(self, meter):
        meter.record_overhead(3.0)
        meter.record_overhead(4.0)
        breakdown = meter.finalize(0.0)
        assert breakdown.overhead_uj == pytest.approx(7.0)

    def test_negative_overhead_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.record_overhead(-1.0)


class TestFinalize:
    def test_static_energy_scales_with_window(self, meter):
        short = EnergyMeter(rk3399()).finalize(1000.0)
        long = EnergyMeter(rk3399()).finalize(2000.0)
        assert long.static_uj == pytest.approx(2 * short.static_uj)

    def test_total_is_sum_of_parts(self, meter):
        meter.record_busy(0, 0.0, 10.0, 1.0)
        meter.record_overhead(5.0)
        breakdown = meter.finalize(100.0)
        assert breakdown.total_uj == pytest.approx(
            breakdown.busy_uj + breakdown.static_uj + breakdown.overhead_uj
        )

    def test_negative_window_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.finalize(-1.0)

    def test_static_power_includes_uncore_and_cores(self):
        board = rk3399()
        breakdown = EnergyMeter(board).finalize(1000.0)
        expected = (
            board.uncore_power_w
            + sum(core.static_power_w for core in board.cores)
        ) * 1000.0
        assert breakdown.static_uj == pytest.approx(expected)


class TestPowerTrace:
    def test_trace_length(self):
        meter = EnergyMeter(rk3399(), sampling_interval_us=100.0)
        trace = meter.power_trace(1000.0)
        assert len(trace) == 11  # 0, 100, ..., 1000

    def test_trace_shows_busy_interval(self):
        meter = EnergyMeter(rk3399(), sampling_interval_us=10.0)
        meter.record_busy(0, 20.0, 30.0, 0.5)
        trace = dict(meter.power_trace(100.0))
        floor = trace[0.0]
        assert trace[30.0] == pytest.approx(floor + 0.5)
        assert trace[60.0] == pytest.approx(floor)

    def test_invalid_sampling_interval(self):
        with pytest.raises(SimulationError):
            EnergyMeter(rk3399(), sampling_interval_us=0.0)
