"""Statistics-aware regulation (future-work controller)."""

import pytest

from repro.compression.base import StepCost
from repro.core.statistics_regulator import StatisticsAwareRegulator
from repro.errors import ConfigurationError


@pytest.fixture
def setup(tcomp32_rovio_context):
    context = tcomp32_rovio_context
    model = context.cost_model(context.fine_graph)
    regulator = StatisticsAwareRegulator(model)
    baseline = {
        step: context.profile.mean_step_costs[step]
        for step in context.profile.step_ids
    }
    return regulator, baseline


def scaled_costs(baseline, factor):
    return {
        step: StepCost(
            instructions=cost.instructions * factor,
            memory_accesses=cost.memory_accesses * factor,
            input_bytes=cost.input_bytes,
            output_bytes=cost.output_bytes,
        )
        for step, cost in baseline.items()
    }


class TestConstruction:
    def test_invalid_threshold(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        with pytest.raises(ConfigurationError):
            StatisticsAwareRegulator(model, trigger_threshold=0.0)

    def test_invalid_smoothing(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        with pytest.raises(ConfigurationError):
            StatisticsAwareRegulator(model, smoothing=1.0)

    def test_initial_plan_feasible(self, setup):
        regulator, _ = setup
        assert regulator.estimate.feasible


class TestObservation:
    def test_stable_stream_no_replan(self, setup):
        regulator, baseline = setup
        for batch in range(4):
            event = regulator.observe(batch, baseline)
            assert not event.replanned
            assert event.max_shift < 0.05

    def test_jump_triggers_single_step_replan(self, setup):
        """The headline property: one drifted batch is enough."""
        regulator, baseline = setup
        regulator.observe(0, baseline)
        event = regulator.observe(1, scaled_costs(baseline, 1.6))
        assert event.replanned
        assert event.max_shift > 0.15

    def test_model_scale_tracks_jump(self, setup):
        regulator, baseline = setup
        regulator.observe(0, baseline)
        regulator.observe(1, scaled_costs(baseline, 1.6))
        # With smoothing 0.3 the first observation sees 70% of the jump.
        scale = regulator.model.latency_scale[0]
        assert 1.3 < scale < 1.7

    def test_small_noise_filtered(self, setup):
        regulator, baseline = setup
        for batch, factor in enumerate((1.02, 0.97, 1.05, 0.99)):
            event = regulator.observe(batch, scaled_costs(baseline, factor))
            assert not event.replanned

    def test_rebaseline_after_replan(self, setup):
        """After adapting, the new level is normal — no repeat triggers."""
        regulator, baseline = setup
        high = scaled_costs(baseline, 1.6)
        regulator.observe(0, high)   # replan
        events = [regulator.observe(batch, high) for batch in (1, 2, 3)]
        assert sum(event.replanned for event in events) <= 1  # settling only

    def test_events_recorded(self, setup):
        regulator, baseline = setup
        regulator.observe(0, baseline)
        regulator.observe(1, scaled_costs(baseline, 2.0))
        assert len(regulator.events) == 2
        assert regulator.events[1].max_shift > regulator.events[0].max_shift


class TestDetectOnly:
    """``auto_replan=False``: the control loop's drift detector.

    The session controller owns the replan/migration decision, so the
    regulator only flags drift and recalibrates the model in place."""

    def detect_only(self, context):
        model = context.cost_model(context.fine_graph)
        return StatisticsAwareRegulator(model, auto_replan=False), {
            step: context.profile.mean_step_costs[step]
            for step in context.profile.step_ids
        }

    def test_drift_flagged_without_replanning(self, tcomp32_rovio_context):
        regulator, baseline = self.detect_only(tcomp32_rovio_context)
        initial_plan = regulator.plan
        regulator.observe(0, baseline)
        event = regulator.observe(1, scaled_costs(baseline, 1.6))
        assert event.drifted
        assert not event.replanned
        assert regulator.plan == initial_plan  # plan untouched

    def test_stable_stream_not_flagged(self, tcomp32_rovio_context):
        regulator, baseline = self.detect_only(tcomp32_rovio_context)
        for batch in range(4):
            event = regulator.observe(batch, baseline)
            assert not event.drifted
            assert not event.replanned

    def test_model_recalibrated_on_drift(self, tcomp32_rovio_context):
        """Recalibration is not gated on auto_replan: the warm-started
        replan that follows must see the drifted latency scales."""
        regulator, baseline = self.detect_only(tcomp32_rovio_context)
        regulator.observe(0, baseline)
        regulator.observe(1, scaled_costs(baseline, 1.6))
        assert regulator.model.latency_scale[0] > 1.2

    def test_shared_scheduler_is_used(self, tcomp32_rovio_context):
        from repro.core.scheduler import Scheduler

        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        scheduler = Scheduler(model)
        regulator = StatisticsAwareRegulator(model, scheduler=scheduler)
        assert regulator.scheduler is scheduler

    def test_default_events_mark_drift_and_replan_together(self, setup):
        regulator, baseline = setup
        regulator.observe(0, baseline)
        event = regulator.observe(1, scaled_costs(baseline, 1.6))
        assert event.drifted
        assert event.replanned


class TestVersusPid:
    def test_faster_than_pid_on_a_jump(self, tcomp32_rovio_context):
        """The §V-D trade-off, measured: the statistics watcher replans
        within one observation; the PID needs at least three."""
        from repro.core.adaptive import FeedbackRegulator

        context = tcomp32_rovio_context
        baseline = {
            step: context.profile.mean_step_costs[step]
            for step in context.profile.step_ids
        }
        jumped = scaled_costs(baseline, 1.6)

        stats = StatisticsAwareRegulator(context.cost_model(context.fine_graph))
        stats_batches = 0
        for batch in range(6):
            stats_batches = batch
            if stats.observe(batch, jumped).replanned:
                break

        pid = FeedbackRegulator(context.cost_model(context.fine_graph))
        jumped_latency = pid.estimate.latency_us_per_byte * 1.6
        pid_batches = 0
        for batch in range(6):
            pid_batches = batch
            if pid.observe(batch, jumped_latency).replanned:
                break

        assert stats_batches < pid_batches
