"""Tests for the determinism linter and the plan/trace verifier.

Every lint rule gets a positive fixture (the rule fires), a suppressed
fixture (``# csa: ignore[...]`` silences it) and a clean fixture (the
compliant spelling passes). Every verifier invariant gets a seeded
violation. The suite also dogfoods both tools against the real tree: the
linter must be clean on ``src/repro`` and the verifier must accept a
real traced run.
"""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.analysis.lint import RULES, lint_paths, lint_source
from repro.analysis.lint import main as lint_main
from repro.analysis.verify import (
    INVARIANTS,
    iter_recorder_events,
    verify_chrome_payload,
    verify_health,
    verify_plan,
    verify_trace_events,
)
from repro.analysis.verify import main as verify_main
from repro.cli import main as cli_main
from repro.core.plan import SchedulingPlan
from repro.core.scheduler import Scheduler
from repro.core.task import Task, TaskGraph
from repro.errors import InvariantViolationError
from repro.numerics import ordered_sum
from repro.obs.check import validate_trace

REPRO_ROOT = os.path.dirname(repro.__file__)


def codes(findings):
    return [f.code for f in findings]


def lint_strict(source):
    """Lint a snippet as if it lived in a strict package."""
    return lint_source(source, path="snippet.py", package="simcore")


def lint_lenient(source):
    """Lint a snippet as if it lived in a lenient package."""
    return lint_source(source, path="snippet.py", package="bench")


# ---------------------------------------------------------------------------
# linter rules
# ---------------------------------------------------------------------------


class TestCSA001WallClock:
    def test_positive(self):
        found = lint_strict("import time\nnow = time.time()\n")
        assert codes(found) == ["CSA001"]

    def test_aliased_import(self):
        found = lint_strict(
            "from time import perf_counter as pc\nstart = pc()\n"
        )
        assert codes(found) == ["CSA001"]

    def test_datetime_now(self):
        found = lint_strict(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )
        assert codes(found) == ["CSA001"]

    def test_suppressed(self):
        found = lint_strict(
            "import time\n"
            "now = time.time()  # csa: ignore[CSA001]\n"
        )
        assert found == []

    def test_clean_in_lenient_package(self):
        assert lint_lenient("import time\nnow = time.time()\n") == []

    def test_clean_simulated_clock(self):
        assert lint_strict("now = simulator.now()\n") == []


class TestCSA002Randomness:
    def test_global_random(self):
        found = lint_strict("import random\nx = random.random()\n")
        assert codes(found) == ["CSA002"]

    def test_applies_everywhere(self):
        found = lint_lenient("import random\nx = random.random()\n")
        assert codes(found) == ["CSA002"]

    def test_unseeded_default_rng(self):
        found = lint_strict(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert codes(found) == ["CSA002"]

    def test_seeded_default_rng_clean(self):
        assert lint_strict(
            "def build(seed):\n"
            "    import numpy as np\n"
            "    return np.random.default_rng(seed)\n"
        ) == []

    def test_legacy_numpy_global(self):
        found = lint_strict(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert codes(found) == ["CSA002"]

    def test_entropy_sources(self):
        found = lint_strict(
            "import os\nimport uuid\n"
            "a = os.urandom(8)\nb = uuid.uuid4()\n"
        )
        assert codes(found) == ["CSA002", "CSA002"]

    def test_suppressed(self):
        assert lint_strict(
            "import random\n"
            "x = random.random()  # csa: ignore[CSA002]\n"
        ) == []


class TestCSA003SetIteration:
    def test_set_literal(self):
        found = lint_strict("for x in {1, 2, 3}:\n    pass\n")
        assert codes(found) == ["CSA003"]

    def test_set_call_result(self):
        found = lint_strict(
            "cores = set(plan)\nfor c in cores:\n    pass\n"
        )
        assert codes(found) == ["CSA003"]

    def test_set_annotated_argument(self):
        found = lint_strict(
            "from typing import Set\n"
            "def run(stages: Set[int]):\n"
            "    for s in stages:\n"
            "        pass\n"
        )
        assert codes(found) == ["CSA003"]

    def test_comprehension_over_set(self):
        found = lint_strict("xs = [x for x in {1, 2}]\n")
        assert codes(found) == ["CSA003"]

    def test_sorted_is_clean(self):
        assert lint_strict(
            "for x in sorted({3, 1, 2}):\n    pass\n"
        ) == []

    def test_order_insensitive_consumers_clean(self):
        assert lint_strict("n = len({1, 2})\nm = max({1, 2})\n") == []

    def test_lenient_package_clean(self):
        assert lint_lenient("for x in {1, 2}:\n    pass\n") == []

    def test_suppressed(self):
        assert lint_strict(
            "for x in {1, 2}:  # csa: ignore[CSA003]\n    pass\n"
        ) == []


class TestCSA004MutableDefault:
    def test_list_default(self):
        found = lint_strict("def f(xs=[]):\n    pass\n")
        assert codes(found) == ["CSA004"]

    def test_dict_and_factory_defaults(self):
        found = lint_lenient(
            "from collections import defaultdict\n"
            "def f(a={}, b=defaultdict(list)):\n    pass\n"
        )
        assert codes(found) == ["CSA004", "CSA004"]

    def test_keyword_only_default(self):
        found = lint_strict("def f(*, xs=set()):\n    pass\n")
        assert codes(found) == ["CSA004"]

    def test_immutable_defaults_clean(self):
        assert lint_strict(
            "def f(a=(), b=None, c='x', d=0):\n    pass\n"
        ) == []

    def test_suppressed(self):
        assert lint_strict(
            "def f(xs=[]):  # csa: ignore[CSA004]\n    pass\n"
        ) == []


class TestCSA005UnorderedAccumulation:
    def test_energy_sum(self):
        found = lint_strict("total = sum(energies)\n")
        assert codes(found) == ["CSA005"]

    def test_attribute_quantity(self):
        found = lint_strict(
            "total = sum(e.energy_uj_per_byte for e in estimates)\n"
        )
        assert codes(found) == ["CSA005"]

    def test_latency_values(self):
        found = lint_strict("total = sum(latency_by_core.values())\n")
        assert codes(found) == ["CSA005"]

    def test_non_quantity_sum_clean(self):
        assert lint_strict("count = sum(batch_counts)\n") == []

    def test_ordered_sum_clean(self):
        assert lint_strict(
            "from repro.numerics import ordered_sum\n"
            "total = ordered_sum(energies)\n"
        ) == []

    def test_lenient_package_clean(self):
        assert lint_lenient("total = sum(energies)\n") == []

    def test_suppressed(self):
        assert lint_strict(
            "total = sum(energies)  # csa: ignore[CSA005]\n"
        ) == []


class TestCSA006UnguardedTraceHook:
    def test_unguarded_hook(self):
        found = lint_strict("trace.span('t0', 0, 0.0, 1.0)\n")
        assert codes(found) == ["CSA006"]

    def test_unguarded_attribute_receiver(self):
        found = lint_strict(
            "def f(self):\n"
            "    self.trace.energy_sample('busy', 1.0, 0.0)\n"
        )
        assert codes(found) == ["CSA006"]

    def test_guarded_hook_clean(self):
        assert lint_strict(
            "if trace is not None:\n"
            "    trace.span('t0', 0, 0.0, 1.0)\n"
        ) == []

    def test_guarded_attribute_clean(self):
        assert lint_strict(
            "def f(self):\n"
            "    if self.trace is not None:\n"
            "        self.trace.migration(0, 1.0)\n"
        ) == []

    def test_truthiness_guard_clean(self):
        assert lint_strict(
            "if recorder:\n"
            "    recorder.batch_complete(0, 1.0)\n"
        ) == []

    def test_wrong_guard_still_fires(self):
        found = lint_strict(
            "if other is not None:\n"
            "    trace.span('t0', 0, 0.0, 1.0)\n"
        )
        assert codes(found) == ["CSA006"]

    def test_non_recorder_receiver_clean(self):
        # `span`-named methods on non-trace objects are not hooks
        assert lint_strict("window.span('x', 1, 2, 3)\n") == []

    def test_suppressed(self):
        assert lint_strict(
            "trace.span('t0', 0, 0.0, 1.0)  # csa: ignore[CSA006]\n"
        ) == []


class TestCSA007EnvironmentRead:
    def test_environ(self):
        found = lint_strict("import os\nflag = os.environ['X']\n")
        assert codes(found) == ["CSA007"]

    def test_getenv(self):
        found = lint_strict("import os\nflag = os.getenv('X')\n")
        assert codes(found) == ["CSA007"]

    def test_lenient_package_clean(self):
        assert lint_lenient("import os\nflag = os.getenv('X')\n") == []

    def test_suppressed(self):
        assert lint_strict(
            "import os\n"
            "flag = os.getenv('X')  # csa: ignore[CSA007]\n"
        ) == []


class TestCSA008FilesystemOrder:
    def test_listdir(self):
        found = lint_strict("import os\nnames = os.listdir('.')\n")
        assert codes(found) == ["CSA008"]

    def test_applies_everywhere(self):
        found = lint_lenient("import os\nnames = os.listdir('.')\n")
        assert codes(found) == ["CSA008"]

    def test_path_glob(self):
        found = lint_lenient("files = directory.glob('*.pkl')\n")
        assert codes(found) == ["CSA008"]

    def test_sorted_listing_clean(self):
        assert lint_lenient(
            "import os\nnames = sorted(os.listdir('.'))\n"
        ) == []

    def test_order_insensitive_count_clean(self):
        assert lint_lenient(
            "count = sum(1 for _ in directory.glob('*.pkl'))\n"
        ) == []

    def test_re_match_not_confused(self):
        # re.match objects aren't filesystem globs
        assert lint_lenient(
            "import re\nhit = re.compile('x').match('xy')\n"
        ) == []

    def test_suppressed(self):
        assert lint_lenient(
            "import os\n"
            "names = os.listdir('.')  # csa: ignore[CSA008]\n"
        ) == []


class TestCSA009UnguardedTelemetryHook:
    def test_unguarded_hook(self):
        found = lint_strict("telemetry.comm('c1', 7.5, 0)\n")
        assert codes(found) == ["CSA009"]

    def test_unguarded_attribute_receiver(self):
        found = lint_strict(
            "def f(self):\n"
            "    self.collector.retry(0, 1, 40.0, 2)\n"
        )
        assert codes(found) == ["CSA009"]

    def test_guarded_hook_clean(self):
        assert lint_strict(
            "if telemetry is not None:\n"
            "    telemetry.comm('c1', 7.5, 0)\n"
        ) == []

    def test_guarded_attribute_clean(self):
        assert lint_strict(
            "def f(self):\n"
            "    if self.collector is not None:\n"
            "        self.collector.collect_window(0, 0, 3, 8192, {})\n"
        ) == []

    def test_wrong_guard_still_fires(self):
        found = lint_strict(
            "if other is not None:\n"
            "    telemetry.retry(0, 1, 40.0, 2)\n"
        )
        assert codes(found) == ["CSA009"]

    def test_non_telemetry_receiver_clean(self):
        # `retry`-named methods on non-telemetry objects are not hooks
        assert lint_strict("client.retry(0, 1, 40.0, 2)\n") == []

    def test_lenient_package_clean(self):
        assert lint_lenient("telemetry.comm('c1', 7.5, 0)\n") == []

    def test_suppressed(self):
        assert lint_strict(
            "telemetry.comm('c1', 7.5, 0)  # csa: ignore[CSA009]\n"
        ) == []


class TestLinterMachinery:
    def test_rule_table_has_nine_rules(self):
        assert len(RULES) == 9
        assert sorted(RULES) == [f"CSA00{i}" for i in range(1, 10)]

    def test_multi_code_suppression(self):
        assert lint_strict(
            "import time, os\n"
            "x = (time.time(), os.getenv('X'))"
            "  # csa: ignore[CSA001, CSA007]\n"
        ) == []

    def test_suppression_is_per_code(self):
        found = lint_strict(
            "import time\n"
            "now = time.time()  # csa: ignore[CSA005]\n"
        )
        assert codes(found) == ["CSA001"]

    def test_syntax_error_reported_not_raised(self):
        found = lint_strict("def f(:\n")
        assert codes(found) == ["CSA000"]

    def test_findings_sorted_and_located(self):
        found = lint_strict(
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert [f.line for f in found] == [2, 3]
        assert "snippet.py:2:" in found[0].format()

    def test_real_tree_is_clean(self):
        findings, scanned = lint_paths([REPRO_ROOT])
        assert scanned > 50
        assert findings == []

    def test_cli_json_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    pass\n")
        report = tmp_path / "report.json"
        status = lint_main(
            [str(bad), "--json", "--report", str(report)]
        )
        assert status == 1
        payload = json.loads(report.read_text())
        assert payload["counts"] == {"CSA004": 1}
        assert payload["files_scanned"] == 1
        printed = json.loads(capsys.readouterr().out)
        assert printed["findings"][0]["code"] == "CSA004"

    def test_cli_exit_zero_when_clean(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(xs=()):\n    return xs\n")
        assert lint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# plan invariants
# ---------------------------------------------------------------------------


def two_stage_plan(steps0, steps1, assignments):
    graph = TaskGraph(
        codec_name="toy",
        tasks=(
            Task(name="t0", step_ids=tuple(steps0), stage_index=0),
            Task(name="t1", step_ids=tuple(steps1), stage_index=1),
        ),
    )
    return SchedulingPlan(graph=graph, assignments=assignments)


class TestPlanInvariants:
    def test_invariant_table(self):
        assert len(INVARIANTS) == 21
        assert sum(1 for code in INVARIANTS if code.startswith("PLN")) == 6
        assert sum(1 for code in INVARIANTS if code.startswith("HLT")) == 3
        assert sum(1 for code in INVARIANTS if code.startswith("FLT")) == 5

    def test_pln001_cyclic_plan(self):
        # t0 runs s1, t1 runs s0 — the pipeline order contradicts the
        # codec's step order, so the dependency graph is cyclic.
        plan = two_stage_plan(("s1",), ("s0",), ((0,), (1,)))
        found = verify_plan(plan, expected_steps=("s0", "s1"))
        assert "PLN001" in codes(found)

    def test_pln001_clean_pipeline(self):
        plan = two_stage_plan(("s0",), ("s1",), ((0,), (1,)))
        assert verify_plan(plan, expected_steps=("s0", "s1")) == []

    def test_pln001_declared_shape_contradicts_step_graph(self):
        # Declared pipeline: t0 -> t1. Codec step graph: t1's step "b"
        # produces t0's step "a". Either edge set alone is acyclic;
        # together they are a cycle only the DAG-aware check can see.
        plan = two_stage_plan(("a",), ("b",), ((0,), (1,)))
        found = verify_plan(
            plan,
            expected_steps=("b", "a"),
            step_dependencies={"b": (), "a": ("b",)},
        )
        assert "PLN001" in codes(found)

    def test_pln_fork_join_plan_accepted(self):
        graph = TaskGraph(
            codec_name="toy-dag",
            tasks=(
                Task(name="t0", step_ids=("d0",), stage_index=0),
                Task(name="t1", step_ids=("d1",), stage_index=1,
                     predecessors=(0,)),
                Task(name="t2", step_ids=("d2",), stage_index=2,
                     predecessors=(0,)),
                Task(name="t3", step_ids=("d3",), stage_index=3,
                     predecessors=(1, 2)),
            ),
        )
        plan = SchedulingPlan(
            graph=graph, assignments=((0,), (1,), (2,), (3,))
        )
        found = verify_plan(
            plan,
            expected_steps=("d0", "d1", "d2", "d3"),
            step_dependencies={
                "d0": (), "d1": ("d0",), "d2": ("d0",),
                "d3": ("d1", "d2"),
            },
        )
        assert found == []

    def test_pln006_multiple_sinks(self):
        # TaskGraph itself refuses orphaned stages, so a multi-sink
        # shape can only come from a foreign plan object — duck-typed.
        from types import SimpleNamespace

        def fake_task(name, step_ids, predecessors):
            return SimpleNamespace(
                name=name, step_ids=step_ids, predecessors=predecessors
            )

        plan = SimpleNamespace(
            graph=SimpleNamespace(tasks=(
                fake_task("t0", ("s0",), ()),
                fake_task("t1", ("s1",), (0,)),
                fake_task("t2", ("s2",), (0,)),
            )),
            assignments=((0,), (1,), (2,)),
        )
        found = verify_plan(plan)
        assert "PLN006" in codes(found)
        assert "2 sinks" in found[0].message

    def test_pln002_missing_step(self):
        plan = two_stage_plan(("s0",), ("s1",), ((0,), (1,)))
        found = verify_plan(plan, expected_steps=("s0", "s1", "s2"))
        assert codes(found) == ["PLN002"]
        assert "s2" in found[0].message

    def test_pln002_unknown_step(self):
        plan = two_stage_plan(("s0",), ("sX",), ((0,), (1,)))
        found = verify_plan(plan, expected_steps=("s0",))
        assert codes(found) == ["PLN002"]

    def test_pln003_out_of_range_core(self, board):
        plan = two_stage_plan(("s0",), ("s1",), ((0,), (9,)))
        found = verify_plan(plan, board=board)
        assert codes(found) == ["PLN003"]
        assert "9" in found[0].message

    def test_pln004_double_booked_stage_is_warning(self):
        plan = two_stage_plan(("s0",), ("s1",), ((2, 2), (1,)))
        found = verify_plan(plan)
        assert codes(found) == ["PLN004"]
        assert found[0].severity == "warning"

    def test_pln005_infeasible_when_expected(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        graph = TaskGraph.coarse(
            context.fine_graph.codec_name,
            context.fine_graph.covered_steps(),
        )
        model = context.cost_model(graph)
        # One replica of everything on one little core cannot meet L_set.
        plan = SchedulingPlan(graph=graph, assignments=((0,),))
        if model.evaluate(plan).feasible:
            pytest.skip("single-core coarse plan unexpectedly feasible")
        found = verify_plan(
            plan, cost_model=model, expect_feasible=True
        )
        assert codes(found) == ["PLN005"]
        assert found[0].severity == "error"
        relaxed = verify_plan(
            plan, cost_model=model, expect_feasible=False
        )
        assert [f.severity for f in relaxed] == ["warning"]

    def test_validate_raises_on_cycle(self):
        plan = two_stage_plan(("s1",), ("s0",), ((0,), (1,)))
        with pytest.raises(InvariantViolationError) as caught:
            plan.validate(expected_steps=("s0", "s1"))
        assert any(f.code == "PLN001" for f in caught.value.findings)

    def test_validate_strict_promotes_warnings(self):
        plan = two_stage_plan(("s0",), ("s1",), ((2, 2), (1,)))
        assert [f.code for f in plan.validate()] == ["PLN004"]
        with pytest.raises(InvariantViolationError):
            plan.validate(strict=True)

    def test_scheduler_plan_passes_verification(
        self, board, tcomp32_rovio_context
    ):
        context = tcomp32_rovio_context
        model = context.cost_model(context.fine_graph)
        result = Scheduler(model).schedule(best_effort=True)
        found = verify_plan(
            result.plan,
            board=board,
            expected_steps=model.profile.step_ids,
            cost_model=model,
            expect_feasible=result.feasible,
        )
        assert [f for f in found if f.severity == "error"] == []


class TestSchedulerValidationFlag:
    def _scheduler(self, context):
        return Scheduler(context.cost_model(context.fine_graph))

    def test_validation_runs_when_enabled(
        self, monkeypatch, tcomp32_rovio_context
    ):
        import repro.analysis.verify as verify_module

        calls = []
        original = verify_module.verify_plan

        def spy(plan, **kwargs):
            calls.append(plan)
            return original(plan, **kwargs)

        monkeypatch.setattr(verify_module, "verify_plan", spy)
        monkeypatch.setenv("REPRO_VALIDATE_PLANS", "1")
        self._scheduler(tcomp32_rovio_context).schedule(best_effort=True)
        assert len(calls) == 1

    def test_validation_skipped_when_disabled(
        self, monkeypatch, tcomp32_rovio_context
    ):
        import repro.analysis.verify as verify_module

        calls = []
        monkeypatch.setattr(
            verify_module, "verify_plan",
            lambda plan, **kwargs: calls.append(plan) or [],
        )
        monkeypatch.setenv("REPRO_VALIDATE_PLANS", "0")
        self._scheduler(tcomp32_rovio_context).schedule(best_effort=True)
        assert calls == []


# ---------------------------------------------------------------------------
# trace invariants
# ---------------------------------------------------------------------------


def event(name="e", ph="i", ts=0.0, pid=0, tid=0, dur=0.0, cat="sim",
          **args):
    record = {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid,
              "cat": cat}
    if ph == "X":
        record["dur"] = dur
    if args:
        record["args"] = args
    return record


def payload(*events):
    return {"traceEvents": list(events)}


class TestTraceInvariants:
    def test_trc001_time_goes_backwards(self):
        found = verify_chrome_payload(payload(
            event(ts=5.0), event(ts=2.0),
        ))
        assert codes(found) == ["TRC001"]
        assert found[0].severity == "error"

    def test_trc001_per_track_not_global(self):
        # interleaved tracks each monotone -> clean
        found = verify_chrome_payload(payload(
            event(ts=5.0, tid=0), event(ts=1.0, tid=1),
            event(ts=6.0, tid=0), event(ts=2.0, tid=1),
        ))
        assert found == []

    def test_trc002_energy_counter_drops(self):
        found = verify_chrome_payload(payload(
            event(name="energy.busy", ph="C", ts=1.0, cat="energy",
                  value=10.0),
            event(name="energy.busy", ph="C", ts=2.0, cat="energy",
                  value=4.0),
        ))
        assert codes(found) == ["TRC002"]

    def test_trc002_non_energy_counter_may_drop(self):
        found = verify_chrome_payload(payload(
            event(name="q.s0", ph="C", ts=1.0, cat="queue", value=3),
            event(name="q.s0", ph="C", ts=2.0, cat="queue", value=1),
        ))
        assert found == []

    def test_trc003_overlapping_spans(self):
        found = verify_chrome_payload(payload(
            event(name="a", ph="X", ts=0.0, dur=10.0),
            event(name="b", ph="X", ts=5.0, dur=10.0),
        ))
        assert codes(found) == ["TRC003"]

    def test_trc003_spans_on_other_tracks_clean(self):
        found = verify_chrome_payload(payload(
            event(name="a", ph="X", ts=0.0, dur=10.0, tid=0),
            event(name="b", ph="X", ts=5.0, dur=10.0, tid=1),
            event(name="c", ph="X", ts=10.0, dur=1.0, tid=0),
        ))
        assert found == []

    def test_trc004_reordered_same_timestamp_counters(self):
        found = verify_chrome_payload(payload(
            event(name="q.s0", ph="C", ts=3.0, cat="queue", value=1),
            event(name="q.s0", ph="C", ts=3.0, cat="queue", value=0),
        ))
        assert codes(found) == ["TRC004"]
        assert found[0].severity == "warning"

    def test_trc005_negative_timestamp(self):
        found = verify_chrome_payload(payload(event(ts=-1.0)))
        assert codes(found) == ["TRC005"]

    def test_trc005_non_integer_track(self):
        found = verify_chrome_payload(payload(event(tid="core0")))
        assert codes(found) == ["TRC005"]

    def test_trc006_span_after_core_failure(self):
        found = verify_chrome_payload(payload(
            event(name="core-failure", ph="i", ts=5.0, tid=902,
                  cat="fault", core=4, failover=5),
            event(name="t0:s0", ph="X", ts=6.0, dur=1.0, tid=4,
                  cat="task"),
        ))
        assert codes(found) == ["TRC006"]
        assert found[0].severity == "error"

    def test_trc006_span_at_failure_instant_clean(self):
        # the failure fires at a batch boundary the span helped produce
        found = verify_chrome_payload(payload(
            event(name="core-failure", ph="i", ts=5.0, tid=902,
                  cat="fault", core=4, failover=5),
            event(name="t0:s0", ph="X", ts=5.0, dur=1.0, tid=4,
                  cat="task"),
        ))
        assert found == []

    def test_trc006_surviving_cores_keep_working(self):
        found = verify_chrome_payload(payload(
            event(name="core-failure", ph="i", ts=5.0, tid=902,
                  cat="fault", core=4, failover=5),
            event(name="t0:s0", ph="X", ts=6.0, dur=1.0, tid=5,
                  cat="task"),
        ))
        assert found == []

    def test_trc007_retry_without_corruption(self):
        found = verify_chrome_payload(payload(
            event(name="batch-retry", ph="i", ts=2.0, tid=902,
                  cat="fault", batch=3, attempt=1),
        ))
        assert codes(found) == ["TRC007"]
        assert found[0].severity == "error"

    def test_trc007_matched_retry_clean(self):
        found = verify_chrome_payload(payload(
            event(name="batch-corrupted", ph="i", ts=1.0, tid=902,
                  cat="fault", batch=3, attempts=1),
            event(name="batch-retry", ph="i", ts=2.0, tid=902,
                  cat="fault", batch=3, attempt=1),
        ))
        assert found == []

    def test_metadata_events_ignored(self):
        found = verify_chrome_payload(payload(
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "rep 0"}},
            event(ts=1.0),
        ))
        assert found == []

    def test_real_traced_run_has_no_errors(
        self, small_harness, tcomp32_rovio_spec
    ):
        _, recorder = small_harness.run_traced(
            tcomp32_rovio_spec, "CStream", repetitions=1
        )
        found = verify_trace_events(iter_recorder_events(recorder))
        assert [f for f in found if f.severity == "error"] == []


class TestObsCheckIntegration:
    def test_schema_check_now_rejects_backwards_time(self):
        problems = validate_trace(payload(
            event(ts=5.0), event(ts=2.0),
        ))
        assert any("TRC001" in problem for problem in problems)

    def test_valid_trace_still_passes(self):
        problems = validate_trace(payload(
            event(ts=1.0), event(ts=2.0),
        ))
        assert problems == []

    def test_warnings_do_not_fail_schema_check(self):
        problems = validate_trace(payload(
            event(name="q", ph="C", ts=3.0, value=1),
            event(name="q", ph="C", ts=3.0, value=0),
        ))
        assert problems == []


class TestVerifyCli:
    def test_errors_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps(payload(event(ts=5.0), event(ts=2.0))))
        assert verify_main([str(path)]) == 1
        assert "TRC001" in capsys.readouterr().out

    def test_warnings_need_strict(self, tmp_path, capsys):
        path = tmp_path / "warn.trace.json"
        path.write_text(json.dumps(payload(
            event(name="q", ph="C", ts=3.0, value=1),
            event(name="q", ph="C", ts=3.0, value=0),
        )))
        assert verify_main([str(path)]) == 0
        assert verify_main([str(path), "--strict"]) == 1
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps(payload(event(ts=-1.0))))
        assert verify_main([str(path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 1
        assert report["findings"][0]["code"] == "TRC005"

    def test_unreadable_file(self, tmp_path, capsys):
        path = tmp_path / "nope.trace.json"
        assert verify_main([str(path)]) == 2
        capsys.readouterr()


class TestAnalyzeSubcommand:
    def test_analyze_defaults_to_package_and_is_clean(self, capsys):
        assert cli_main(["analyze"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_analyze_flags_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    pass\n")
        assert cli_main(["analyze", str(bad)]) == 1
        assert "CSA004" in capsys.readouterr().out

    def test_analyze_with_trace(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        trace = tmp_path / "bad.trace.json"
        trace.write_text(json.dumps(payload(event(ts=5.0), event(ts=2.0))))
        assert cli_main(
            ["analyze", str(good), "--trace", str(trace)]
        ) == 1
        out = capsys.readouterr().out
        assert "TRC001" in out


# ---------------------------------------------------------------------------
# ordered_sum
# ---------------------------------------------------------------------------


class TestOrderedSum:
    def test_matches_builtin_sum_exactly(self):
        values = [0.1, 0.2, 0.3, 1e16, -1e16, 0.4]
        assert ordered_sum(values) == sum(values)

    def test_start_value(self):
        assert ordered_sum([1.0, 2.0], start=10.0) == 13.0

    def test_empty(self):
        assert ordered_sum([]) == 0.0

    def test_consumes_generators(self):
        assert ordered_sum(x * 0.5 for x in range(4)) == 3.0


def health_window(**overrides):
    window = {
        "window_index": 0,
        "measured_latency_us_per_byte": 24.0,
        "predicted_latency_us_per_byte": 20.0,
        "latency_residual_us_per_byte": 4.0,
        "measured_energy_uj_per_byte": 0.4,
        "predicted_energy_uj_per_byte": 0.35,
        "energy_residual_uj_per_byte": 0.05,
        "components": [
            {"kind": "path", "key": "c1",
             "residual_us_per_byte": 3.5, "score": 9.0},
        ],
        "unattributed_us_per_byte": 0.5,
        "violated": True,
        "anomalous": True,
        "attribution": {
            "kind": "path", "key": "c1", "score": 9.0,
            "residual_us_per_byte": 3.5, "confidence": 1.0,
        },
    }
    window.update(overrides)
    return window


def health_payload(*windows):
    return {
        "schema_version": 1,
        "label": "test",
        "board": "test board",
        "latency_constraint_us_per_byte": 33.0,
        "windows": list(windows) or [health_window()],
    }


class TestHealthInvariants:
    def test_clean_report_passes(self):
        assert verify_health(health_payload()) == []

    def test_hlt001_sum_mismatch(self):
        findings = verify_health(health_payload(
            health_window(unattributed_us_per_byte=2.0)
        ))
        assert [f.code for f in findings] == ["HLT001"]
        assert findings[0].severity == "error"

    def test_hlt002_phantom_attribution(self):
        bad = health_window()
        bad["attribution"] = dict(bad["attribution"], kind="retry", key="1")
        findings = verify_health(health_payload(bad))
        assert "HLT002" in [f.code for f in findings]

    def test_hlt002_unknown_path(self):
        bad = health_window()
        bad["components"][0]["key"] = "warp"
        bad["attribution"] = dict(bad["attribution"], key="warp")
        findings = verify_health(health_payload(bad))
        assert [f.code for f in findings] == ["HLT002"]

    def test_hlt002_negative_stage_index(self):
        bad = health_window()
        bad["components"][0] = {"kind": "retry", "key": "-1",
                                "residual_us_per_byte": 3.5, "score": 9.0}
        bad["attribution"] = dict(bad["attribution"], kind="retry",
                                  key="-1")
        findings = verify_health(health_payload(bad))
        assert [f.code for f in findings] == ["HLT002"]

    def test_hlt003_nonfinite_skips_arithmetic(self):
        findings = verify_health(health_payload(health_window(
            latency_residual_us_per_byte=float("inf"),
            unattributed_us_per_byte=2.0,
        )))
        # HLT003 fires; HLT001 is withheld on the same window because
        # comparing against a non-finite residual is meaningless
        assert [f.code for f in findings] == ["HLT003"]

    def test_verify_cli_autodetects_health_payload(self, tmp_path, capsys):
        good = tmp_path / "health.json"
        good.write_text(json.dumps(health_payload()))
        assert verify_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(health_payload(
            health_window(unattributed_us_per_byte=2.0)
        )))
        assert verify_main([str(bad)]) == 1
        assert "HLT001" in capsys.readouterr().out
