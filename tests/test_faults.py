"""Fault-plan model: validation, schedules, fingerprints, adapters."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.model import (
    BatchCorruption,
    CoreFailure,
    CoreStall,
    DvfsThrottle,
    FaultPlan,
    InterconnectDegradation,
    corruption_schedule,
)
from repro.runtime.executor import ExecutionConfig, FaultSpec
from repro.simcore.boards import rk3399
from repro.simcore.interconnect import Path


class TestEventValidation:
    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreFailure(core_id=4, at_batch=-1)

    def test_negative_repetition_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsThrottle(
                core_id=4, at_batch=1, frequency_mhz=600.0, repetition=-2
            )

    def test_negative_reroute_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreFailure(core_id=4, at_batch=1, reroute_penalty=-0.1)

    def test_nonpositive_stall_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreStall(core_id=4, at_batch=1, stall_us=0.0)

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectDegradation(at_batch=1, path="c9", factor=2.0)

    def test_speedup_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectDegradation(at_batch=1, path="c1", factor=0.5)

    def test_corruption_bounds(self):
        with pytest.raises(ConfigurationError):
            BatchCorruption(probability=1.5)
        with pytest.raises(ConfigurationError):
            BatchCorruption(probability=0.5, from_batch=3, until_batch=3)
        with pytest.raises(ConfigurationError):
            BatchCorruption(probability=0.5, max_retries=0)
        with pytest.raises(ConfigurationError):
            BatchCorruption(
                probability=0.5, backoff_us=100.0, backoff_cap_us=50.0
            )

    def test_non_event_rejected_by_plan(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(events=("not-an-event",))


class TestSchedules:
    def test_schedule_keyed_by_completed_batches(self):
        plan = FaultPlan(events=(
            CoreFailure(core_id=4, at_batch=3),
            CoreStall(core_id=0, at_batch=3, stall_us=10.0),
            DvfsThrottle(core_id=5, at_batch=7, frequency_mhz=600.0),
        ))
        schedule = plan.schedule_for(0)
        assert sorted(schedule) == [3, 7]
        assert len(schedule[3]) == 2

    def test_repetition_filtering(self):
        plan = FaultPlan(events=(
            CoreFailure(core_id=4, at_batch=3, repetition=1),
            DvfsThrottle(core_id=5, at_batch=5, frequency_mhz=600.0),
        ))
        assert sorted(plan.schedule_for(0)) == [5]
        assert sorted(plan.schedule_for(1)) == [3, 5]

    def test_corruption_excluded_from_boundary_schedule(self):
        plan = FaultPlan(events=(BatchCorruption(probability=1.0),))
        assert plan.schedule_for(0) == {}
        assert plan.corruptions(0) == plan.events

    def test_at_batch_zero_never_fires(self):
        # Legacy FaultSpec compared after incrementing the completion
        # counter, so a key of 0 is unreachable; schedule_for keeps the
        # key and the executor's counter (starting at 1) skips it.
        plan = FaultPlan(events=(CoreFailure(core_id=4, at_batch=0),))
        assert sorted(plan.schedule_for(0)) == [0]


class TestCorruptionSchedule:
    def test_deterministic_per_seed(self):
        plan = FaultPlan(
            events=(BatchCorruption(probability=0.5),), seed=7
        )
        first = corruption_schedule(plan, 0, 50)
        second = corruption_schedule(plan, 0, 50)
        assert first == second
        assert first  # p=0.5 over 50 batches: some corruption expected

    def test_seed_and_repetition_change_outcomes(self):
        base = FaultPlan(events=(BatchCorruption(probability=0.5),), seed=7)
        other = FaultPlan(events=(BatchCorruption(probability=0.5),), seed=8)
        assert corruption_schedule(base, 0, 50) != corruption_schedule(
            other, 0, 50
        )
        assert corruption_schedule(base, 0, 50) != corruption_schedule(
            base, 1, 50
        )

    def test_range_respected(self):
        plan = FaultPlan(events=(
            BatchCorruption(probability=1.0, from_batch=2, until_batch=4),
        ))
        schedule = corruption_schedule(plan, 0, 10)
        assert sorted(schedule) == [2, 3]
        for entry in schedule.values():
            assert entry.exhausted
            assert entry.attempts == 3

    def test_backoff_capped_exponential(self):
        plan = FaultPlan(events=(
            BatchCorruption(
                probability=1.0, max_retries=4,
                backoff_us=200.0, backoff_cap_us=500.0,
            ),
        ))
        entry = corruption_schedule(plan, 0, 1)[0]
        assert entry.backoff_us == (200.0, 400.0, 500.0, 500.0)

    def test_empty_plan_is_noop(self):
        assert corruption_schedule(FaultPlan(), 0, 10) == {}


class TestFingerprint:
    def test_separates_plans(self):
        empty = FaultPlan()
        failure = FaultPlan(events=(CoreFailure(core_id=4, at_batch=3),))
        reseeded = FaultPlan(
            events=(CoreFailure(core_id=4, at_batch=3),), seed=1
        )
        prints = {p.fingerprint() for p in (empty, failure, reseeded)}
        assert len(prints) == 3

    def test_stable_across_calls(self):
        plan = FaultPlan(events=(CoreFailure(core_id=4, at_batch=3),))
        assert plan.fingerprint() == plan.fingerprint()


class TestInterconnectDegraded:
    def test_scales_costs(self):
        spec = rk3399().interconnect
        worse = spec.degraded(Path.C1, 4.0)
        assert worse.unit_cost(Path.C1) == pytest.approx(
            4.0 * spec.unit_cost(Path.C1)
        )
        assert worse.message_overhead(Path.C1) == pytest.approx(
            4.0 * spec.message_overhead(Path.C1)
        )
        assert worse.message_energy(Path.C1) == pytest.approx(
            4.0 * spec.message_energy(Path.C1)
        )
        # untouched paths stay identical
        assert worse.unit_cost(Path.C0) == spec.unit_cost(Path.C0)

    def test_local_rejected(self):
        with pytest.raises(ConfigurationError):
            rk3399().interconnect.degraded(Path.LOCAL, 2.0)

    def test_speedup_rejected(self):
        with pytest.raises(ConfigurationError):
            rk3399().interconnect.degraded(Path.C1, 0.5)


class TestFaultSpecAdapter:
    def test_legacy_fault_becomes_plan(self):
        with pytest.deprecated_call():
            config = ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                fault=FaultSpec(core_id=4, at_batch=3, frequency_mhz=600.0),
            )
        assert config.fault_plan is not None
        (event,) = config.fault_plan.events
        assert isinstance(event, DvfsThrottle)
        assert (event.core_id, event.at_batch, event.frequency_mhz) == (
            4, 3, 600.0
        )

    def test_matching_fault_and_plan_tolerated(self):
        # dataclasses.replace() re-runs __post_init__ with both fields
        # populated; equality must not raise.
        import dataclasses
        with pytest.deprecated_call():
            config = ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                fault=FaultSpec(core_id=4, at_batch=3, frequency_mhz=600.0),
            )
        clone = dataclasses.replace(config, seed=config.seed + 1)
        assert clone.fault_plan == config.fault_plan

    def test_disagreeing_fault_and_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                fault=FaultSpec(core_id=4, at_batch=3, frequency_mhz=600.0),
                fault_plan=FaultPlan(
                    events=(CoreFailure(core_id=4, at_batch=3),)
                ),
            )

    def test_no_fault_no_warning(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = ExecutionConfig(latency_constraint_us_per_byte=26.0)
        assert config.fault is None and config.fault_plan is None
