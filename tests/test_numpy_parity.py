"""Numpy fast paths must be bit-identical to their scalar references.

The cost model (``repro.core.cost_model``) and the lz4 encoder
(``repro.compression.lz4``) each carry an optional numpy fast path with
a pure-Python fallback (the package must run without numpy). These
tests force the fallback by monkeypatching the modules' ``_np`` handles
and assert the two paths agree bit for bit — on randomized plans and
randomized payloads, not just the curated fixtures — so the fast paths
can never drift from the reference semantics.
"""

import random

import pytest

import repro.compression.lz4 as lz4_module
import repro.core.cost_model as cost_model_module
from repro.compression.lz4 import Lz4
from repro.core.plan import SchedulingPlan

pytestmark = pytest.mark.skipif(
    cost_model_module._np is None, reason="numpy not installed"
)


@pytest.fixture(scope="module")
def context():
    from repro.compression import get_codec
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    return WorkloadContext.build(rk3399(), profile, 26.0)


def _random_plans(context, count, seed):
    """Random (possibly replicated, possibly colocated) plans."""
    rng = random.Random(seed)
    graph = context.fine_graph
    core_ids = [core.core_id for core in context.board.cores]
    plans = []
    for _ in range(count):
        assignments = tuple(
            tuple(
                rng.choice(core_ids)
                for _ in range(rng.randint(1, min(3, len(core_ids))))
            )
            for _ in range(graph.stage_count)
        )
        plans.append(SchedulingPlan(graph=graph, assignments=assignments))
    return plans


class TestCostModelParity:
    def test_randomized_plans_scalar_equals_numpy(
        self, context, monkeypatch
    ):
        """evaluate() with and without numpy gives identical estimates."""
        plans = _random_plans(context, count=25, seed=20260808)

        fast_model = context.cost_model(context.fine_graph)
        fast = [fast_model.evaluate(plan) for plan in plans]

        monkeypatch.setattr(cost_model_module, "_np", None)
        scalar_model = context.cost_model(context.fine_graph)
        scalar = [scalar_model.evaluate(plan) for plan in plans]

        for fast_estimate, scalar_estimate in zip(fast, scalar):
            assert fast_estimate == scalar_estimate

    def test_evaluate_matches_internal_scalar_path(self, context):
        """The retained _evaluate_scalar reference agrees with evaluate()."""
        model = context.cost_model(context.fine_graph)
        for plan in _random_plans(context, count=10, seed=77):
            assert model.evaluate(plan) == model._evaluate_scalar(plan)

    def test_per_task_estimates_identical(self, context, monkeypatch):
        fast_model = context.cost_model(context.fine_graph)
        graph = fast_model.graph
        cores = [core.core_id for core in context.board.cores]
        fast = [
            (
                fast_model.compute_latency(stage, core, replicas),
                fast_model.task_energy(stage, core, replicas),
            )
            for stage in range(graph.stage_count)
            for core in cores
            for replicas in (1, 2)
        ]
        monkeypatch.setattr(cost_model_module, "_np", None)
        scalar_model = context.cost_model(context.fine_graph)
        scalar = [
            (
                scalar_model.compute_latency(stage, core, replicas),
                scalar_model.task_energy(stage, core, replicas),
            )
            for stage in range(graph.stage_count)
            for core in cores
            for replicas in (1, 2)
        ]
        assert fast == scalar


class TestLz4Parity:
    def _payloads(self):
        rng = random.Random(13)
        payloads = []
        for size in (0, 5, 64, 1024, 16384):
            payloads.append(bytes(rng.randrange(256) for _ in range(size)))
            payloads.append((b"sensor-0042;" * (size // 12 + 1))[:size])
        return payloads

    def test_vectorized_hash_path_byte_identical(self, monkeypatch):
        codecs = [Lz4(), Lz4(index_bits=8, max_search_length=32)]
        for data in self._payloads():
            for codec in codecs:
                fast = codec.compress(data)
                monkeypatch.setattr(lz4_module, "_np", None)
                scalar = codec.compress(data)
                monkeypatch.undo()
                assert fast.payload == scalar.payload
                assert fast.counters == scalar.counters
                assert fast.step_costs == scalar.step_costs
                assert codec.decompress(fast.payload) == data
