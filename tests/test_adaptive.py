"""Incremental PID and feedback regulation (§V-D, Eq 8)."""

import pytest

from repro.core.adaptive import FeedbackRegulator, IncrementalPID
from repro.errors import ConfigurationError


class TestIncrementalPID:
    def test_eq8_first_step(self):
        pid = IncrementalPID(p=0.1, i=0.85, d=0.05)
        # With e_{k-1} = e_{k-2} = 0: δ = (P + I + D)·e.
        assert pid.step(1.0) == pytest.approx(1.0)

    def test_eq8_second_step(self):
        pid = IncrementalPID(p=0.1, i=0.85, d=0.05)
        pid.step(1.0)
        # δ = P(e2-e1) + I·e2 + D(e2 - 2e1 + e0)
        expected = 0.1 * (2.0 - 1.0) + 0.85 * 2.0 + 0.05 * (2.0 - 2.0 + 0.0)
        assert pid.step(2.0) == pytest.approx(expected)

    def test_eq8_third_step_uses_both_histories(self):
        pid = IncrementalPID(p=0.1, i=0.85, d=0.05)
        pid.step(1.0)
        pid.step(2.0)
        expected = 0.1 * (3.0 - 2.0) + 0.85 * 3.0 + 0.05 * (3.0 - 4.0 + 1.0)
        assert pid.step(3.0) == pytest.approx(expected)

    def test_zero_error_zero_delta(self):
        pid = IncrementalPID()
        pid.step(0.0)
        assert pid.step(0.0) == 0.0

    def test_observation_counter(self):
        pid = IncrementalPID()
        assert pid.observations == 0
        pid.step(1.0)
        pid.step(1.0)
        assert pid.observations == 2
        pid.reset()
        assert pid.observations == 0

    def test_integral_dominates_defaults(self):
        """The paper's PSO-tuned gains are I-heavy: a constant error
        produces a steady corrective push."""
        pid = IncrementalPID()
        deltas = [pid.step(1.0) for _ in range(5)]
        assert all(delta >= 0.75 for delta in deltas[1:])

    def test_converges_on_simple_plant(self):
        """Closed loop: x tracks a target through the controller."""
        pid = IncrementalPID()
        x, target = 1.0, 2.0
        for _ in range(12):
            x += pid.step(target - x)
        assert x == pytest.approx(target, rel=0.05)


@pytest.fixture
def regulator():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    context = WorkloadContext.build(rk3399(), profile, 26.0)
    return FeedbackRegulator(context.cost_model(context.fine_graph))


class TestFeedbackRegulator:
    def test_initial_plan_scheduled(self, regulator):
        assert regulator.plan is not None
        assert regulator.estimate.feasible

    def test_accurate_measurement_no_calibration(self, regulator):
        estimated = regulator.estimate.latency_us_per_byte
        event = regulator.observe(0, estimated * 1.02)
        assert not event.calibrating
        assert not event.replanned
        assert event.latency_scale == 1.0

    def test_drift_triggers_calibration(self, regulator):
        estimated = regulator.estimate.latency_us_per_byte
        event = regulator.observe(0, estimated * 1.4)
        assert event.calibrating
        assert event.latency_scale > 1.0

    def test_calibration_needs_three_observations(self, regulator):
        """Eq 8 references e_k, e_{k-1}, e_{k-2}; replanning waits for
        at least three controller steps."""
        estimated = regulator.estimate.latency_us_per_byte
        measured = estimated * 1.4
        replan_batch = None
        for batch in range(8):
            event = regulator.observe(batch, measured)
            if event.replanned:
                replan_batch = batch
                break
        assert replan_batch is not None
        assert replan_batch >= 2

    def test_model_converges_to_measurement(self, regulator):
        estimated = regulator.estimate.latency_us_per_byte
        measured = estimated * 1.4
        for batch in range(8):
            event = regulator.observe(batch, measured)
            if event.replanned:
                break
        # After calibration the (pre-replan) model tracked the plant.
        assert regulator.model.latency_scale[0] == pytest.approx(1.4, rel=0.15)

    def test_events_recorded(self, regulator):
        estimated = regulator.estimate.latency_us_per_byte
        regulator.observe(0, estimated)
        regulator.observe(1, estimated * 1.5)
        assert len(regulator.events) == 2
        assert regulator.events[1].relative_error > 0.4

    def test_invalid_threshold_rejected(self, regulator):
        with pytest.raises(ConfigurationError):
            FeedbackRegulator(regulator.model, error_threshold=0.0)
