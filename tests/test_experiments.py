"""Every experiment regenerates its table/figure with the paper's shape.

These are the reproduction's acceptance tests (DESIGN.md's expected
shapes), run at reduced repetition counts on a shared small harness.
"""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.exp_endtoend import (
    fig05_state_sharing,
    fig07_energy,
    fig08_clcv,
    fig09_adaptivity,
)
from repro.bench.exp_microbench import (
    fig03_roofline,
    tab02_interconnect,
    tab04_task_comparison,
    tab05_model_accuracy,
)
from repro.bench.exp_sensitivity import (
    fig10_latency_constraint,
    fig11_batch_size,
    fig13_symbol_duplication,
    fig14_dynamic_range,
)
from repro.bench.exp_system import (
    fig15_static_frequency,
    fig16_dvfs,
    fig17_breakdown,
)
from repro.core.baselines import MECHANISM_NAMES

REPS = 6


class TestRegistry:
    def test_registry_size(self):
        # 16 paper items + 5 reproduction ablations + adaptive loop
        # + chaos recovery + the fork-join decompression grid
        # + the fleet capacity sweep.
        assert len(EXPERIMENTS) == 25

    def test_every_paper_item_present(self):
        expected = {
            "fig3", "tab2", "fig5", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "tab4", "tab5",
        }
        assert expected <= set(EXPERIMENTS)
        extras = (
            set(EXPERIMENTS) - expected
            - {"adaptive", "chaos", "dag", "fleet"}
        )
        assert all(name.startswith("abl_") for name in extras)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig3:
    def test_roofline_rows_and_markers(self, small_harness):
        result = fig03_roofline(small_harness)
        assert result.headers[0] == "kappa"
        assert len(result.rows) > 10
        markers = result.extras["step_kappas"]
        assert markers["s1"] > markers["s2"] > markers["s0"]

    def test_little_eta_dip_visible(self, small_harness):
        result = fig03_roofline(small_harness, kappa_step=10)
        kappas = [row[0] for row in result.rows]
        little = [float(row[2]) for row in result.rows]
        at = {k: v for k, v in zip(kappas, little)}
        assert at[35] > at[65]


class TestTab2:
    def test_paper_values(self, small_harness):
        result = tab02_interconnect(small_harness)
        assert len(result.rows) == 3
        bandwidths = [float(row[1].split()[0]) for row in result.rows]
        assert bandwidths[0] > bandwidths[1] > bandwidths[2]
        latencies = [float(row[2].split()[0]) for row in result.rows]
        assert latencies[0] < latencies[1] < latencies[2]


class TestFig5:
    def test_private_state_wins(self, small_harness):
        result = fig05_state_sharing(small_harness, repetitions=REPS)
        assert result.extras["energy_saving"] > 0.15
        assert result.extras["latency_saving"] > 0.3
        assert 0.0 < result.extras["ratio_loss"] < 0.3


class TestFig7And8:
    def test_cstream_always_lowest_energy(self, small_harness):
        """CStream is lowest on every workload (a ~2% statistical
        tolerance covers borderline-feasible plans that a baseline runs
        and gets lucky on while CStream conservatively rejects them)."""
        result = fig07_energy(small_harness, repetitions=REPS)
        for row in result.rows:
            energies = [float(cell) for cell in row[1:]]
            assert energies[0] <= min(energies) * 1.02, row

    def test_meaningful_savings(self, small_harness):
        result = fig07_energy(small_harness, repetitions=REPS)
        assert max(result.extras["savings"].values()) > 0.4

    def test_cstream_never_violates(self, small_harness):
        result = fig08_clcv(small_harness, repetitions=REPS)
        for row in result.rows:
            assert float(row[1]) == 0.0, row

    def test_little_only_violates_somewhere(self, small_harness):
        result = fig08_clcv(small_harness, repetitions=REPS)
        lo = [float(row[-1]) for row in result.rows]
        assert max(lo) > 0.5


class TestFig9:
    def test_adaptation_story(self, small_harness):
        result = fig09_adaptivity(small_harness)
        without = result.extras["without"]
        with_reg = result.extras["with"]
        # Before the change neither violates.
        assert not any(b["violated"] for b in without[:5])
        # After the change the unregulated run keeps violating.
        assert all(b["violated"] for b in without[6:])
        # The regulated run recovers within a few batches...
        recovered = [b["batch"] for b in with_reg if b["batch"] >= 5
                     and not b["violated"]]
        assert recovered and min(recovered) <= 9
        # ...and stays recovered at higher energy than before the change.
        steady = [b for b in with_reg if b["batch"] >= min(recovered)]
        assert all(not b["violated"] for b in steady)
        before = max(b["energy"] for b in with_reg[:5])
        assert all(b["energy"] > before for b in steady)


class TestFig10:
    def test_cstream_energy_decreases_with_looser_lset(self, small_harness):
        result = fig10_latency_constraint(small_harness, repetitions=REPS)
        values = result.extras["values"]
        constraints = sorted({key[0] for key in values if key[2] == "E"})
        series = [values[(c, "CStream", "E")] for c in constraints]
        assert series[-1] <= series[0]
        assert all(values[(c, "CStream", "CLCV")] == 0 for c in constraints)

    def test_cs_fails_tightest(self, small_harness):
        result = fig10_latency_constraint(small_harness, repetitions=REPS)
        values = result.extras["values"]
        assert values[(11.0, "CS", "CLCV")] > 0.5
        assert values[(26.0, "CS", "CLCV")] == 0.0


class TestFig11:
    def test_energy_flat_for_large_batches(self, small_harness):
        result = fig11_batch_size(small_harness, repetitions=REPS)
        values = result.extras["values"]
        large = [values[(b, "CStream")] for b in (8192, 32768, 131072)]
        assert max(large) - min(large) < 0.05 * min(large)

    def test_tiny_batches_cost_more(self, small_harness):
        result = fig11_batch_size(
            small_harness, repetitions=REPS, batch_sizes=(512, 65536)
        )
        values = result.extras["values"]
        assert values[(512, "CStream")] > values[(65536, "CStream")]


class TestFig13:
    def test_bo_gains_with_duplication(self, small_harness):
        result = fig13_symbol_duplication(small_harness, repetitions=REPS)
        values = result.extras["values"]
        assert values[(0.8, "BO")] < values[(0.0, "BO")]

    def test_cstream_always_best(self, small_harness):
        result = fig13_symbol_duplication(small_harness, repetitions=REPS)
        for row in result.rows:
            energies = [float(cell) for cell in row[1:]]
            assert energies[0] <= min(energies) * 1.05


class TestFig14:
    def test_energy_grows_with_range(self, small_harness):
        result = fig14_dynamic_range(small_harness, repetitions=REPS)
        values = result.extras["values"]
        assert values[("2^30", "CStream")] > values[("2^4", "CStream")]

    def test_cstream_never_above_alternatives(self, small_harness):
        result = fig14_dynamic_range(small_harness, repetitions=REPS)
        values = result.extras["values"]
        labels = {key[0] for key in values}
        for label in labels:
            others = [
                values[(label, m)] for m in MECHANISM_NAMES if m != "CStream"
            ]
            assert values[(label, "CStream")] <= min(others) * 1.05


class TestFig15:
    def test_lowest_frequency_not_lowest_energy(self, small_harness):
        result = fig15_static_frequency(small_harness, repetitions=REPS)
        values = result.extras["values"]
        assert values[("B600/L600", "CStream")] > values[
            ("B1008/L1008", "CStream")
        ]

    def test_cstream_best_at_every_frequency(self, small_harness):
        result = fig15_static_frequency(small_harness, repetitions=REPS)
        for row in result.rows:
            energies = [float(cell) for cell in row[1:]]
            assert energies[0] <= min(energies) * 1.001, row


class TestFig16:
    def test_governor_ordering(self, small_harness):
        result = fig16_dvfs(small_harness, repetitions=REPS)
        values = result.extras["values"]
        conservative = values[("conservative", "CStream", "E")]
        default = values[("default", "CStream", "E")]
        ondemand = values[("ondemand", "CStream", "E")]
        assert conservative < default < ondemand

    def test_cstream_zero_clcv_all_governors(self, small_harness):
        result = fig16_dvfs(small_harness, repetitions=REPS)
        values = result.extras["values"]
        for governor in ("default", "conservative", "ondemand"):
            assert values[(governor, "CStream", "CLCV")] == 0.0


class TestFig17:
    def test_breakdown_ordering(self, small_harness):
        result = fig17_breakdown(small_harness, repetitions=REPS)
        values = result.extras["values"]
        assert values["simple"]["E"] > values["+decom."]["E"]
        assert values["+decom."]["E"] > values["+asy-comp."]["E"]
        assert values["+asy-comp."]["CLCV"] > 0.5
        assert values["+asy-comm."]["CLCV"] == 0.0
        # Full CStream lands near the comp-aware energy, without the
        # violations.
        assert values["+asy-comm."]["E"] < values["+decom."]["E"]


class TestTab4:
    def test_rows_and_kappa_anchors(self, small_harness):
        result = tab04_task_comparison(small_harness)
        names = [row[0] for row in result.rows]
        assert names == ["t0", "t1", "t_all", "t_re x2"]
        kappa = {row[0]: float(row[1]) for row in result.rows}
        assert 280 < kappa["t0"] < 360
        assert 90 < kappa["t1"] < 115
        assert kappa["t1"] < kappa["t_all"] < kappa["t0"]

    def test_replication_overhead_visible(self, small_harness):
        result = tab04_task_comparison(small_harness)
        by_name = {row[0]: row for row in result.rows}
        # t_re×2 halves latency but costs more total energy than t_all.
        assert float(by_name["t_re x2"][2]) < float(by_name["t_all"][2])
        assert float(by_name["t_re x2"][4]) > float(by_name["t_all"][4])


class TestTab5:
    def test_model_accuracy(self, small_harness):
        result = tab05_model_accuracy(small_harness, repetitions=REPS)
        for codec, extras in result.extras.items():
            assert extras["relative_error_latency"] < 0.15, codec
            assert extras["relative_error_energy"] < 0.20, codec
