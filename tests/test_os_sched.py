"""EAS-like OS placement simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simcore.boards import rk3399
from repro.simcore.os_sched import (
    OS_CONTEXT_SWITCHES_PER_KB,
    eas_place,
)


@pytest.fixture
def board():
    return rk3399()


class TestEasPlace:
    def test_places_all_workers(self, board):
        placement = eas_place(board, 6, np.random.default_rng(0))
        assert len(placement) == 6
        assert set(placement) <= set(board.core_ids)

    def test_prefers_little_cores(self, board):
        placement = eas_place(board, 4, np.random.default_rng(0))
        little = set(board.little_core_ids)
        assert all(core in little for core in placement)

    def test_packs_two_per_little_core(self, board):
        """The black-box utilization estimate lets EAS co-locate two
        workers per little core — the paper's over-consolidation."""
        placement = eas_place(board, 6, np.random.default_rng(0))
        little = set(board.little_core_ids)
        little_placed = [c for c in placement if c in little]
        counts = {c: little_placed.count(c) for c in set(little_placed)}
        assert max(counts.values()) == 2

    def test_spills_when_everything_full(self, board):
        placement = eas_place(board, 20, np.random.default_rng(0))
        assert len(placement) == 20

    def test_randomized_across_runs(self, board):
        first = eas_place(board, 4, np.random.default_rng(1))
        different = [
            eas_place(board, 4, np.random.default_rng(seed)) for seed in range(10)
        ]
        assert any(placement != first for placement in different)

    def test_deterministic_per_rng_state(self, board):
        assert eas_place(board, 5, np.random.default_rng(3)) == eas_place(
            board, 5, np.random.default_rng(3)
        )

    def test_zero_workers_rejected(self, board):
        with pytest.raises(ConfigurationError):
            eas_place(board, 0, np.random.default_rng(0))


class TestConstants:
    def test_context_switch_rate_matches_paper(self):
        # ~60 000 context switches per compressed MB.
        assert OS_CONTEXT_SWITCHES_PER_KB * 1024 == pytest.approx(
            60_000, rel=0.05
        )
