"""Segmented least-squares roofline fitting (Eq 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roofline import fit_piecewise
from repro.errors import ProfilingError
from repro.simcore.boards import rk3399
from repro.simcore.hardware import CoreType


class TestExactRecovery:
    def test_single_line(self):
        x = list(range(1, 20))
        y = [2.0 * k + 1.0 for k in x]
        fit = fit_piecewise(x, y, segments=1)
        assert fit.slopes[0] == pytest.approx(2.0)
        assert fit.intercepts[0] == pytest.approx(1.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_two_segments_with_kink(self):
        x = list(range(1, 31))
        y = [float(k) if k <= 15 else 15.0 + 0.1 * (k - 15) for k in x]
        fit = fit_piecewise(x, y, segments=2)
        assert fit.residual == pytest.approx(0.0, abs=1e-6)
        # The kink point lies on both lines, so either split is exact.
        assert fit.boundaries[0] in (14.0, 15.0)

    def test_noiseless_rk3399_little_eta(self):
        """The DP recovers the little core's true four segments."""
        little = rk3399().cores_of_type(CoreType.LITTLE)[0]
        kappas = list(range(2, 500, 2))
        values = [little.eta.value(k) for k in kappas]
        fit = fit_piecewise(kappas, values, segments=4)
        # Kinks at 30 and 70 recovered within grid resolution.
        assert abs(fit.boundaries[0] - 30) <= 2
        assert abs(fit.boundaries[1] - 70) <= 2
        for kappa in (10, 28, 31, 50, 69, 71, 150, 400):
            assert fit.value(kappa) == pytest.approx(
                little.eta.value(kappa), rel=0.02
            )

    def test_residual_decreases_with_segments(self):
        x = list(range(1, 50))
        y = [np.sqrt(k) for k in x]
        residuals = [
            fit_piecewise(x, y, segments=s).residual for s in (1, 2, 4)
        ]
        assert residuals[0] >= residuals[1] >= residuals[2]


class TestEdgeCases:
    def test_too_few_samples_rejected(self):
        with pytest.raises(ProfilingError):
            fit_piecewise([1.0], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ProfilingError):
            fit_piecewise([1.0, 2.0], [1.0])

    def test_two_points_fit_one_segment(self):
        fit = fit_piecewise([1.0, 2.0], [3.0, 5.0])
        assert fit.segment_count == 1
        assert fit.value(1.5) == pytest.approx(4.0)

    def test_segments_clamped_to_data(self):
        fit = fit_piecewise([1, 2, 3, 4], [1, 2, 3, 4], segments=4)
        assert fit.segment_count <= 2

    def test_unsorted_input_handled(self):
        fit = fit_piecewise([3, 1, 2], [6, 2, 4], segments=1)
        assert fit.value(2.0) == pytest.approx(4.0)

    def test_clamping_below_and_above(self):
        fit = fit_piecewise([10, 20, 30, 40], [1, 2, 3, 4], segments=1)
        assert fit.value(50.0) == fit.value(40.0)  # roof
        assert fit.value(0.0) <= fit.value(10.0)

    def test_negative_kappa_rejected(self):
        fit = fit_piecewise([1, 2, 3], [1, 2, 3], segments=1)
        with pytest.raises(ValueError):
            fit.value(-1.0)

    def test_value_never_nonpositive(self):
        fit = fit_piecewise([1, 2, 3, 4], [4, 3, 2, 1], segments=1)
        assert fit.value(0.0) > 0


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=500),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=4,
            max_size=40,
            unique_by=lambda pair: round(pair[0], 3),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_fit_is_finite_everywhere(self, points):
        kappas = [p[0] for p in points]
        values = [p[1] for p in points]
        fit = fit_piecewise(kappas, values)
        for kappa in np.linspace(0, 600, 50):
            assert np.isfinite(fit.value(float(kappa)))
            assert fit.value(float(kappa)) > 0

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_perfect_line_always_recovered(self, segments):
        x = list(range(1, 25))
        y = [0.5 * k + 2 for k in x]
        fit = fit_piecewise(x, y, segments=segments)
        assert fit.value(12.0) == pytest.approx(8.0, rel=0.01)
