"""Cost model (Eqs 4-7): per-task estimates and plan evaluation."""

import pytest

from repro.core.cost_model import CostModel, calibrate_curves
from repro.core.plan import SchedulingPlan
from repro.errors import ConfigurationError
from repro.simcore.hardware import CoreType

BIG, LITTLE = 4, 0


@pytest.fixture(scope="module")
def model(tcomp32_rovio_context):
    context = tcomp32_rovio_context
    return context.cost_model(context.fine_graph)


# conftest fixtures are function-scoped per module here; re-export.
@pytest.fixture(scope="module")
def tcomp32_rovio_context(request):
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    return WorkloadContext.build(rk3399(), profile, 26.0)


class TestCalibration:
    def test_curves_for_both_core_types(self):
        from repro.simcore.boards import rk3399

        curves = calibrate_curves(rk3399())
        assert CoreType.BIG in curves.eta
        assert CoreType.LITTLE in curves.zeta

    def test_invalid_constraint_rejected(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        with pytest.raises(ConfigurationError):
            CostModel(
                board=context.board,
                graph=context.fine_graph,
                profile=context.profile,
                curves=context.curves,
                communication=context.communication,
                latency_constraint_us_per_byte=0.0,
            )

    def test_invalid_guard_band_rejected(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        with pytest.raises(ConfigurationError):
            context.cost_model(context.fine_graph, guard_band=1.5)


class TestComputeLatency:
    def test_eq6_linear_in_instructions(self, model):
        """Twice the replicas, half the per-replica latency (mod the
        replication overhead)."""
        single = model.compute_latency(0, BIG, replicas=1)
        double = model.compute_latency(0, BIG, replicas=2)
        # Latency overhead per extra replica is 7% (energy's is 27%).
        assert double == pytest.approx(single / 2 * 1.07, rel=0.01)

    def test_big_faster_for_high_kappa(self, model):
        assert model.compute_latency(0, BIG) < model.compute_latency(0, LITTLE)

    def test_latency_scale_applies(self, model):
        base = model.compute_latency(0, BIG)
        model.latency_scale[0] = 2.0
        try:
            assert model.compute_latency(0, BIG) == pytest.approx(2 * base)
        finally:
            model.latency_scale.clear()

    def test_anchor_t0_on_big(self, model):
        # Paper Table IV: t0 ~15 µs/B on a big core.
        assert model.compute_latency(0, BIG) == pytest.approx(15.0, rel=0.12)

    def test_anchor_t1_on_little(self, model):
        # Paper Table IV: t1 ~21.7 µs/B on a little core.
        assert model.compute_latency(1, LITTLE) == pytest.approx(
            21.7, rel=0.12
        )


class TestTaskEnergy:
    def test_eq4_energy_is_instructions_over_zeta(self, model):
        """e = η·l/ζ reduces to instructions/ζ."""
        kappa = model.stage_kappa(1)
        expected = (
            model.stage_instructions(1)
            / model._zeta(kappa, LITTLE)
            / model.profile.batch_size_bytes
        )
        assert model.task_energy(1, LITTLE) == pytest.approx(expected)

    def test_t1_cheaper_on_little(self, model):
        assert model.task_energy(1, LITTLE) < model.task_energy(1, BIG)

    def test_replication_energy_overhead(self, model):
        # Each of two replicas does half the work at a 27 % premium.
        single = model.task_energy(1, LITTLE, replicas=1)
        double = model.task_energy(1, LITTLE, replicas=2)
        assert double == pytest.approx(single * 1.27 / 2, rel=0.01)


class TestCommunicationLatency:
    def test_first_stage_free(self, model):
        assert model.communication_latency(0, BIG, (), 1) == 0.0

    def test_colocated_cluster_cheaper_than_cross(self, model):
        same_cluster = model.communication_latency(1, 1, (LITTLE,), 1)
        cross = model.communication_latency(1, 1, (BIG,), 1)
        assert same_cluster < cross

    def test_c2_dearer_than_c1(self, model):
        big_to_little = model.communication_latency(1, LITTLE, (BIG,), 1)
        little_to_big = model.communication_latency(1, BIG, (LITTLE,), 1)
        assert little_to_big > big_to_little

    def test_communication_blind_model_sees_zero(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        blind = context.cost_model(
            context.fine_graph, communication_aware=False
        )
        assert blind.communication_latency(1, LITTLE, (BIG,), 1) == 0.0

    def test_more_consumers_less_volume_each(self, model):
        one = model.communication_latency(1, LITTLE, (BIG,), 1)
        two = model.communication_latency(1, LITTLE, (BIG,), 2)
        assert two < one


class TestEvaluate:
    def plan(self, context, assignments):
        return SchedulingPlan(graph=context.fine_graph, assignments=assignments)

    def test_paper_optimal_plan(self, tcomp32_rovio_context, model):
        """t0@big + t1@little: the paper's Table IV 'right place'."""
        estimate = model.evaluate(
            self.plan(tcomp32_rovio_context, ((BIG,), (LITTLE,)))
        )
        assert estimate.feasible
        assert estimate.latency_us_per_byte == pytest.approx(24.9, rel=0.05)
        assert estimate.energy_uj_per_byte == pytest.approx(0.40, rel=0.08)

    def test_all_little_single_replica_infeasible(
        self, tcomp32_rovio_context, model
    ):
        estimate = model.evaluate(
            self.plan(tcomp32_rovio_context, ((LITTLE,), (1,)))
        )
        assert not estimate.feasible
        assert "exceeds budget" in estimate.infeasibility_reason

    def test_colocation_serializes(self, tcomp32_rovio_context, model):
        apart = model.evaluate(self.plan(tcomp32_rovio_context, ((4,), (5,))))
        together = model.evaluate(
            self.plan(tcomp32_rovio_context, ((4,), (4,)))
        )
        assert (
            together.latency_us_per_byte > apart.latency_us_per_byte
        )

    def test_energy_sums_over_tasks(self, tcomp32_rovio_context, model):
        estimate = model.evaluate(
            self.plan(tcomp32_rovio_context, ((BIG,), (LITTLE,)))
        )
        assert estimate.energy_uj_per_byte == pytest.approx(
            sum(t.energy_uj_per_byte for t in estimate.task_estimates)
        )

    def test_bottleneck_identifies_slowest(self, tcomp32_rovio_context, model):
        estimate = model.evaluate(
            self.plan(tcomp32_rovio_context, ((BIG,), (LITTLE,)))
        )
        bottleneck = estimate.bottleneck()
        assert bottleneck.l_us_per_byte == max(
            t.l_us_per_byte for t in estimate.task_estimates
        )

    def test_core_load_tracked(self, tcomp32_rovio_context, model):
        estimate = model.evaluate(
            self.plan(tcomp32_rovio_context, ((BIG,), (BIG,)))
        )
        assert estimate.core_load_us_per_byte[BIG] == pytest.approx(
            sum(t.l_comp_us_per_byte for t in estimate.task_estimates)
        )

    def test_foreign_graph_rejected(self, model):
        from repro.core.task import TaskGraph

        foreign = TaskGraph.coarse("tcomp32", ("s0", "s1", "s2"))
        with pytest.raises(ConfigurationError):
            model.evaluate(
                SchedulingPlan(graph=foreign, assignments=((0,),))
            )


class TestFrequencyAwarePlanning:
    def test_lower_frequency_higher_latency(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        slow = context.cost_model(
            context.fine_graph, frequency_map={BIG: 600.0}
        )
        fast = context.cost_model(context.fine_graph)
        assert slow.compute_latency(0, BIG) > fast.compute_latency(0, BIG)

    def test_unmapped_cores_at_max(self, tcomp32_rovio_context):
        context = tcomp32_rovio_context
        partial = context.cost_model(
            context.fine_graph, frequency_map={BIG: 600.0}
        )
        full = context.cost_model(context.fine_graph)
        assert partial.compute_latency(1, LITTLE) == pytest.approx(
            full.compute_latency(1, LITTLE)
        )
