"""Thermal-throttling fault injection."""

import pytest

from repro.core.plan import SchedulingPlan
from repro.errors import ConfigurationError
from repro.runtime.executor import (
    ExecutionConfig,
    FaultSpec,
    PipelineExecutor,
)


@pytest.fixture(scope="module")
def setup():
    from repro.core.baselines import WorkloadContext
    from repro.core.profiler import profile_workload
    from repro.compression import get_codec
    from repro.datasets import get_dataset
    from repro.simcore.boards import rk3399

    board = rk3399()
    profile = profile_workload(
        get_codec("tcomp32"), get_dataset("rovio"), 8192, batches=4
    )
    context = WorkloadContext.build(board, profile, 26.0)
    plan = SchedulingPlan(
        graph=context.fine_graph, assignments=((4,), (0,))
    )
    return board, profile, plan


def run(board, profile, plan, fault=None, batches=10):
    executor = PipelineExecutor(
        board,
        ExecutionConfig(
            latency_constraint_us_per_byte=26.0,
            repetitions=1,
            batches_per_repetition=batches,
            warmup_batches=2,
            noise_sigma=0.0,
            fault=fault,
        ),
    )
    per_batch = (list(profile.per_batch_step_costs) * batches)[:batches]
    return executor.run(plan, per_batch, profile.batch_size_bytes)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(core_id=4, at_batch=-1, frequency_mhz=600.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(core_id=4, at_batch=0, frequency_mhz=0.0)


class TestThrottling:
    def test_throttled_core_slows_pipeline(self, setup):
        board, profile, plan = setup
        healthy = run(board, profile, plan)
        faulty = run(
            board, profile, plan,
            fault=FaultSpec(core_id=4, at_batch=3, frequency_mhz=600.0),
        )
        assert (
            faulty.mean_latency_us_per_byte
            > healthy.mean_latency_us_per_byte
        )

    def test_early_batches_unaffected(self, setup):
        board, profile, plan = setup
        faulty = run(
            board, profile, plan,
            fault=FaultSpec(core_id=4, at_batch=6, frequency_mhz=600.0),
        )
        healthy = run(board, profile, plan)
        faulty_batches = faulty.repetitions[0].batches
        healthy_batches = healthy.repetitions[0].batches
        for index in range(1, 5):  # well before the cap propagates
            assert faulty_batches[index].latency_us_per_byte == (
                pytest.approx(
                    healthy_batches[index].latency_us_per_byte, rel=1e-6
                )
            )

    def test_fault_on_unused_core_harmless(self, setup):
        board, profile, plan = setup
        healthy = run(board, profile, plan)
        faulty = run(
            board, profile, plan,
            fault=FaultSpec(core_id=5, at_batch=2, frequency_mhz=600.0),
        )
        assert faulty.mean_latency_us_per_byte == pytest.approx(
            healthy.mean_latency_us_per_byte, rel=1e-6
        )

    def test_cap_never_raises_frequency(self, setup):
        """A 'cap' above the current frequency must change nothing."""
        board, profile, plan = setup
        healthy = run(board, profile, plan)
        capped_high = run(
            board, profile, plan,
            fault=FaultSpec(core_id=4, at_batch=2, frequency_mhz=1800.0),
        )
        assert capped_high.mean_latency_us_per_byte == pytest.approx(
            healthy.mean_latency_us_per_byte, rel=1e-6
        )


class TestFaultSpecDeprecation:
    def test_fault_kwarg_warns(self):
        with pytest.deprecated_call():
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                fault=FaultSpec(core_id=4, at_batch=3, frequency_mhz=600.0),
            )

    def test_legacy_fault_equivalent_to_fault_plan(self, setup):
        """The adapter must preserve byte-identical behaviour: a legacy
        ``fault=`` run and the explicit ``fault_plan=`` spelling of the
        same throttle produce the same numbers."""
        from repro.faults.model import DvfsThrottle, FaultPlan

        board, profile, plan = setup
        with pytest.deprecated_call():
            legacy = run(
                board, profile, plan,
                fault=FaultSpec(
                    core_id=4, at_batch=3, frequency_mhz=600.0
                ),
            )
        executor = PipelineExecutor(
            board,
            ExecutionConfig(
                latency_constraint_us_per_byte=26.0,
                repetitions=1,
                batches_per_repetition=10,
                warmup_batches=2,
                noise_sigma=0.0,
                fault_plan=FaultPlan(events=(
                    DvfsThrottle(
                        core_id=4, at_batch=3, frequency_mhz=600.0
                    ),
                )),
            ),
        )
        per_batch = (list(profile.per_batch_step_costs) * 10)[:10]
        modern = executor.run(plan, per_batch, profile.batch_size_bytes)
        assert modern == legacy


class TestThermalAblation:
    def test_regulated_recovers_static_does_not(self, small_harness):
        from repro.bench.exp_ablations import abl_thermal

        result = abl_thermal(small_harness)
        extras = result.extras
        assert extras["static plan"]["recovery"] is None
        assert extras["PID-regulated"]["recovery"] is not None
        assert len(extras["PID-regulated"]["violations"]) < len(
            extras["static plan"]["violations"]
        )
