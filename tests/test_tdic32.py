"""tdic32: stateful dictionary coding (Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import Tdic32
from repro.compression.tdic32 import tdic32_hash
from repro.errors import CompressionError, CorruptStreamError


def words_to_bytes(values):
    return np.asarray(values, dtype=np.uint32).tobytes()


@pytest.fixture
def codec():
    return Tdic32()


class TestHash:
    def test_deterministic(self):
        assert tdic32_hash(12345, 12) == tdic32_hash(12345, 12)

    def test_within_table(self):
        for value in (0, 1, 0xFFFFFFFF, 123456789):
            assert 0 <= tdic32_hash(value, 12) < 4096

    def test_index_bits_controls_range(self):
        for bits in (1, 4, 8, 16):
            assert 0 <= tdic32_hash(0xDEADBEEF, bits) < (1 << bits)


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"").payload) == b""

    def test_all_unique(self, codec, rng):
        data = rng.integers(0, 1 << 32, 400, dtype=np.uint32).tobytes()
        assert codec.decompress(codec.compress(data).payload) == data

    def test_all_duplicates(self, codec):
        data = words_to_bytes([777] * 300)
        assert codec.decompress(codec.compress(data).payload) == data

    def test_rovio_batch(self, codec, rovio_data):
        result = codec.compress(rovio_data)
        assert codec.decompress(result.payload) == rovio_data

    def test_hash_collisions_round_trip(self, codec):
        # Tiny table forces collisions; correctness must survive them.
        small = Tdic32(index_bits=2)
        data = words_to_bytes(list(range(100)) * 3)
        assert small.decompress(small.compress(data).payload) == data

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=250))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_words(self, values):
        codec = Tdic32()
        data = words_to_bytes(values)
        assert codec.decompress(codec.compress(data).payload) == data

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=250))
    @settings(max_examples=40, deadline=None)
    def test_high_duplication_words(self, values):
        codec = Tdic32()
        data = words_to_bytes(values)
        assert codec.decompress(codec.compress(data).payload) == data


class TestState:
    def test_state_persists_across_batches(self, codec):
        first = codec.compress(words_to_bytes([42] * 10))
        # The dictionary remembers 42, so the second batch is all hits.
        second = codec.compress(words_to_bytes([42] * 10))
        assert second.counters["hits"] == 10
        assert first.counters["hits"] == 9  # first occurrence missed

    def test_cross_batch_stream_round_trips_with_stateful_decoder(self):
        """Later batches reference dictionary entries made by earlier
        ones, so a decoder instance replays the same batch sequence."""
        encoder = Tdic32()
        batches = [words_to_bytes([7, 7, 9]) for _ in range(3)]
        payloads = [encoder.compress(b).payload for b in batches]
        decoder = Tdic32()
        for payload, original in zip(payloads, batches):
            assert decoder.decompress(payload) == original

    def test_fresh_decoder_rejects_mid_stream_batch(self):
        """Decoding a later batch without the earlier ones is detected
        (its hits reference never-populated slots)."""
        encoder = Tdic32()
        encoder.compress(words_to_bytes([7, 7, 9]))
        later = encoder.compress(words_to_bytes([7, 9])).payload
        with pytest.raises(CorruptStreamError):
            Tdic32().decompress(later)

    def test_reset_clears_dictionary(self, codec):
        codec.compress(words_to_bytes([1, 2, 3]))
        assert codec.state_entries > 0
        codec.reset()
        assert codec.state_entries == 0

    def test_state_entries_counts_slots(self):
        codec = Tdic32(index_bits=12)
        codec.compress(words_to_bytes([5]))
        assert codec.state_entries == 1

    def test_invalid_index_bits(self):
        with pytest.raises(CompressionError):
            Tdic32(index_bits=0)
        with pytest.raises(CompressionError):
            Tdic32(index_bits=31)

    def test_shared_state_flag_does_not_change_output(self, rovio_data):
        private = Tdic32(shared_state=False).compress(rovio_data)
        shared = Tdic32(shared_state=True).compress(rovio_data)
        assert private.payload == shared.payload


class TestCompression:
    def test_duplicated_stream_compresses(self, codec):
        data = words_to_bytes([123456] * 1000)
        result = codec.compress(data)
        # hits encode in 1 + 12 bits instead of 33.
        assert result.compression_ratio > 2.0

    def test_unique_stream_expands_slightly(self, codec, rng):
        data = rng.integers(0, 1 << 32, 500, dtype=np.uint32).tobytes()
        result = codec.compress(data)
        assert 0.9 < result.compression_ratio < 1.0

    def test_unaligned_input_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.compress(b"abcde")


class TestCostModel:
    def test_five_steps(self, codec):
        assert codec.step_ids() == ("s0", "s1", "s2", "s3", "s4")
        assert codec.stateful

    def test_hit_rate_counter(self, codec):
        result = codec.compress(words_to_bytes([9, 9, 9, 8]))
        assert result.counters["hits"] == 2
        assert result.counters["hit_rate"] == pytest.approx(0.5)

    def test_s2_kappa_drops_with_duplication(self):
        """The paper's Fig 13 mechanism: higher symbol duplication pulls
        s2's operational intensity down toward the stall region."""
        low_dup = Tdic32().compress(
            np.arange(1000, dtype=np.uint32).tobytes()
        )
        high_dup = Tdic32().compress(words_to_bytes([4] * 1000))
        assert (
            high_dup.step_costs["s2"].operational_intensity
            < low_dup.step_costs["s2"].operational_intensity
        )

    def test_s3_cost_drops_with_duplication(self):
        low_dup = Tdic32().compress(np.arange(1000, dtype=np.uint32).tobytes())
        high_dup = Tdic32().compress(words_to_bytes([4] * 1000))
        assert (
            high_dup.step_costs["s3"].instructions
            < low_dup.step_costs["s3"].instructions
        )

    def test_s1_kappa_constant(self, codec, rovio_data, stock_data):
        rovio = Tdic32().compress(rovio_data)
        stock = Tdic32().compress(stock_data)
        assert rovio.step_costs["s1"].operational_intensity == pytest.approx(
            stock.step_costs["s1"].operational_intensity
        )


class TestFastPath:
    """The vectorized dictionary pass is byte-identical to the loop."""

    def test_rovio_identical(self, rovio_data):
        fast = Tdic32(fast=True).compress(rovio_data)
        reference = Tdic32(fast=False).compress(rovio_data)
        assert fast.payload == reference.payload
        assert fast.counters == reference.counters

    def test_tables_identical_after_batch(self, rovio_data):
        fast, reference = Tdic32(fast=True), Tdic32(fast=False)
        fast.compress(rovio_data)
        reference.compress(rovio_data)
        assert np.array_equal(fast._table, reference._table)

    def test_multi_batch_state_identical(self, rovio_data):
        fast, reference = Tdic32(fast=True), Tdic32(fast=False)
        for start in range(0, len(rovio_data), 2048):
            chunk = rovio_data[start:start + 2048]
            assert fast.compress(chunk).payload == (
                reference.compress(chunk).payload
            )

    def test_slot_collisions_identical(self):
        """Tiny tables force heavy slot sharing — the sorted-group
        resolution must match the sequential semantics exactly."""
        data = words_to_bytes(list(range(200)) * 3)
        fast = Tdic32(index_bits=2, fast=True).compress(data)
        reference = Tdic32(index_bits=2, fast=False).compress(data)
        assert fast.payload == reference.payload

    @given(st.lists(st.integers(0, 30), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_high_duplication_identical(self, values):
        data = words_to_bytes(values)
        assert Tdic32(fast=True).compress(data).payload == (
            Tdic32(fast=False).compress(data).payload
        )

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_words_identical(self, values):
        data = words_to_bytes(values)
        assert Tdic32(fast=True).compress(data).payload == (
            Tdic32(fast=False).compress(data).payload
        )

    def test_fast_round_trips(self, rovio_data):
        codec = Tdic32(fast=True)
        payload = codec.compress(rovio_data).payload
        assert Tdic32().decompress(payload) == rovio_data


class TestCorruption:
    def test_truncated_header(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x00\x01")

    def test_hit_on_empty_slot_detected(self, codec):
        # A lone hit flag referencing a never-written slot is corrupt.
        from repro.compression.bitio import BitWriter
        import struct

        writer = BitWriter()
        writer.write_bytes(struct.pack("<I", 1))
        writer.write(1, 1)      # hit flag
        writer.write(99, 12)    # slot never populated
        with pytest.raises(CorruptStreamError):
            codec.decompress(writer.getvalue())

    def test_truncated_body(self, codec):
        payload = codec.compress(words_to_bytes([1, 2, 3, 4])).payload
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload[:5])
