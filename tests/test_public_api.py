"""Public API surface: exports exist, resolve, and are documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.compression",
    "repro.datasets",
    "repro.simcore",
    "repro.core",
    "repro.runtime",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))

    def test_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 20


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_exported_objects_have_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports without docstrings: {undocumented}"
        )


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_facade_reachable(self):
        from repro import CStream, ReproError

        assert callable(CStream)
        assert issubclass(ReproError, Exception)

    def test_cli_entry_point(self):
        from repro.cli import main

        assert callable(main)

    def test_module_runner(self):
        import repro.__main__  # noqa: F401 — importable without running

    def test_registries_consistent(self):
        """Every codec name maps to a codec whose .name matches, ditto
        datasets and mechanisms."""
        from repro.compression import CODEC_NAMES, get_codec
        from repro.core.baselines import MECHANISM_NAMES, get_mechanism
        from repro.datasets import DATASET_NAMES, get_dataset

        for name in CODEC_NAMES:
            assert get_codec(name).name == name
        for name in DATASET_NAMES:
            assert get_dataset(name).name == name
        for name in MECHANISM_NAMES:
            assert get_mechanism(name).name == name
