"""Table II interconnect paths (see repro.bench.exp_microbench.tab02_interconnect)."""

from repro.bench.exp_microbench import tab02_interconnect

from conftest import run_and_render


def test_tab02_interconnect(benchmark, harness):
    """Regenerate: Table II interconnect paths."""
    result = run_and_render(benchmark, tab02_interconnect, harness)
    assert result.rows
