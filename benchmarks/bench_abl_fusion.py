"""fusion-rule ablation (see repro.bench.exp_ablations.abl_fusion)."""

from repro.bench.exp_ablations import abl_fusion

from conftest import run_and_render


def test_abl_fusion(benchmark, harness):
    """Regenerate: fusion-rule ablation."""
    result = run_and_render(benchmark, abl_fusion, harness)
    assert result.rows
