"""Fig 9 dynamic-workload adaptation (see repro.bench.exp_endtoend)."""

from repro.bench.exp_endtoend import fig09_adaptivity

from conftest import run_and_render


def test_fig09_adaptive(benchmark, harness):
    """Regenerate: Fig 9 adaptation with and without PID regulation."""
    result = run_and_render(benchmark, fig09_adaptivity, harness)
    assert result.rows
