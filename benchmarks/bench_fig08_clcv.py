"""Fig 8 end-to-end CLCV (see repro.bench.exp_endtoend.fig08_clcv)."""

from repro.bench.exp_endtoend import fig08_clcv

from conftest import run_and_render


def test_fig08_clcv(benchmark, harness):
    """Regenerate: Fig 8 end-to-end CLCV."""
    result = run_and_render(benchmark, fig08_clcv, harness)
    assert result.rows
