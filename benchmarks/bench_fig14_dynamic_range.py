"""Fig 14 dynamic range (see repro.bench.exp_sensitivity.fig14_dynamic_range)."""

from repro.bench.exp_sensitivity import fig14_dynamic_range

from conftest import run_and_render


def test_fig14_dynamic_range(benchmark, harness):
    """Regenerate: Fig 14 dynamic range."""
    result = run_and_render(benchmark, fig14_dynamic_range, harness)
    assert result.rows
