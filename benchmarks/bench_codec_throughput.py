"""Real codec throughput (not a paper figure — library performance).

Measures actual wall-clock MB/s of each codec on a Rovio-profile batch,
including the vectorized fast paths where available. This is the one
bench where the numbers are *real time*, not simulated time.
"""

import pytest

from repro.compression import Lz4, Tcomp32, Tdic32
from repro.datasets import get_dataset

BATCH_BYTES = 262144


@pytest.fixture(scope="module")
def batch():
    return get_dataset("rovio").generate(BATCH_BYTES, seed=1)


def _compress(codec, data):
    return codec.compress(data).payload


@pytest.mark.parametrize(
    "label,factory",
    [
        ("tcomp32-fast", lambda: Tcomp32(fast=True)),
        ("tcomp32-reference", lambda: Tcomp32(fast=False)),
        ("tdic32-fast", lambda: Tdic32(fast=True)),
        ("tdic32-reference", lambda: Tdic32(fast=False)),
        ("lz4", Lz4),
    ],
)
def test_compress_throughput(benchmark, batch, label, factory):
    benchmark.extra_info["batch_bytes"] = BATCH_BYTES
    payload = benchmark(lambda: _compress(factory(), batch))
    mb_per_s = BATCH_BYTES / 1e6 / benchmark.stats.stats.mean
    benchmark.extra_info["MB_per_s"] = round(mb_per_s, 1)
    assert payload  # produced output


@pytest.mark.parametrize(
    "label,factory",
    [
        ("tcomp32", Tcomp32),
        ("tdic32", Tdic32),
        ("lz4", Lz4),
    ],
)
def test_decompress_throughput(benchmark, batch, label, factory):
    payload = factory().compress(batch).payload

    def round_trip():
        return factory().decompress(payload)

    restored = benchmark(round_trip)
    assert restored == batch
