"""Fig 12 vocabulary duplication (see repro.bench.exp_sensitivity.fig12_vocabulary_duplication)."""

from repro.bench.exp_sensitivity import fig12_vocabulary_duplication

from conftest import run_and_render


def test_fig12_vocab_dup(benchmark, harness):
    """Regenerate: Fig 12 vocabulary duplication."""
    result = run_and_render(benchmark, fig12_vocabulary_duplication, harness)
    assert result.rows
