"""Fig 16 DVFS strategies (see repro.bench.exp_system.fig16_dvfs)."""

from repro.bench.exp_system import fig16_dvfs

from conftest import run_and_render


def test_fig16_dvfs(benchmark, harness):
    """Regenerate: Fig 16 DVFS strategies."""
    result = run_and_render(benchmark, fig16_dvfs, harness)
    assert result.rows
