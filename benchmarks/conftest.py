"""Shared fixtures for the benchmark suite.

Each bench regenerates one table/figure of the paper (same rows/series)
and prints it; `pytest benchmarks/ --benchmark-only` runs them all.
Repetitions default to the paper's 100; set REPRO_REPETITIONS to trade
fidelity for speed. The harness cache is shared across benches, so
fig7/fig8 (same grid) and repeated workloads cost nothing twice.
"""

import pytest

from repro.bench.harness import Harness


@pytest.fixture(scope="session")
def harness():
    return Harness()


def run_and_render(benchmark, experiment, harness, **options):
    """Benchmark one experiment run and print its table."""
    result = benchmark.pedantic(
        lambda: experiment(harness, **options), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
