"""cross-board comparison (see repro.bench.exp_ablations.abl_boards)."""

from repro.bench.exp_ablations import abl_boards

from conftest import run_and_render


def test_abl_boards(benchmark, harness):
    """Regenerate: cross-board comparison."""
    result = run_and_render(benchmark, abl_boards, harness)
    assert result.rows
