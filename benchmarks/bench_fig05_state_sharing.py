"""Fig 5 shared vs private state (see repro.bench.exp_endtoend.fig05_state_sharing)."""

from repro.bench.exp_endtoend import fig05_state_sharing

from conftest import run_and_render


def test_fig05_state_sharing(benchmark, harness):
    """Regenerate: Fig 5 shared vs private state."""
    result = run_and_render(benchmark, fig05_state_sharing, harness)
    assert result.rows
