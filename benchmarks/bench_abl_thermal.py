"""Thermal-throttling failure injection (see repro.bench.exp_ablations)."""

from repro.bench.exp_ablations import abl_thermal

from conftest import run_and_render


def test_abl_thermal(benchmark, harness):
    """Regenerate: recovery from a mid-stream thermal cap."""
    result = run_and_render(benchmark, abl_thermal, harness)
    assert result.rows
