"""Fig 10 varying latency constraint (see repro.bench.exp_sensitivity.fig10_latency_constraint)."""

from repro.bench.exp_sensitivity import fig10_latency_constraint

from conftest import run_and_render


def test_fig10_lset(benchmark, harness):
    """Regenerate: Fig 10 varying latency constraint."""
    result = run_and_render(benchmark, fig10_latency_constraint, harness)
    assert result.rows
