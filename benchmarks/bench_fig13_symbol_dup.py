"""Fig 13 symbol duplication (see repro.bench.exp_sensitivity.fig13_symbol_duplication)."""

from repro.bench.exp_sensitivity import fig13_symbol_duplication

from conftest import run_and_render


def test_fig13_symbol_dup(benchmark, harness):
    """Regenerate: Fig 13 symbol duplication."""
    result = run_and_render(benchmark, fig13_symbol_duplication, harness)
    assert result.rows
