"""Fig 17 break-down analysis (see repro.bench.exp_system.fig17_breakdown)."""

from repro.bench.exp_system import fig17_breakdown

from conftest import run_and_render


def test_fig17_breakdown(benchmark, harness):
    """Regenerate: Fig 17 break-down analysis."""
    result = run_and_render(benchmark, fig17_breakdown, harness)
    assert result.rows
