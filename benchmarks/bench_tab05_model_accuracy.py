"""Table V model correctness (see repro.bench.exp_microbench.tab05_model_accuracy)."""

from repro.bench.exp_microbench import tab05_model_accuracy

from conftest import run_and_render


def test_tab05_model_accuracy(benchmark, harness):
    """Regenerate: Table V model correctness."""
    result = run_and_render(benchmark, tab05_model_accuracy, harness)
    assert result.rows
