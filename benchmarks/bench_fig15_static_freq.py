"""Fig 15 static frequency sweep (see repro.bench.exp_system.fig15_static_frequency)."""

from repro.bench.exp_system import fig15_static_frequency

from conftest import run_and_render


def test_fig15_static_freq(benchmark, harness):
    """Regenerate: Fig 15 static frequency sweep."""
    result = run_and_render(benchmark, fig15_static_frequency, harness)
    assert result.rows
