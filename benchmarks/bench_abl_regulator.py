"""Regulator ablation: PID vs statistics-aware (future work, §V-D)."""

from repro.bench.exp_ablations import abl_regulator

from conftest import run_and_render


def test_abl_regulator(benchmark, harness):
    """Regenerate: regulator response to a workload jump."""
    result = run_and_render(benchmark, abl_regulator, harness)
    assert result.rows
