"""Fig 7 end-to-end energy (see repro.bench.exp_endtoend.fig07_energy)."""

from repro.bench.exp_endtoend import fig07_energy

from conftest import run_and_render


def test_fig07_energy(benchmark, harness):
    """Regenerate: Fig 7 end-to-end energy."""
    result = run_and_render(benchmark, fig07_energy, harness)
    assert result.rows
