"""Table IV task comparison (see repro.bench.exp_microbench.tab04_task_comparison)."""

from repro.bench.exp_microbench import tab04_task_comparison

from conftest import run_and_render


def test_tab04_tasks(benchmark, harness):
    """Regenerate: Table IV task comparison."""
    result = run_and_render(benchmark, tab04_task_comparison, harness)
    assert result.rows
