"""guard-band ablation (see repro.bench.exp_ablations.abl_guard_band)."""

from repro.bench.exp_ablations import abl_guard_band

from conftest import run_and_render


def test_abl_guard(benchmark, harness):
    """Regenerate: guard-band ablation."""
    result = run_and_render(benchmark, abl_guard_band, harness)
    assert result.rows
