"""Fig 3 roofline of big/little cores (see repro.bench.exp_microbench.fig03_roofline)."""

from repro.bench.exp_microbench import fig03_roofline

from conftest import run_and_render


def test_fig03_roofline(benchmark, harness):
    """Regenerate: Fig 3 roofline of big/little cores."""
    result = run_and_render(benchmark, fig03_roofline, harness)
    assert result.rows
