"""Harness scaling: parallel grid execution + persistent result cache.

Times a small mechanism×workload grid at ``--jobs 1,2,4`` on a cold
cache, then re-runs it on the warm cache, and writes the trajectory
record ``BENCH_harness.json`` (cells/sec, speedup vs serial, cache-hit
rate, and a per-phase wall-clock breakdown — profiling vs simulation vs
cache I/O vs plan search — from :data:`repro.obs.registry.REGISTRY`).
Run standalone::

    PYTHONPATH=src python benchmarks/bench_harness_scaling.py
    PYTHONPATH=src python benchmarks/bench_harness_scaling.py --quick

or via pytest (``pytest benchmarks/bench_harness_scaling.py``).

Assertions: parallel wall-clock must not exceed serial (only enforced
on multi-core machines — on a single CPU process parallelism can only
add overhead, which the JSON still records honestly), and the
warm-cache re-run must be near-zero (< 20% of the cold serial time).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.bench.cache import ResultCache
from repro.bench.harness import Harness, WorkloadSpec
from repro.obs.registry import REGISTRY, diff_snapshots

#: registry timers whose per-phase totals each run records
_PHASE_TIMERS = (
    "harness.profile",
    "harness.simulate",
    "cache.get",
    "cache.put",
    "scheduler.search",
)

#: tolerance for "parallel <= serial": scheduling jitter on busy CI boxes
PARALLEL_SLACK = 1.05
#: warm-cache re-run must cost at most this fraction of the cold serial run
WARM_FRACTION = 0.20

BENCH_BATCH_BYTES = 16384


def build_grid(quick: bool):
    if quick:
        specs = [
            WorkloadSpec.of(codec, "rovio", batch_size=BENCH_BATCH_BYTES)
            for codec in ("tcomp32", "tdic32")
        ]
        mechanisms = ("CStream", "RR")
    else:
        specs = [
            WorkloadSpec.of(codec, dataset, batch_size=BENCH_BATCH_BYTES)
            for codec in ("tcomp32", "lz4", "tdic32")
            for dataset in ("rovio", "stock")
        ]
        mechanisms = ("CStream", "OS", "RR", "BO")
    return specs, mechanisms


def fresh_harness(repetitions: int, cache) -> Harness:
    return Harness(
        repetitions=repetitions,
        batches_per_repetition=5,
        profile_batches=4,
        cache=cache,
        jobs=1,
    )


def time_grid(specs, mechanisms, repetitions, jobs, cache):
    harness = fresh_harness(repetitions, cache)
    before = REGISTRY.snapshot()
    started = time.perf_counter()
    results = harness.grid(specs, mechanisms, jobs=jobs)
    elapsed = time.perf_counter() - started
    phases = grid_phases(before, REGISTRY.snapshot())
    return elapsed, results, harness, phases


def grid_phases(before, after):
    """Per-phase wall-clock totals (seconds) a grid spent in this
    process, from the metrics registry. With ``jobs > 1`` the simulate/
    profile time runs in worker processes, so only the parent-side
    phases (cache I/O, promoted profiling) show up — recorded honestly
    rather than guessed."""
    delta = diff_snapshots(before, after)
    timers = delta.get("timers", {})
    return {
        name: round(timers[name]["total_s"], 4)
        for name in _PHASE_TIMERS
        if name in timers and timers[name]["count"]
    }


def run_scaling(jobs_list, repetitions, quick, output):
    specs, mechanisms = build_grid(quick)
    cells = len(specs) * len(mechanisms)
    cpu_count = os.cpu_count() or 1
    print(
        f"grid: {len(specs)} workloads x {len(mechanisms)} mechanisms = "
        f"{cells} cells, {repetitions} repetitions, {cpu_count} CPUs"
    )

    serial_seconds, reference, _, serial_phases = time_grid(
        specs, mechanisms, repetitions, jobs=1, cache=None
    )
    print(f"jobs=1 (serial, no cache): {serial_seconds:.2f}s "
          f"({cells / serial_seconds:.1f} cells/s)")
    for name, seconds in serial_phases.items():
        print(f"  {name:18s} {seconds:.2f}s")

    runs = [
        {
            "jobs": 1,
            "cold_seconds": round(serial_seconds, 4),
            "cells_per_sec": round(cells / serial_seconds, 2),
            "speedup_vs_serial": 1.0,
            "phases": serial_phases,
        }
    ]
    last_cache_dir = None
    for jobs in [j for j in jobs_list if j > 1]:
        cache_dir = tempfile.mkdtemp(prefix=f"cstream-bench-j{jobs}-")
        elapsed, results, _, phases = time_grid(
            specs, mechanisms, repetitions, jobs=jobs,
            cache=ResultCache(cache_dir),
        )
        assert results == reference, (
            f"jobs={jobs} produced different numbers than the serial run"
        )
        speedup = serial_seconds / elapsed
        print(f"jobs={jobs} (cold cache): {elapsed:.2f}s "
              f"({cells / elapsed:.1f} cells/s, {speedup:.2f}x vs serial)")
        runs.append(
            {
                "jobs": jobs,
                "cold_seconds": round(elapsed, 4),
                "cells_per_sec": round(cells / elapsed, 2),
                "speedup_vs_serial": round(speedup, 3),
                "phases": phases,
            }
        )
        last_cache_dir = cache_dir
        if cpu_count > 1:
            assert elapsed <= serial_seconds * PARALLEL_SLACK, (
                f"parallel ({elapsed:.2f}s at jobs={jobs}) slower than "
                f"serial ({serial_seconds:.2f}s) on a {cpu_count}-CPU box"
            )

    warm = None
    if last_cache_dir is not None:
        warm_seconds, results, harness, warm_phases = time_grid(
            specs, mechanisms, repetitions, jobs=max(jobs_list),
            cache=ResultCache(last_cache_dir),
        )
        assert results == reference, "warm cache returned different numbers"
        stats = harness.cache.stats
        print(f"warm cache: {warm_seconds:.2f}s "
              f"({stats.hit_rate:.0%} hit rate, "
              f"{serial_seconds / warm_seconds:.0f}x vs cold serial)")
        assert warm_seconds <= serial_seconds * WARM_FRACTION, (
            f"warm-cache re-run ({warm_seconds:.2f}s) is not near-zero vs "
            f"cold serial ({serial_seconds:.2f}s)"
        )
        warm = {
            "seconds": round(warm_seconds, 4),
            "hit_rate": round(stats.hit_rate, 3),
            "speedup_vs_cold_serial": round(serial_seconds / warm_seconds, 1),
            "phases": warm_phases,
        }

    record = {
        "bench": "harness_scaling",
        "grid": {
            "workloads": [spec.label for spec in specs],
            "mechanisms": list(mechanisms),
            "cells": cells,
            "repetitions": repetitions,
            "batch_bytes": BENCH_BATCH_BYTES,
        },
        "cpu_count": cpu_count,
        "runs": runs,
        "warm_cache": warm,
    }
    with open(output, "w") as sink:
        json.dump(record, sink, indent=2)
        sink.write("\n")
    print(f"wrote {output}")
    return record


def test_harness_scaling():
    """Pytest entry: quick grid, jobs 1/2, temp output."""
    with tempfile.TemporaryDirectory() as scratch:
        record = run_scaling(
            jobs_list=[1, 2],
            repetitions=4,
            quick=True,
            output=os.path.join(scratch, "BENCH_harness.json"),
        )
    assert record["warm_cache"]["hit_rate"] == 1.0
    # the serial cold run spends real time simulating, and the registry
    # breakdown in the record shows it
    assert record["runs"][0]["phases"]["harness.simulate"] > 0
    assert record["warm_cache"]["phases"].get("cache.get", 0) >= 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="1,2,4",
                        help="comma-separated worker counts (default 1,2,4)")
    parser.add_argument("--repetitions", type=int,
                        default=int(os.environ.get("REPRO_REPETITIONS", 60)))
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid (CI smoke)")
    parser.add_argument("--output", default="BENCH_harness.json")
    args = parser.parse_args(argv)
    jobs_list = sorted({int(j) for j in args.jobs.split(",")})
    run_scaling(jobs_list, args.repetitions, args.quick, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
