"""Harness scaling: parallel grid execution + persistent result cache.

Times a small mechanism×workload grid at ``--jobs 1,2,4`` on a cold
cache, then re-runs it on the warm cache, and writes the trajectory
record ``BENCH_harness.json`` (cells/sec, speedup vs serial, cache-hit
rate, and a per-phase wall-clock breakdown — profiling vs simulation vs
cache I/O vs plan search — from :data:`repro.obs.registry.REGISTRY`).
Also times cold vs warm-started replanning on a drifted cost model and
records the warm-start hit rate, so the perf trajectory tracks the
scheduler-search cost the online control loop pays per replan, and
runs the fleet capacity sweep (static vs shedding vs
shedding+failover under a board crash, 3- and 6-board fleets) so the
record tracks the serving tier's graceful-degradation wins.
Run standalone::

    PYTHONPATH=src python benchmarks/bench_harness_scaling.py
    PYTHONPATH=src python benchmarks/bench_harness_scaling.py --quick

or via pytest (``pytest benchmarks/bench_harness_scaling.py``).

Assertions: parallel wall-clock must not exceed serial (only enforced
on multi-core machines — on a single CPU process parallelism can only
add overhead, which the JSON still records honestly), and the
warm-cache re-run must be near-zero (< 20% of the cold serial time).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.bench.cache import ResultCache
from repro.bench.harness import Harness, WorkloadSpec
from repro.obs.registry import REGISTRY, diff_snapshots

#: registry timers whose per-phase totals each run records
_PHASE_TIMERS = (
    "harness.profile",
    "harness.simulate",
    "cache.get",
    "cache.put",
    "scheduler.search",
)

#: tolerance for "parallel <= serial": scheduling jitter on busy CI boxes
PARALLEL_SLACK = 1.05
#: warm-cache re-run must cost at most this fraction of the cold serial run
WARM_FRACTION = 0.20

BENCH_BATCH_BYTES = 16384


def build_grid(quick: bool):
    if quick:
        specs = [
            WorkloadSpec.of(codec, "rovio", batch_size=BENCH_BATCH_BYTES)
            for codec in ("tcomp32", "tdic32")
        ]
        mechanisms = ("CStream", "RR")
    else:
        specs = [
            WorkloadSpec.of(codec, dataset, batch_size=BENCH_BATCH_BYTES)
            for codec in ("tcomp32", "lz4", "tdic32")
            for dataset in ("rovio", "stock")
        ]
        mechanisms = ("CStream", "OS", "RR", "BO")
    return specs, mechanisms


def fresh_harness(repetitions: int, cache) -> Harness:
    return Harness(
        repetitions=repetitions,
        batches_per_repetition=5,
        profile_batches=4,
        cache=cache,
        jobs=1,
    )


def time_grid(specs, mechanisms, repetitions, jobs, cache, chunk=None):
    harness = fresh_harness(repetitions, cache)
    before = REGISTRY.snapshot()
    started = time.perf_counter()
    results = harness.grid(specs, mechanisms, jobs=jobs, chunk=chunk)
    elapsed = time.perf_counter() - started
    phases = grid_phases(before, REGISTRY.snapshot())
    return elapsed, results, harness, phases


def grid_phases(before, after):
    """Per-phase wall-clock totals (seconds) a grid spent in this
    process, from the metrics registry. With ``jobs > 1`` the simulate/
    profile time runs in worker processes, so only the parent-side
    phases (cache I/O, promoted profiling) show up — recorded honestly
    rather than guessed."""
    delta = diff_snapshots(before, after)
    timers = delta.get("timers", {})
    return {
        name: round(timers[name]["total_s"], 4)
        for name in _PHASE_TIMERS
        if name in timers and timers[name]["count"]
    }


def bench_replanning(rounds: int = 5):
    """Cold vs warm-started replanning on a drifted model.

    Schedules a workload once, then replays ``rounds`` drift
    recalibrations (alternating per-stage latency-scale shifts), timing
    a cold ``schedule()`` against a warm ``schedule(warm_start=incumbent)``
    on an identical model each round. Records wall-clock plus the
    warm-start hit rate (branches only the incumbent bound could cut,
    over all pruned branches) — the scheduler-search cost trajectory the
    control loop's replans ride on.
    """
    from repro.bench.harness import default_harness
    from repro.core.scheduler import Scheduler

    harness = default_harness()
    spec = WorkloadSpec.of("tcomp32", "rovio", batch_size=BENCH_BATCH_BYTES)
    context = harness.context(spec)

    cold_model = context.cost_model(context.fine_graph)
    warm_model = context.cost_model(context.fine_graph)
    scheduler = Scheduler(warm_model)  # keeps its floor cache across rounds
    incumbent = scheduler.schedule(best_effort=True).estimate.plan

    cold_seconds = 0.0
    warm_seconds = 0.0
    warm_hits = 0
    pruned = 0
    for round_index in range(rounds):
        # Alternate drift directions so replans see real shifts.
        scale = 1.25 if round_index % 2 == 0 else 0.8
        stage = round_index % warm_model.graph.stage_count
        for model in (cold_model, warm_model):
            model.latency_scale[stage] = (
                model.latency_scale.get(stage, 1.0) * scale
            )

        started = time.perf_counter()
        Scheduler(cold_model).schedule(best_effort=True)
        cold_seconds += time.perf_counter() - started

        started = time.perf_counter()
        result = scheduler.schedule(best_effort=True, warm_start=incumbent)
        warm_seconds += time.perf_counter() - started
        incumbent = result.estimate.plan
        warm_hits += result.search_stats.warm_start_hits
        pruned += result.search_stats.branches_pruned

    return {
        "rounds": rounds,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds > 0 else None,
        "warm_start_hits": warm_hits,
        "warm_start_hit_rate": round(warm_hits / pruned, 4) if pruned else 0.0,
    }


#: drift scenarios the perf record tracks, one adaptive-vs-static
#: session per (board, scenario) cell (see repro.datasets.DRIFT_KINDS)
BENCH_DRIFT_SCENARIOS = ("ramp", "burst", "phase-shift")


def bench_adaptive_drift(boards=("rk3399", "jetson_tx2_like")):
    """Per-board adaptive-vs-static outcomes on drifting workloads.

    Runs one :func:`repro.control.run_adaptive_session` per
    (board, drift scenario) cell and records both arms' energy and
    violation counts plus the controller's replan/adoption/warm-start
    activity — so the perf record tracks how the online control loop
    fares on the little.BIG boards beyond the reference rk3399.
    """
    from repro.control import ControllerConfig, SessionSpec, run_adaptive_session
    from repro.simcore import boards as board_module

    per_board = {}
    for board_name in boards:
        board = getattr(board_module, board_name)()
        harness = Harness(board=board, cache=None)
        per_board[board_name] = {}
        for scenario in BENCH_DRIFT_SCENARIOS:
            spec = SessionSpec(
                scenario=scenario,
                controller=ControllerConfig(horizon_windows=4),
            )
            started = time.perf_counter()
            comparison = run_adaptive_session(harness, spec)
            elapsed = time.perf_counter() - started
            outcome = {
                "static_energy_uj_per_byte": round(
                    comparison.static_energy_uj_per_byte, 6
                ),
                "adaptive_energy_uj_per_byte": round(
                    comparison.adaptive_energy_uj_per_byte, 6
                ),
                "energy_saving": round(comparison.energy_saving, 4),
                "static_steady_violations": (
                    comparison.static_steady_violations
                ),
                "adaptive_steady_violations": (
                    comparison.adaptive_steady_violations
                ),
                "replans": comparison.adaptive.replans,
                "plans_adopted": comparison.adaptive.plans_adopted,
                "warm_start_hits": comparison.warm_start_hits,
                "wall_seconds": round(elapsed, 4),
            }
            per_board[board_name][scenario] = outcome
            print(
                f"adapt {board_name}/{scenario}: energy "
                f"{outcome['static_energy_uj_per_byte']:.4f} -> "
                f"{outcome['adaptive_energy_uj_per_byte']:.4f} µJ/byte "
                f"({outcome['energy_saving']:.1%} saving, "
                f"{outcome['replans']} replans, "
                f"{outcome['plans_adopted']} adopted, steady violations "
                f"{outcome['static_steady_violations']} -> "
                f"{outcome['adaptive_steady_violations']})"
            )
    return per_board


#: chaos scenarios the perf record tracks: the heartbeat-driven
#: failover (core-failure) plus the two signal-free faults that only
#: the residual ledger can attribute; corruption runs at an elevated
#: probability so the retry load dominates the window
BENCH_CHAOS_SCENARIOS = (
    ("core-failure", {}),
    ("interconnect", {}),
    ("corruption", {"corruption_probability": 0.6}),
)


def bench_chaos_recovery(boards=("rk3399", "jetson_tx2_like")):
    """Per-board recovery under injected faults, heartbeat or not.

    Runs the :data:`BENCH_CHAOS_SCENARIOS` grid (see
    :mod:`repro.faults.chaos`) on each board and records, per cell, the
    recovery latency the adaptive controller achieves, the steady-state
    violation counts of both arms, and the residual ledger's dominant
    attribution — the component the health report pins the fault on.
    ``core-failure`` exercises the heartbeat failover path;
    ``interconnect`` and ``corruption`` emit no heartbeat and are only
    recoverable through residual diagnosis.
    """
    from repro.faults.chaos import ChaosSpec, run_chaos_session
    from repro.simcore import boards as board_module

    per_board = {}
    for board_name in boards:
        board = getattr(board_module, board_name)()
        harness = Harness(
            board=board,
            repetitions=1,
            batches_per_repetition=18,
            profile_batches=3,
            cache=None,
        )
        per_board[board_name] = {}
        for scenario, overrides in BENCH_CHAOS_SCENARIOS:
            started = time.perf_counter()
            comparison = run_chaos_session(
                harness,
                ChaosSpec(scenario=scenario, batch_bytes=8192, **overrides),
            )
            elapsed = time.perf_counter() - started
            recovery = comparison.adaptive_recovery_us
            dominant = None
            if comparison.health is not None:
                attribution = comparison.health.dominant()
                if attribution is not None:
                    dominant = {
                        "kind": attribution.kind,
                        "key": attribution.key,
                        "score": round(attribution.score, 2),
                        "confidence": round(attribution.confidence, 2),
                    }
            outcome = {
                "victim_core": comparison.victim_core,
                "static_steady_violations": (
                    comparison.static_steady_violations
                ),
                "adaptive_steady_violations": (
                    comparison.adaptive_steady_violations
                ),
                "adaptive_recovery_ms": (
                    round(recovery / 1000.0, 2)
                    if recovery is not None else None
                ),
                "static_recovers": comparison.static_recovery_us is not None,
                "dominant_attribution": dominant,
                "wall_seconds": round(elapsed, 4),
            }
            if overrides:
                outcome["spec_overrides"] = dict(overrides)
            per_board[board_name][scenario] = outcome
            culprit = (
                f"{dominant['kind']}:{dominant['key']}"
                if dominant else "none"
            )
            print(
                f"chaos {board_name}/{scenario}: static "
                f"{outcome['static_steady_violations']} vs adaptive "
                f"{outcome['adaptive_steady_violations']} steady "
                f"violations, recovery "
                f"{outcome['adaptive_recovery_ms']} ms, "
                f"attribution {culprit}"
            )
    return per_board


#: (boards, tenants) cells of the fleet capacity sweep
BENCH_FLEET_SIZES = ((3, 6), (6, 12))


def bench_fleet_capacity(sizes=BENCH_FLEET_SIZES):
    """Per-fleet-size serving outcomes under a board crash.

    Runs the three gateway arms (static admission, +shedding,
    +breaker+failover) of :func:`repro.fleet.scenario.run_fleet_scenario`
    over each (boards, tenants) cell and records admissions,
    violations, shed/failover activity and the crash→re-placement lag
    — so the perf record tracks the serving tier's graceful
    degradation alongside the single-session control loop.
    """
    from repro.fleet.scenario import FleetScenarioSpec, run_fleet_scenario

    per_size = {}
    for boards, tenants in sizes:
        spec = FleetScenarioSpec(boards=boards, tenants=tenants)
        started = time.perf_counter()
        comparison = run_fleet_scenario(spec)
        elapsed = time.perf_counter() - started
        arms = {}
        for summary in comparison.summaries:
            arms[summary.arm] = {
                "tenants_admitted": summary.tenants_admitted,
                "tenants_rejected": summary.tenants_rejected,
                "total_violations": summary.total_violations,
                "steady_violations": summary.steady_violations,
                "sheds": summary.sheds,
                "failovers": summary.failovers,
                "failover_lag_windows": summary.failover_lag_windows,
                "energy_uj": round(summary.energy_uj, 2),
            }
        per_size[f"{boards}x{tenants}"] = {
            "boards": boards,
            "tenants": tenants,
            "arms": arms,
            "wall_seconds": round(elapsed, 4),
        }
        static = arms["static"]
        failover = arms["shed-failover"]
        print(
            f"fleet {boards}x{tenants}: steady violations static "
            f"{static['steady_violations']} vs shed-failover "
            f"{failover['steady_violations']}, "
            f"{failover['failovers']} failovers, lag "
            f"{failover['failover_lag_windows']} windows"
        )
    return per_size


def load_baseline(path):
    """The previously committed record at ``path`` (None if absent)."""
    try:
        with open(path) as source:
            return json.load(source)
    except (OSError, ValueError):
        return None


def check_baseline(baseline, record, tolerance=0.20):
    """Fail if cold serial throughput regressed > ``tolerance`` vs the
    committed record (the CI perf-smoke gate)."""
    if not baseline:
        print("no committed baseline; skipping regression check")
        return
    if baseline.get("grid") != record["grid"]:
        print("baseline grid differs (quick vs full?); skipping check")
        return
    serial_cells_per_sec = record["trajectory"]["cells_per_sec"]
    previous = baseline["runs"][0]["cells_per_sec"]
    floor = previous * (1.0 - tolerance)
    status = "ok" if serial_cells_per_sec >= floor else "REGRESSION"
    print(
        f"baseline check: {serial_cells_per_sec:.2f} cells/s vs committed "
        f"{previous:.2f} (floor {floor:.2f}): {status}"
    )
    if serial_cells_per_sec < floor:
        raise SystemExit(
            f"cold serial throughput regressed more than "
            f"{tolerance:.0%}: {serial_cells_per_sec:.2f} cells/s < "
            f"{floor:.2f} (committed {previous:.2f})"
        )


def run_scaling(jobs_list, repetitions, quick, output, chunk=None):
    specs, mechanisms = build_grid(quick)
    cells = len(specs) * len(mechanisms)
    cpu_count = os.cpu_count() or 1
    previous_record = load_baseline(output)
    print(
        f"grid: {len(specs)} workloads x {len(mechanisms)} mechanisms = "
        f"{cells} cells, {repetitions} repetitions, {cpu_count} CPUs"
    )

    serial_seconds, reference, _, serial_phases = time_grid(
        specs, mechanisms, repetitions, jobs=1, cache=None
    )
    print(f"jobs=1 (serial, no cache): {serial_seconds:.2f}s "
          f"({cells / serial_seconds:.1f} cells/s)")
    for name, seconds in serial_phases.items():
        print(f"  {name:18s} {seconds:.2f}s")

    runs = [
        {
            "jobs": 1,
            "cold_seconds": round(serial_seconds, 4),
            "cells_per_sec": round(cells / serial_seconds, 2),
            "speedup_vs_serial": 1.0,
            "phases": serial_phases,
        }
    ]
    from repro.bench.parallel import resolve_jobs

    last_cache_dir = None
    for jobs in [j for j in jobs_list if j > 1]:
        cache_dir = tempfile.mkdtemp(prefix=f"cstream-bench-j{jobs}-")
        elapsed, results, _, phases = time_grid(
            specs, mechanisms, repetitions, jobs=jobs,
            cache=ResultCache(cache_dir), chunk=chunk,
        )
        assert results == reference, (
            f"jobs={jobs} produced different numbers than the serial run"
        )
        speedup = serial_seconds / elapsed
        print(f"jobs={jobs} (cold cache): {elapsed:.2f}s "
              f"({cells / elapsed:.1f} cells/s, {speedup:.2f}x vs serial)")
        runs.append(
            {
                "jobs": jobs,
                "effective_jobs": resolve_jobs(jobs),
                "cold_seconds": round(elapsed, 4),
                "cells_per_sec": round(cells / elapsed, 2),
                "speedup_vs_serial": round(speedup, 3),
                "phases": phases,
            }
        )
        last_cache_dir = cache_dir
        if cpu_count > 1:
            assert elapsed <= serial_seconds * PARALLEL_SLACK, (
                f"parallel ({elapsed:.2f}s at jobs={jobs}) slower than "
                f"serial ({serial_seconds:.2f}s) on a {cpu_count}-CPU box"
            )

    warm = None
    if last_cache_dir is not None:
        warm_seconds, results, harness, warm_phases = time_grid(
            specs, mechanisms, repetitions, jobs=max(jobs_list),
            cache=ResultCache(last_cache_dir),
        )
        assert results == reference, "warm cache returned different numbers"
        stats = harness.cache.stats
        print(f"warm cache: {warm_seconds:.2f}s "
              f"({stats.hit_rate:.0%} hit rate, "
              f"{serial_seconds / warm_seconds:.0f}x vs cold serial)")
        assert warm_seconds <= serial_seconds * WARM_FRACTION, (
            f"warm-cache re-run ({warm_seconds:.2f}s) is not near-zero vs "
            f"cold serial ({serial_seconds:.2f}s)"
        )
        warm = {
            "seconds": round(warm_seconds, 4),
            "hit_rate": round(stats.hit_rate, 3),
            "speedup_vs_cold_serial": round(serial_seconds / warm_seconds, 1),
            "phases": warm_phases,
        }

    replanning = bench_replanning()
    print(
        f"replanning x{replanning['rounds']}: "
        f"cold {replanning['cold_seconds']:.2f}s vs "
        f"warm {replanning['warm_seconds']:.2f}s "
        f"({replanning['warm_start_hit_rate']:.0%} warm-start hit rate)"
    )

    adaptive = bench_adaptive_drift()
    chaos = bench_chaos_recovery()
    fleet = bench_fleet_capacity()

    serial_cells_per_sec = cells / serial_seconds
    trajectory = {"cells_per_sec": round(serial_cells_per_sec, 2)}
    if previous_record:
        previous_serial = previous_record["runs"][0]["cells_per_sec"]
        trajectory["previous_cells_per_sec"] = previous_serial
        trajectory["speedup_vs_previous"] = round(
            serial_cells_per_sec / previous_serial, 2
        )
        print(
            f"trajectory: {previous_serial:.2f} -> "
            f"{serial_cells_per_sec:.2f} cold serial cells/s "
            f"({trajectory['speedup_vs_previous']:.2f}x)"
        )

    record = {
        "bench": "harness_scaling",
        "grid": {
            "workloads": [spec.label for spec in specs],
            "mechanisms": list(mechanisms),
            "cells": cells,
            "repetitions": repetitions,
            "batch_bytes": BENCH_BATCH_BYTES,
        },
        "cpu_count": cpu_count,
        "chunk": chunk,
        "runs": runs,
        "trajectory": trajectory,
        "warm_cache": warm,
        "replanning": replanning,
        "adaptive": adaptive,
        "chaos": chaos,
        "fleet": fleet,
    }
    with open(output, "w") as sink:
        json.dump(record, sink, indent=2)
        sink.write("\n")
    print(f"wrote {output}")
    return record


def test_harness_scaling():
    """Pytest entry: quick grid, jobs 1/2, temp output."""
    with tempfile.TemporaryDirectory() as scratch:
        record = run_scaling(
            jobs_list=[1, 2],
            repetitions=4,
            quick=True,
            output=os.path.join(scratch, "BENCH_harness.json"),
        )
    assert record["warm_cache"]["hit_rate"] == 1.0
    # the serial cold run spends real time simulating, and the registry
    # breakdown in the record shows it
    assert record["runs"][0]["phases"]["harness.simulate"] > 0
    # requested worker counts are clamped to the machine, and the record
    # says what actually ran
    cpu_count = os.cpu_count() or 1
    for run in record["runs"][1:]:
        assert run["effective_jobs"] <= cpu_count
    assert record["trajectory"]["cells_per_sec"] > 0
    assert record["warm_cache"]["phases"].get("cache.get", 0) >= 0
    # the replanning section tracks scheduler-search cost for the
    # control loop: warm-started replans must record their wall-clock
    # and at least register the incumbent-bound cuts
    assert record["replanning"]["warm_seconds"] > 0
    assert record["replanning"]["cold_seconds"] > 0
    assert record["replanning"]["warm_start_hits"] >= 0
    assert 0.0 <= record["replanning"]["warm_start_hit_rate"] <= 1.0
    # the chaos section tracks per-board, per-scenario recovery: under
    # the heartbeat fault (core-failure) every board's adaptive arm
    # must recover (finite latency) and end with strictly fewer
    # steady-state violations than the static plan
    for board_name, outcomes in record["chaos"].items():
        failure = outcomes["core-failure"]
        assert failure["adaptive_recovery_ms"] is not None, board_name
        assert (
            failure["adaptive_steady_violations"]
            < failure["static_steady_violations"]
        ), board_name
        # the signal-free faults never leave the adaptive arm worse off
        for scenario in ("interconnect", "corruption"):
            outcome = outcomes[scenario]
            assert (
                outcome["adaptive_steady_violations"]
                <= outcome["static_steady_violations"]
            ), (board_name, scenario)
    # the adaptive section tracks the control loop per board: every
    # (board, drift) cell ran, replanned at least once, and never left
    # the adaptive arm with more steady-state violations than static
    for board_name, outcomes in record["adaptive"].items():
        assert set(outcomes) == set(BENCH_DRIFT_SCENARIOS), board_name
        for scenario, outcome in outcomes.items():
            assert outcome["replans"] >= 1, (board_name, scenario)
            assert outcome["adaptive_energy_uj_per_byte"] > 0
            assert (
                outcome["adaptive_steady_violations"]
                <= outcome["static_steady_violations"]
            ), (board_name, scenario)
    # the fleet section tracks the serving tier's graceful degradation:
    # on every fleet size the breaker+failover arm must re-place the
    # crashed board's victims within 3 windows and end with at most 25%
    # of the static arm's steady-state violations
    for size_label, outcome in record["fleet"].items():
        static = outcome["arms"]["static"]
        failover = outcome["arms"]["shed-failover"]
        assert failover["failovers"] >= 1, size_label
        assert failover["failover_lag_windows"] is not None, size_label
        assert failover["failover_lag_windows"] <= 3, size_label
        assert (
            failover["steady_violations"]
            <= 0.25 * static["steady_violations"]
        ), size_label
        # shedding alone already beats stranding victims forever
        shed = outcome["arms"]["shed"]
        assert (
            shed["steady_violations"] < static["steady_violations"]
        ), size_label
    # on the reference board the phase shift is drastic enough that
    # adaptation must convert detection into a strict win on both axes
    rk_shift = record["adaptive"]["rk3399"]["phase-shift"]
    assert (
        rk_shift["adaptive_steady_violations"]
        < rk_shift["static_steady_violations"]
    )
    assert rk_shift["energy_saving"] > 0
    # signal-free faults emit no heartbeat — the residual ledger must
    # name the right component, and on the reference board the
    # diagnosis replan must convert detection into a strict win
    rk = record["chaos"]["rk3399"]
    assert rk["interconnect"]["dominant_attribution"]["kind"] == "path"
    assert rk["corruption"]["dominant_attribution"]["kind"] == "retry"
    assert (
        rk["interconnect"]["adaptive_steady_violations"]
        < rk["interconnect"]["static_steady_violations"]
    )
    assert (
        rk["corruption"]["adaptive_steady_violations"]
        < rk["corruption"]["static_steady_violations"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="1,2,4",
                        help="comma-separated worker counts (default 1,2,4; "
                        "clamped to the core count)")
    parser.add_argument("--chunk", type=int, default=None,
                        help="grid cells per worker task (default: auto)")
    parser.add_argument("--repetitions", type=int,
                        default=int(os.environ.get("REPRO_REPETITIONS", 60)))
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid (CI smoke)")
    parser.add_argument("--output", default="BENCH_harness.json")
    parser.add_argument("--check-baseline", action="store_true",
                        help="fail if cold serial cells/sec regressed more "
                        "than 20%% vs the committed record at --output")
    args = parser.parse_args(argv)
    jobs_list = sorted({int(j) for j in args.jobs.split(",")})
    baseline = load_baseline(args.output) if args.check_baseline else None
    record = run_scaling(
        jobs_list, args.repetitions, args.quick, args.output,
        chunk=args.chunk,
    )
    if args.check_baseline:
        check_baseline(baseline, record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
