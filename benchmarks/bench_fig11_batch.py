"""Fig 11 varying batch size (see repro.bench.exp_sensitivity.fig11_batch_size)."""

from repro.bench.exp_sensitivity import fig11_batch_size

from conftest import run_and_render


def test_fig11_batch(benchmark, harness):
    """Regenerate: Fig 11 varying batch size."""
    result = run_and_render(benchmark, fig11_batch_size, harness)
    assert result.rows
