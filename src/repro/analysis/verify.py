"""Plan and trace invariant verifier (``python -m repro.analysis.verify``).

The static linter (:mod:`repro.analysis.lint`) keeps nondeterminism out
of the *source*; this module checks the *artifacts* — scheduling plans
before they are simulated, and exported trace streams after a run:

========  ==================================================================
code      invariant
========  ==================================================================
PLN001    the plan's task graph is acyclic: the declared stage
          predecessors (chain order for plans without them) plus the
          data dependencies implied by the codec's step graph must
          admit a topological order
PLN002    step coverage: the plan's tasks cover exactly the codec's step
          decomposition — no missing, duplicated or unknown steps
PLN003    every assigned core id exists on the target board
PLN004    no core hosts two replicas of the *same* stage (warning —
          legitimate for OS/EAS-style placements, pathological for
          model-guided plans)
PLN005    L_set feasibility: the cost model's estimate for the plan
          meets the latency constraint (error when the caller expects a
          feasible plan, warning otherwise)
PLN006    join coverage: the stage graph has a unique sink and every
          stage reaches it, so counting batch completions at the sink
          observes every routed batch (the executor's join barrier and
          retry accounting both rely on this)
TRC001    simulated time is non-decreasing per track (``(pid, tid)``) in
          stream order
TRC002    cumulative energy counters never decrease per track
TRC003    ``X`` spans on one track never overlap — a core cannot run
          two things at once
TRC004    same-timestamp counter updates with different values on one
          track are order-dependent pairs: swapping them changes the
          counter's value at that instant (simulation race hazard;
          warning, aggregated)
TRC005    well-formed quantities: no negative timestamps/durations, and
          integer pid/tid
TRC006    a core emits no task service spans after its permanent-failure
          (``core-failure``) event — dead hardware does no work
TRC007    every ``batch-retry`` event names a batch with a matching
          ``batch-corrupted`` event — retries only happen to batches the
          decode verification actually flagged
HLT001    in a session health report, each window's attributed component
          residuals plus the unattributed remainder sum to the window's
          latency residual
HLT002    health attributions reference live components: the named
          (kind, key) appears in the window's component list, path keys
          are known interconnect classes, stage/core keys are indices
HLT003    every quantity in a health report is finite — a NaN residual
          means the ledger divided by an empty window
FLT001    in a fleet health report (schema v2), no tenant is recorded
          ``running`` on a board recorded dead in the same window
FLT002    admission honesty: every ``admit`` event's tenant shows a
          modeled latency within its ``l_set`` in the admission window
FLT003    breaker-state legality: each board's breaker transitions
          chain legally from ``closed`` (closed→open→half-open→…), and
          replaying them reproduces the per-window recorded state
FLT004    shed-priority order: an overload shed's victim has the lowest
          priority among the tenants then running on that board
FLT005    backoff bounded: every queued retry delay is within the
          jittered cap of the default backoff policy
========  ==================================================================

Severity model: **error** findings make the CLI exit 1; **warning**
findings are printed but only fail with ``--strict``. CI runs the
verifier over every cell the smoke job traces.

This module is importable with the standard library alone (plans and
cost models are duck-typed), so :mod:`repro.obs.check` can reuse the
trace checks without dragging in the simulator.
"""

from __future__ import annotations

import argparse
import json
import math
import numbers
import re
import sys
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "VerifyFinding",
    "INVARIANTS",
    "verify_plan",
    "verify_trace_events",
    "verify_chrome_payload",
    "verify_health",
    "verify_fleet_health",
    "iter_chrome_events",
    "iter_recorder_events",
    "main",
]

#: invariant code -> one-line summary (rendered by README/DESIGN tables)
INVARIANTS: Dict[str, str] = {
    "PLN001": "plan task graph is acyclic under pipeline + data edges",
    "PLN002": "plan covers the codec's step decomposition exactly",
    "PLN003": "every assigned core id exists on the board",
    "PLN004": "no core double-booked within one stage (warning)",
    "PLN005": "plan meets the L_set latency constraint per the cost model",
    "PLN006": "stage graph has a unique sink every stage reaches",
    "TRC001": "simulated time non-decreasing per (pid, tid) track",
    "TRC002": "cumulative energy counters monotone per track",
    "TRC003": "X spans on one track never overlap",
    "TRC004": "no order-dependent same-timestamp counter pairs (warning)",
    "TRC005": "non-negative ts/dur, integer pid/tid",
    "TRC006": "no service spans on a core after its permanent failure",
    "TRC007": "every retried batch has a matching corruption event",
    "HLT001": "health components plus unattributed sum to the window "
              "residual",
    "HLT002": "health attributions reference live components (known "
              "path class, named component present in the window)",
    "HLT003": "health report quantities are all finite",
    "FLT001": "no tenant running on a dead board",
    "FLT002": "admitted implies modeled latency within l_set",
    "FLT003": "breaker transitions legal and replayable from the trace",
    "FLT004": "overload sheds evict the lowest priority first",
    "FLT005": "queued retry delays bounded by the backoff cap",
}

ERROR = "error"
WARNING = "warning"

#: span-overlap tolerance (µs) — absorbs float noise in back-dated spans
_SPAN_EPSILON_US = 1e-6


@dataclass(frozen=True)
class VerifyFinding:
    """One violated invariant."""

    code: str
    severity: str
    message: str
    location: str = ""

    def format(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.code} {self.severity}: {self.message}{where}"


def errors_only(findings: Iterable[VerifyFinding]) -> List[VerifyFinding]:
    return [f for f in findings if f.severity == ERROR]


# ---------------------------------------------------------------------------
# plan invariants
# ---------------------------------------------------------------------------


def _plan_stages(plan: Any) -> List[Tuple[str, Tuple[str, ...]]]:
    """``(task name, step ids)`` per stage, duck-typed off the plan."""
    stages = []
    for task in plan.graph.tasks:
        stages.append((task.name, tuple(task.step_ids)))
    return stages


def _find_cycle(edges: Dict[int, set]) -> Optional[List[int]]:
    """A cycle as a node list (closed walk), or None. Iterative DFS with
    the classic white/grey/black colouring."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in edges}
    parent: Dict[int, int] = {}
    for root in sorted(edges):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, Iterable[int]]] = [(root, iter(sorted(edges[root])))]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour.get(child, WHITE) == GREY:
                    # walk back from node to child via parent links
                    cycle = [child, node]
                    walker = node
                    while walker != child:
                        walker = parent[walker]
                        if walker != child:
                            cycle.append(walker)
                    cycle.reverse()
                    return cycle
                if colour.get(child, WHITE) == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(edges[child]))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def _stage_predecessors(plan: Any) -> List[Tuple[int, ...]]:
    """Declared predecessor indices per stage, duck-typed off the plan.

    Tasks without a ``predecessors`` attribute (plans predating the DAG
    generalization, or minimal fakes in tests) get the chain shape.
    """
    tasks = list(plan.graph.tasks)
    shape: List[Tuple[int, ...]] = []
    for index, task in enumerate(tasks):
        declared = getattr(task, "predecessors", None)
        if declared is None:
            declared = () if index == 0 else (index - 1,)
        shape.append(tuple(int(p) for p in declared))
    return shape


def verify_plan(
    plan: Any,
    *,
    board: Any = None,
    expected_steps: Optional[Sequence[str]] = None,
    step_dependencies: Any = None,
    cost_model: Any = None,
    expect_feasible: bool = False,
) -> List[VerifyFinding]:
    """Check one scheduling plan against PLN001-PLN006.

    ``plan`` needs ``.graph.tasks`` (each with ``.name``/``.step_ids``,
    optionally ``.predecessors``) and ``.assignments``; ``board`` needs
    ``.core_by_id``; ``cost_model`` needs ``.evaluate(plan)`` returning
    an object with ``.feasible`` and ``.infeasibility_reason``;
    ``step_dependencies`` is the codec's step DAG (step id -> producer
    step ids) and replaces PLN001's linear step-order data edges —
    without it, consecutive ``expected_steps`` pairs are assumed to be
    data dependencies, which is only right for chain codecs. All the
    extras are optional — omitted checks are skipped, not failed.
    """
    findings: List[VerifyFinding] = []
    stages = _plan_stages(plan)
    assignments = tuple(tuple(cores) for cores in plan.assignments)

    # PLN002 — step coverage (checked first: PLN001's data edges need a
    # consistent step->stage map, which duplicates would garble)
    step_stage: Dict[str, int] = {}
    duplicated: List[str] = []
    for stage_index, (_, step_ids) in enumerate(stages):
        for step_id in step_ids:
            if step_id in step_stage:
                duplicated.append(step_id)
            else:
                step_stage[step_id] = stage_index
    if duplicated:
        findings.append(
            VerifyFinding(
                code="PLN002",
                severity=ERROR,
                message=f"steps assigned to more than one task: {duplicated}",
            )
        )
    if expected_steps is not None:
        expected = list(expected_steps)
        missing = [s for s in expected if s not in step_stage]
        unknown = [s for s in step_stage if s not in set(expected)]
        if missing:
            findings.append(
                VerifyFinding(
                    code="PLN002",
                    severity=ERROR,
                    message=f"decomposition misses codec steps: {missing}",
                )
            )
        if unknown:
            findings.append(
                VerifyFinding(
                    code="PLN002",
                    severity=ERROR,
                    message=f"decomposition has unknown steps: {unknown}",
                )
            )

    # PLN001 — acyclicity of declared pipeline edges + data edges
    shape = _stage_predecessors(plan)
    pipeline_edges: Dict[int, set] = {
        index: set() for index in range(len(stages))
    }
    for stage_index, producers in enumerate(shape):
        for producer in producers:
            if 0 <= producer < len(stages) and producer != stage_index:
                pipeline_edges[producer].add(stage_index)
            elif producer == stage_index:
                pipeline_edges[stage_index].add(stage_index)
    edges: Dict[int, set] = {
        index: set(targets) for index, targets in pipeline_edges.items()
    }
    if not duplicated:
        if step_dependencies is not None:
            for consumer_step, producer_steps in dict(step_dependencies).items():
                if consumer_step not in step_stage:
                    continue
                target = step_stage[consumer_step]
                for producer_step in producer_steps:
                    source = step_stage.get(producer_step)
                    if source is not None and source != target:
                        edges[source].add(target)
        elif expected_steps is not None:
            ordered = [s for s in expected_steps if s in step_stage]
            for producer, consumer in zip(ordered, ordered[1:]):
                source = step_stage[producer]
                target = step_stage[consumer]
                if source != target:
                    edges[source].add(target)
    cycle = _find_cycle(edges)
    if cycle is not None:
        names = " -> ".join(stages[index][0] for index in cycle + cycle[:1])
        findings.append(
            VerifyFinding(
                code="PLN001",
                severity=ERROR,
                message=(
                    "plan dependencies are cyclic (declared stage "
                    "predecessors contradict the codec's step "
                    f"dependencies): {names}"
                ),
            )
        )

    # PLN006 — join coverage over the declared pipeline edges: a unique
    # sink that every stage reaches. Skipped when PLN001 already fired —
    # reachability over a cyclic graph would only repeat the finding.
    if cycle is None and len(stages) > 0:
        sinks = sorted(
            index
            for index in range(len(stages))
            if not pipeline_edges[index]
        )
        if len(sinks) != 1:
            names = ", ".join(stages[index][0] for index in sinks)
            findings.append(
                VerifyFinding(
                    code="PLN006",
                    severity=ERROR,
                    message=(
                        f"stage graph has {len(sinks)} sinks ({names or 'none'}); "
                        "batch completion is only counted at a unique "
                        "final stage"
                    ),
                )
            )
        else:
            sink = sinks[0]
            reaches = {sink}
            frontier = [sink]
            incoming: Dict[int, set] = {i: set() for i in range(len(stages))}
            for source, targets in pipeline_edges.items():
                for target in targets:
                    incoming[target].add(source)
            while frontier:
                node = frontier.pop()
                for producer in incoming[node]:
                    if producer not in reaches:
                        reaches.add(producer)
                        frontier.append(producer)
            stranded = [
                stages[index][0]
                for index in range(len(stages))
                if index not in reaches
            ]
            if stranded:
                findings.append(
                    VerifyFinding(
                        code="PLN006",
                        severity=ERROR,
                        message=(
                            f"stage(s) {stranded} never reach the sink "
                            f"{stages[sink][0]} — their batches would be "
                            "produced but never counted complete"
                        ),
                    )
                )

    # PLN003 — core ids exist on the board
    if board is not None:
        valid = set(board.core_by_id)
        for stage_index, cores in enumerate(assignments):
            bad = sorted(set(core for core in cores if core not in valid))
            if bad:
                findings.append(
                    VerifyFinding(
                        code="PLN003",
                        severity=ERROR,
                        message=(
                            f"stage {stage_index} assigns unknown core "
                            f"id(s) {bad}; board has {sorted(valid)}"
                        ),
                        location=f"stage {stage_index}",
                    )
                )

    # PLN004 — within-stage double-booking (warning: EAS/OS placements
    # legitimately stack two workers on one little core)
    for stage_index, cores in enumerate(assignments):
        seen: Dict[int, int] = {}
        for core in cores:
            seen[core] = seen.get(core, 0) + 1
        booked = sorted(core for core, count in seen.items() if count > 1)
        if booked:
            findings.append(
                VerifyFinding(
                    code="PLN004",
                    severity=WARNING,
                    message=(
                        f"stage {stage_index} places multiple replicas on "
                        f"core(s) {booked}; replicas of one stage share "
                        "that core's capacity"
                    ),
                    location=f"stage {stage_index}",
                )
            )

    # PLN005 — L_set feasibility per the cost model
    if cost_model is not None:
        estimate = cost_model.evaluate(plan)
        if not estimate.feasible:
            findings.append(
                VerifyFinding(
                    code="PLN005",
                    severity=ERROR if expect_feasible else WARNING,
                    message=(
                        "plan misses the latency constraint: "
                        f"{estimate.infeasibility_reason or 'infeasible'}"
                    ),
                )
            )

    return findings


# ---------------------------------------------------------------------------
# trace invariants
# ---------------------------------------------------------------------------


def iter_chrome_events(payload: Any) -> Iterable[Dict[str, Any]]:
    """Normalized event dicts from a parsed Chrome trace-event object.

    Metadata (``ph == "M"``) events are skipped — they carry no
    timeline. Malformed entries are passed through with defaulted fields
    so TRC005 can report them instead of crashing.
    """
    events = payload.get("traceEvents", []) if isinstance(payload, dict) else []
    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        args = event.get("args")
        yield {
            "index": index,
            "name": event.get("name", ""),
            "ph": event.get("ph", ""),
            "ts": event.get("ts", 0),
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
            "dur": event.get("dur", 0),
            "cat": event.get("cat", ""),
            "args": dict(args) if isinstance(args, dict) else {},
        }


def iter_recorder_events(recorder: Any) -> Iterable[Dict[str, Any]]:
    """Normalized event dicts straight from a live
    :class:`repro.obs.trace.TraceRecorder` (duck-typed: anything with an
    ``events`` list of ``TraceEvent``-shaped objects)."""
    for index, event in enumerate(recorder.events):
        yield {
            "index": index,
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts_us,
            "pid": event.pid,
            "tid": event.tid,
            "dur": event.dur_us,
            "cat": event.category,
            "args": dict(event.args),
        }


def _is_energy_counter(event: Dict[str, Any]) -> bool:
    name = event["name"]
    return event["ph"] == "C" and (
        event.get("cat") == "energy" or name.startswith("energy.")
    )


def _counter_value(event: Dict[str, Any]) -> Optional[float]:
    value = event["args"].get("value")
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return float(value)
    return None


def _track(event: Dict[str, Any]) -> Tuple[Any, Any]:
    return (event["pid"], event["tid"])


def verify_trace_events(
    events: Iterable[Dict[str, Any]],
) -> List[VerifyFinding]:
    """Check a normalized event stream against TRC001-TRC007.

    ``events`` must be in *stream order* (the order the recorder emitted
    them / the order they appear in the exported file) — TRC001 and
    TRC004 are statements about that order.
    """
    findings: List[VerifyFinding] = []

    last_ts: Dict[Tuple[Any, Any], float] = {}
    ts_violations: Dict[Tuple[Any, Any], Tuple[int, int]] = {}
    energy_last: Dict[Tuple[Any, Any, str], float] = {}
    spans: Dict[Tuple[Any, Any], List[Tuple[float, float, int]]] = {}
    hazard_count = 0
    hazard_example: Optional[str] = None
    previous: Optional[Dict[str, Any]] = None
    malformed = 0
    malformed_example: Optional[str] = None
    # TRC006/TRC007 raw material
    core_failures: Dict[Tuple[Any, Any], float] = {}
    task_spans: List[Tuple[Any, Any, float, int]] = []
    corrupted: Dict[Any, set] = {}
    retries: List[Tuple[Any, Any, int]] = []

    for event in events:
        index = event["index"]
        ts = event["ts"]
        dur = event["dur"]

        # TRC005 — well-formed quantities
        bad_ts = (
            not isinstance(ts, numbers.Real) or isinstance(ts, bool) or ts < 0
        )
        bad_dur = (
            not isinstance(dur, numbers.Real)
            or isinstance(dur, bool)
            or dur < 0
        )
        bad_track = any(
            not isinstance(event[key], int) or isinstance(event[key], bool)
            for key in ("pid", "tid")
        )
        if bad_ts or bad_dur or bad_track:
            malformed += 1
            if malformed_example is None:
                what = "ts" if bad_ts else ("dur" if bad_dur else "pid/tid")
                malformed_example = (
                    f"traceEvents[{index}] {event['name']!r}: bad {what}"
                )
            previous = event
            continue
        ts = float(ts)
        track = _track(event)

        # TRC001 — per-track monotone simulated time
        seen = last_ts.get(track)
        if seen is not None and ts < seen:
            count, first = ts_violations.get(track, (0, index))
            ts_violations[track] = (count + 1, first)
        if seen is None or ts > seen:
            last_ts[track] = ts

        # TRC002 — cumulative energy counters never decrease
        if _is_energy_counter(event):
            value = _counter_value(event)
            if value is not None:
                key = (event["pid"], event["tid"], event["name"])
                before = energy_last.get(key)
                if before is not None and value < before:
                    findings.append(
                        VerifyFinding(
                            code="TRC002",
                            severity=ERROR,
                            message=(
                                f"cumulative counter {event['name']!r} "
                                f"drops {before} -> {value}"
                            ),
                            location=(
                                f"traceEvents[{index}] pid={event['pid']} "
                                f"tid={event['tid']}"
                            ),
                        )
                    )
                energy_last[key] = value

        # TRC003 — collect X spans per track
        if event["ph"] == "X":
            spans.setdefault(track, []).append((ts, ts + float(dur), index))

        # TRC006/TRC007 — collect fault events and task spans
        if event["ph"] == "X" and event.get("cat") == "task":
            task_spans.append((event["pid"], event["tid"], ts, index))
        elif event["name"] == "core-failure":
            core = event["args"].get("core")
            if core is not None:
                key = (event["pid"], core)
                if key not in core_failures or ts < core_failures[key]:
                    core_failures[key] = ts
        elif event["name"] == "batch-corrupted":
            batch = event["args"].get("batch")
            if batch is not None:
                corrupted.setdefault(event["pid"], set()).add(batch)
        elif event["name"] == "batch-retry":
            batch = event["args"].get("batch")
            if batch is not None:
                retries.append((event["pid"], batch, index))

        # TRC004 — order-dependent same-timestamp counter pairs
        if (
            previous is not None
            and event["ph"] == "C"
            and previous.get("ph") == "C"
            and _track(previous) == track
            and previous.get("ts") == event["ts"]
            and previous.get("name") == event["name"]
        ):
            before_value = _counter_value(previous)
            after_value = _counter_value(event)
            if (
                before_value is not None
                and after_value is not None
                and before_value != after_value
            ):
                hazard_count += 1
                if hazard_example is None:
                    hazard_example = (
                        f"traceEvents[{index}] {event['name']!r} at "
                        f"ts={ts}: {before_value} vs {after_value}"
                    )
        previous = event

    if malformed:
        findings.append(
            VerifyFinding(
                code="TRC005",
                severity=ERROR,
                message=(
                    f"{malformed} event(s) with negative or non-numeric "
                    "ts/dur or non-integer pid/tid"
                ),
                location=malformed_example or "",
            )
        )
    for track, (count, first) in sorted(ts_violations.items(), key=str):
        findings.append(
            VerifyFinding(
                code="TRC001",
                severity=ERROR,
                message=(
                    f"simulated time goes backwards {count} time(s) on "
                    f"track pid={track[0]} tid={track[1]}"
                ),
                location=f"first at traceEvents[{first}]",
            )
        )
    for track, track_spans in sorted(spans.items(), key=str):
        track_spans.sort(key=lambda span: (span[0], span[1], span[2]))
        open_end = None
        open_index = None
        for start, end, index in track_spans:
            if open_end is not None and start < open_end - _SPAN_EPSILON_US:
                findings.append(
                    VerifyFinding(
                        code="TRC003",
                        severity=ERROR,
                        message=(
                            f"span starting at ts={start} overlaps the "
                            f"span ending at ts={open_end} on track "
                            f"pid={track[0]} tid={track[1]}"
                        ),
                        location=(
                            f"traceEvents[{index}] vs "
                            f"traceEvents[{open_index}]"
                        ),
                    )
                )
            if open_end is None or end > open_end:
                open_end = end
                open_index = index
    # TRC006 — no service spans on a core after its permanent failure.
    # Strict ">": a span can legitimately *start* at the failure instant
    # (the failure fires at a batch boundary the span helped produce).
    if core_failures:
        for pid, tid, ts, index in task_spans:
            failed_at = core_failures.get((pid, tid))
            if failed_at is not None and ts > failed_at:
                findings.append(
                    VerifyFinding(
                        code="TRC006",
                        severity=ERROR,
                        message=(
                            f"task span starts at ts={ts} on core {tid} "
                            f"after its permanent failure at "
                            f"ts={failed_at}"
                        ),
                        location=f"traceEvents[{index}] pid={pid}",
                    )
                )
    # TRC007 — every retried batch was flagged corrupt first
    for pid, batch, index in retries:
        if batch not in corrupted.get(pid, ()):
            findings.append(
                VerifyFinding(
                    code="TRC007",
                    severity=ERROR,
                    message=(
                        f"batch {batch} retried without a matching "
                        "batch-corrupted event"
                    ),
                    location=f"traceEvents[{index}] pid={pid}",
                )
            )
    if hazard_count:
        findings.append(
            VerifyFinding(
                code="TRC004",
                severity=WARNING,
                message=(
                    f"{hazard_count} same-timestamp counter pair(s) whose "
                    "order changes the counter value at that instant "
                    "(simulation race hazard if emission order ever "
                    "stops being deterministic)"
                ),
                location=hazard_example or "",
            )
        )

    return findings


def verify_chrome_payload(payload: Any) -> List[VerifyFinding]:
    """Trace invariants over a parsed Chrome trace-event object."""
    return verify_trace_events(iter_chrome_events(payload))


# ---------------------------------------------------------------------------
# health-report invariants
# ---------------------------------------------------------------------------

#: HLT001 tolerance — the ledger sums residual slices with fsum, so any
#: drift beyond float noise means writer and checker disagree.
_RESIDUAL_EPSILON = 1e-6

#: interconnect path classes a "path" attribution may name
_KNOWN_PATHS = ("local", "c0", "c1", "c2")


def _health_number(value: Any) -> Optional[float]:
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return float(value)
    return None


def verify_health(payload: Any) -> List[VerifyFinding]:
    """Arithmetic invariants (HLT001-HLT003) of a parsed health report.

    Expects the report to be schema-valid already
    (:func:`repro.obs.check.validate_health` runs the schema layer);
    here only the cross-field arithmetic is enforced, duck-typed over
    the raw JSON so this module stays importable with the standard
    library alone.
    """
    findings: List[VerifyFinding] = []
    if not isinstance(payload, dict):
        return findings
    windows = payload.get("windows")
    if not isinstance(windows, list):
        return findings
    for index, window in enumerate(windows):
        if not isinstance(window, dict):
            continue
        where = f"windows[{index}]"
        # HLT003 — everything finite
        numeric: List[Tuple[str, Any]] = [
            (name, window.get(name))
            for name in (
                "measured_latency_us_per_byte",
                "predicted_latency_us_per_byte",
                "latency_residual_us_per_byte",
                "measured_energy_uj_per_byte",
                "predicted_energy_uj_per_byte",
                "energy_residual_uj_per_byte",
                "unattributed_us_per_byte",
            )
        ]
        components = window.get("components")
        components = components if isinstance(components, list) else []
        for c_index, component in enumerate(components):
            if isinstance(component, dict):
                numeric.append((
                    f"components[{c_index}].residual_us_per_byte",
                    component.get("residual_us_per_byte"),
                ))
                numeric.append((
                    f"components[{c_index}].score",
                    component.get("score"),
                ))
        attribution = window.get("attribution")
        if isinstance(attribution, dict):
            for name in ("score", "residual_us_per_byte", "confidence"):
                numeric.append((f"attribution.{name}",
                                attribution.get(name)))
        finite = True
        for name, value in numeric:
            parsed = _health_number(value)
            if parsed is None or not math.isfinite(parsed):
                finite = False
                findings.append(
                    VerifyFinding(
                        code="HLT003",
                        severity=ERROR,
                        message=f"{name} is not a finite number",
                        location=where,
                    )
                )
        if not finite:
            continue
        # HLT001 — components + unattributed == window residual
        residual = float(window["latency_residual_us_per_byte"])
        attributed = sum(
            float(component["residual_us_per_byte"])
            for component in components
            if isinstance(component, dict)
        ) + float(window["unattributed_us_per_byte"])
        scale = max(abs(residual), abs(attributed), 1.0)
        if abs(residual - attributed) > _RESIDUAL_EPSILON * scale:
            findings.append(
                VerifyFinding(
                    code="HLT001",
                    severity=ERROR,
                    message=(
                        f"component residuals sum to {attributed:.9g} "
                        f"but the window residual is {residual:.9g}"
                    ),
                    location=where,
                )
            )
        # HLT002 — the attribution names a component that exists
        if isinstance(attribution, dict):
            kind = attribution.get("kind")
            key = attribution.get("key")
            named = {
                (component.get("kind"), component.get("key"))
                for component in components
                if isinstance(component, dict)
            }
            if (kind, key) not in named:
                findings.append(
                    VerifyFinding(
                        code="HLT002",
                        severity=ERROR,
                        message=(
                            f"attribution names {kind}:{key} but the "
                            "window has no such component"
                        ),
                        location=where,
                    )
                )
            if kind == "path" and key not in _KNOWN_PATHS:
                findings.append(
                    VerifyFinding(
                        code="HLT002",
                        severity=ERROR,
                        message=(
                            f"attribution names unknown interconnect "
                            f"path {key!r}"
                        ),
                        location=where,
                    )
                )
            if kind in ("retry", "core"):
                try:
                    parsed_key = int(key)
                except (TypeError, ValueError):
                    parsed_key = None
                if parsed_key is None or parsed_key < 0:
                    findings.append(
                        VerifyFinding(
                            code="HLT002",
                            severity=ERROR,
                            message=(
                                f"attribution {kind} key {key!r} is not "
                                "a non-negative index"
                            ),
                            location=where,
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# FLT001-FLT005 — fleet health reports (schema v2)
# ---------------------------------------------------------------------------

#: legal breaker edges — mirrors repro.fleet.breaker.LEGAL_TRANSITIONS
#: (duplicated so this module stays stdlib-importable)
_FLEET_BREAKER_EDGES = frozenset({
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "closed"),
    ("half-open", "open"),
})

#: FLT005 bound: the default BackoffPolicy's jittered cap,
#: cap_windows * (1 + jitter) = 8 * 1.25
_FLEET_BACKOFF_CAP_WINDOWS = 10.0

_RETRY_DELAY_PATTERN = re.compile(r"retry in ([0-9][0-9.]*) windows")


def verify_fleet_health(payload: Any) -> List[VerifyFinding]:
    """Fleet invariants (FLT001-FLT005) of a parsed v2 health report.

    Duck-typed over the raw JSON like :func:`verify_health`; the report
    is expected to be schema-valid already
    (:func:`repro.obs.check.validate_health` handles that layer).
    """
    findings: List[VerifyFinding] = []
    if not isinstance(payload, dict):
        return findings
    windows = payload.get("windows")
    events = payload.get("events")
    windows = windows if isinstance(windows, list) else []
    events = events if isinstance(events, list) else []

    # indexed views of the window records
    tenants_by_window: Dict[int, Dict[int, dict]] = {}
    boards_by_window: Dict[int, Dict[int, dict]] = {}
    for window in windows:
        if not isinstance(window, dict):
            continue
        w_index = window.get("window_index")
        if not isinstance(w_index, int):
            continue
        tenants_by_window[w_index] = {
            t["tenant_id"]: t
            for t in window.get("tenants", [])
            if isinstance(t, dict) and isinstance(t.get("tenant_id"), int)
        }
        boards_by_window[w_index] = {
            b["board_index"]: b
            for b in window.get("boards", [])
            if isinstance(b, dict) and isinstance(b.get("board_index"), int)
        }

    # FLT001 — no tenant running on a dead board
    for w_index in sorted(tenants_by_window):
        boards = boards_by_window.get(w_index, {})
        for tenant_id in sorted(tenants_by_window[w_index]):
            tenant = tenants_by_window[w_index][tenant_id]
            if tenant.get("state") != "running":
                continue
            board = boards.get(tenant.get("board_index"))
            if board is not None and board.get("alive") is False:
                findings.append(
                    VerifyFinding(
                        code="FLT001",
                        severity=ERROR,
                        message=(
                            f"tenant {tenant_id} is running on dead "
                            f"board {tenant.get('board_index')}"
                        ),
                        location=f"windows[{w_index}]",
                    )
                )

    # FLT002 — admit events are honest about the SLO
    for event in events:
        if not isinstance(event, dict) or event.get("kind") != "admit":
            continue
        w_index = event.get("window_index")
        tenant_id = event.get("tenant_id")
        tenant = tenants_by_window.get(w_index, {}).get(tenant_id)
        if tenant is None or tenant.get("state") != "running":
            continue
        modeled = _health_number(tenant.get("modeled_latency_us_per_byte"))
        l_set = _health_number(tenant.get("l_set_us_per_byte"))
        if modeled is None or l_set is None or modeled > l_set:
            findings.append(
                VerifyFinding(
                    code="FLT002",
                    severity=ERROR,
                    message=(
                        f"tenant {tenant_id} admitted in window "
                        f"{w_index} with modeled latency {modeled} "
                        f"above its l_set {l_set}"
                    ),
                    location=f"events[{event.get('sequence')}]",
                )
            )

    # FLT003 — breaker transitions chain legally and replay to the
    # per-window recorded states
    transitions_by_board: Dict[int, List[Tuple[int, str, str]]] = {}
    for event in events:
        if not isinstance(event, dict) or event.get("kind") != "breaker":
            continue
        board_index = event.get("board_index")
        detail = str(event.get("detail", ""))
        edge = detail.split(" (")[0]
        if "->" not in edge or not isinstance(board_index, int):
            findings.append(
                VerifyFinding(
                    code="FLT003",
                    severity=ERROR,
                    message=f"malformed breaker event detail {detail!r}",
                    location=f"events[{event.get('sequence')}]",
                )
            )
            continue
        from_state, to_state = edge.split("->", 1)
        transitions_by_board.setdefault(board_index, []).append(
            (event.get("window_index"), from_state, to_state)
        )
    for board_index in sorted(transitions_by_board):
        state = "closed"
        for w_index, from_state, to_state in transitions_by_board[
            board_index
        ]:
            if from_state != state:
                findings.append(
                    VerifyFinding(
                        code="FLT003",
                        severity=ERROR,
                        message=(
                            f"board {board_index} breaker trace broken: "
                            f"at {state!r} but transition departs from "
                            f"{from_state!r} in window {w_index}"
                        ),
                        location=f"windows[{w_index}]",
                    )
                )
            if (from_state, to_state) not in _FLEET_BREAKER_EDGES:
                findings.append(
                    VerifyFinding(
                        code="FLT003",
                        severity=ERROR,
                        message=(
                            f"board {board_index} illegal breaker "
                            f"transition {from_state}->{to_state} in "
                            f"window {w_index}"
                        ),
                        location=f"windows[{w_index}]",
                    )
                )
            state = to_state
    # replay check: the state recorded for a board each window equals
    # the state after all transitions up to and including that window
    for board_index in sorted(
        set().union(*[set(b) for b in boards_by_window.values()] or [set()])
    ):
        trace = transitions_by_board.get(board_index, [])
        for w_index in sorted(boards_by_window):
            board = boards_by_window[w_index].get(board_index)
            if board is None:
                continue
            state = "closed"
            for t_window, _from, to_state in trace:
                if isinstance(t_window, int) and t_window <= w_index:
                    state = to_state
            if board.get("breaker_state") != state:
                findings.append(
                    VerifyFinding(
                        code="FLT003",
                        severity=ERROR,
                        message=(
                            f"board {board_index} records breaker state "
                            f"{board.get('breaker_state')!r} in window "
                            f"{w_index} but the transition trace "
                            f"replays to {state!r}"
                        ),
                        location=f"windows[{w_index}]",
                    )
                )

    # FLT004 — overload sheds evict the lowest priority first
    for event in events:
        if not isinstance(event, dict) or event.get("kind") != "shed":
            continue
        if not str(event.get("detail", "")).startswith("overload"):
            continue
        w_index = event.get("window_index")
        victim = tenants_by_window.get(w_index, {}).get(
            event.get("tenant_id")
        )
        if victim is None:
            continue
        victim_priority = victim.get("priority")
        for tenant_id in sorted(tenants_by_window.get(w_index, {})):
            tenant = tenants_by_window[w_index][tenant_id]
            if (
                tenant.get("state") == "running"
                and tenant.get("board_index") == event.get("board_index")
                and isinstance(tenant.get("priority"), int)
                and isinstance(victim_priority, int)
                and tenant["priority"] < victim_priority
            ):
                findings.append(
                    VerifyFinding(
                        code="FLT004",
                        severity=ERROR,
                        message=(
                            f"shed victim {event.get('tenant_id')} "
                            f"(priority {victim_priority}) outranks "
                            f"still-running tenant {tenant_id} "
                            f"(priority {tenant['priority']}) on board "
                            f"{event.get('board_index')}"
                        ),
                        location=f"events[{event.get('sequence')}]",
                    )
                )

    # FLT005 — queued retry delays bounded by the backoff cap
    for event in events:
        if not isinstance(event, dict):
            continue
        if event.get("kind") not in ("queue", "shed"):
            continue
        match = _RETRY_DELAY_PATTERN.search(str(event.get("detail", "")))
        if match is None:
            continue
        delay = float(match.group(1))
        if delay > _FLEET_BACKOFF_CAP_WINDOWS + 1e-9:
            findings.append(
                VerifyFinding(
                    code="FLT005",
                    severity=ERROR,
                    message=(
                        f"retry delay {delay} windows exceeds the "
                        f"backoff cap {_FLEET_BACKOFF_CAP_WINDOWS}"
                    ),
                    location=f"events[{event.get('sequence')}]",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description=(
            "trace-stream and health-report invariant verifier "
            "(TRC001-TRC007, HLT001-HLT003, FLT001-FLT005)"
        ),
    )
    parser.add_argument("traces", nargs="+", metavar="TRACE.json")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too, not only errors",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print findings as JSON instead of human output",
    )
    args = parser.parse_args(argv)

    all_findings: List[Tuple[str, VerifyFinding]] = []
    status = 0
    for path in args.traces:
        try:
            with open(path, "r", encoding="utf-8") as source:
                text = source.read()
        except OSError as error:
            print(f"{path}: unreadable trace: {error}", file=sys.stderr)
            status = 2
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            # An NDJSON tail of per-window health records (the format
            # `cstream --health-out` streams) is one JSON object per
            # line; wrap it into a session-shaped payload.
            try:
                records = [
                    json.loads(line)
                    for line in text.splitlines()
                    if line.strip()
                ]
            except json.JSONDecodeError:
                records = []
            if records and all(isinstance(r, dict) for r in records):
                payload = {"windows": records}
            else:
                print(
                    f"{path}: unreadable trace: {error}", file=sys.stderr
                )
                status = 2
                continue
        if isinstance(payload, dict) and payload.get("schema_version") == 2:
            checked = verify_fleet_health(payload)
        elif isinstance(payload, dict) and "windows" in payload:
            checked = verify_health(payload)
        else:
            checked = verify_chrome_payload(payload)
        for finding in checked:
            all_findings.append((path, finding))

    errors = sum(1 for _, f in all_findings if f.severity == ERROR)
    warnings = len(all_findings) - errors
    if args.as_json:
        json.dump(
            {
                "version": 1,
                "findings": [
                    dict(asdict(finding), path=path)
                    for path, finding in all_findings
                ],
                "errors": errors,
                "warnings": warnings,
                "invariants": INVARIANTS,
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for path, finding in all_findings:
            print(f"{path}: {finding.format()}")
        print(
            f"checked {len(args.traces)} trace(s): "
            f"{errors} error(s), {warnings} warning(s)"
        )
    if status == 0 and (errors or (args.strict and warnings)):
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
