"""Whole-program determinism taint + unit consistency
(``python -m repro.analysis.flow``).

Sitting on top of the project call graph (:mod:`repro.analysis.callgraph`),
this module runs the two analyses the per-file linter cannot:

**Determinism taint (DET001–DET005).** Nondeterminism sources — wall
clocks, global/unseeded RNGs, environment reads, set-order iteration and
unsorted filesystem enumeration, found with the *same* CSA matchers the
linter uses — are propagated transitively through the call graph. Any
path from a strict-package entry point to a source is a finding, printed
with the full call chain:

========  ==================================================================
code      rule
========  ==================================================================
DET001    a wall-clock read is reachable from a deterministic entry point
DET002    a global/unseeded RNG or OS entropy source is reachable
DET003    an environment read is reachable
DET004    an iteration-order hazard (set iteration, unsorted directory
          listing) is reachable
DET005    a ``# det: pure`` contract is violated: the audited function
          contains a direct unsuppressed source, or carries no
          justification
========  ==================================================================

Entry points are the simulator's public faces: ``Scheduler.schedule``,
``PipelineExecutor.run*``, the :class:`~repro.simcore.engine.Simulator`
event machinery, and every compressor ``compress``/``decompress``.

Chains are cut by audited contracts: a ``# det: pure — why`` comment on
a def marks the function as verified side-effect-free for simulation
results (typical for write-only instrumentation and for conservative
duck-dispatch edges), and :data:`EXTERNAL_CONTRACTS` plays the same role
for stdlib/numpy calls. Every project contract is re-verified shallowly
— a direct source inside a contracted body is DET005; its transitive
callees remain the auditor's responsibility and are listed in the JSON
report for review. Individual source sites are suppressed with
``# det: ignore[DET00x]`` (or their already-audited ``# csa: ignore``
equivalent) plus a nearby why-comment.

**Unit consistency (CSU001–CSU003).** The repo encodes units in names —
``*_us``, ``*_mhz``, ``*_mj``, ``*_bytes``, ``*_us_per_byte`` — and this
pass infers them across expressions, assignments, returns and
call-argument bindings:

========  ==================================================================
code      rule
========  ==================================================================
CSU001    addition/subtraction of two quantities with different inferred
          units (``x_us + y_uj``)
CSU002    comparison of two quantities with different inferred units
CSU003    unit-changing binding without an explicit conversion: an
          assignment, return or call-argument where the value's unit
          contradicts the target name's unit
========  ==================================================================

Multiplying or dividing by a literal or an unclassified name makes the
unit *unknown* (that is what an explicit conversion factor looks like),
so only structurally pure unit expressions are ever flagged — the pass
is deliberately conservative. Suppress single sites with
``# csu: ignore[CSU00x]``.

Exit codes follow the analysis-CLI convention: 0 clean, 1 unsuppressed
findings, 2 usage error (unreadable path, bad report destination).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis import lint
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    SourceSite,
    build_graph,
)

__all__ = [
    "FLOW_RULES",
    "STRICT_PACKAGES",
    "ENTRY_POINTS",
    "EXTERNAL_CONTRACTS",
    "FlowFinding",
    "FlowReport",
    "analyze",
    "check_units",
    "main",
]

#: rule code -> one-line summary (rendered by the README/DESIGN tables)
FLOW_RULES: Dict[str, str] = {
    "DET001": "wall-clock read reachable from a deterministic entry point",
    "DET002": "global/unseeded RNG or entropy source reachable",
    "DET003": "environment read reachable",
    "DET004": "iteration-order hazard reachable (set/dir-order)",
    "DET005": "det: pure contract violated (direct source or missing "
              "justification)",
    "CSU001": "addition/subtraction of mismatched units",
    "CSU002": "comparison of mismatched units",
    "CSU003": "unit-changing binding without an explicit conversion",
}

_KIND_TO_CODE = {
    "clock": "DET001",
    "rng": "DET002",
    "env": "DET003",
    "order": "DET004",
}

#: packages whose entry points anchor the taint pass and whose files get
#: the unit checker; `control` joins the CSA strict set because the
#: online controller's decisions feed directly back into measured runs
STRICT_PACKAGES = frozenset(lint.STRICT_PACKAGES | {"control"})

#: (module prefix *below the package root*, class selector, method
#: regex) — the strict-package entry points whose transitive purity the
#: headline claims rest on. Root-relative so fixture packages in tests
#: anchor the same way the real ``repro`` package does. Class selector:
#: a name, "*" for any class, None for module functions.
ENTRY_POINTS: Tuple[Tuple[str, Optional[str], str], ...] = (
    ("core.scheduler", "Scheduler", r"schedule"),
    ("runtime.executor", "PipelineExecutor", r"run.*"),
    ("simcore.engine", "Simulator", r"run|timeout|event|process|all_of"),
    ("simcore.engine", "Store", r"put|get"),
    ("simcore.engine", "Event", r"succeed"),
    ("compression", "*", r"compress|decompress"),
    ("fleet.gateway", "Gateway", r"run"),
)

#: stdlib/numpy roots audited as determinism-safe: calling into them
#: introduces no wall clock, entropy, env read or iteration-order
#: hazard (the CSA matchers catch the exceptions — time.*, random.*,
#: os.environ/getenv/urandom, glob.* — at the call site itself, before
#: the external cut applies). Externals *outside* this registry are
#: surfaced in the report's ``external_unaudited`` section.
EXTERNAL_CONTRACTS = frozenset({
    # builtins (callables surface as bare names)
    "abs", "all", "any", "bool", "bytes", "bytearray", "callable", "chr",
    "dict", "divmod", "enumerate", "filter", "float", "format", "frozenset",
    "getattr", "hasattr", "hash", "id", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object", "ord",
    "pow", "print", "range", "repr", "reversed", "round", "set", "setattr",
    "sorted", "str", "sum", "super", "tuple", "type", "vars", "zip",
    "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
    "RuntimeError", "RuntimeWarning", "NotImplementedError", "StopIteration",
    "AttributeError", "OSError", "AssertionError", "DeprecationWarning",
    "open",
    # stdlib module roots
    "math", "cmath", "statistics", "itertools", "functools", "operator",
    "collections", "heapq", "bisect", "array", "struct", "enum",
    "dataclasses", "typing", "abc", "contextlib", "copy", "json", "re",
    "string", "textwrap", "warnings", "weakref", "zlib", "hashlib",
    "pickle", "io", "gc", "threading", "numbers", "fractions", "decimal",
    # numpy minus numpy.random (CSA002 matches the legacy global RNG)
    "numpy", "np",
})

_CSU_SUPPRESS_RE = lint.CSU_SUPPRESS_RE


@dataclass(frozen=True)
class FlowFinding:
    """One taint or unit finding."""

    code: str
    path: str
    line: int
    message: str
    chain: Tuple[str, ...] = ()

    def format(self) -> str:
        head = f"{self.path}:{self.line}: {self.code} {self.message}"
        if not self.chain:
            return head
        rendered = "\n".join(
            f"    {'-> ' if index else '   '}{hop}"
            for index, hop in enumerate(self.chain)
        )
        return f"{head}\n{rendered}"


@dataclass
class FlowReport:
    """Everything one run of the flow pass learned."""

    root: str
    files: int
    functions: int
    entry_points: List[str]
    findings: List[FlowFinding]
    contracts: Dict[str, str]
    contract_subtrees: Dict[str, List[str]]
    worklist: List[Dict[str, Any]]
    external_unaudited: List[str]
    cache: Dict[str, int] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return {
            "version": 1,
            "root": self.root,
            "files": self.files,
            "functions": self.functions,
            "entry_points": self.entry_points,
            "findings": [
                {
                    "code": f.code,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "chain": list(f.chain),
                }
                for f in self.findings
            ],
            "counts": dict(sorted(counts.items())),
            "contracts": dict(sorted(self.contracts.items())),
            "contract_subtrees": {
                k: list(v) for k, v in sorted(self.contract_subtrees.items())
            },
            "worklist": self.worklist,
            "external_unaudited": self.external_unaudited,
            "cache": self.cache,
            "rules": FLOW_RULES,
        }


# -- determinism taint --------------------------------------------------------


def _entry_functions(graph: CallGraph) -> List[FunctionInfo]:
    hits: Dict[str, FunctionInfo] = {}
    roots = {module.split(".")[0] for module in graph.modules}
    for module_prefix, cls, pattern in ENTRY_POINTS:
        compiled = re.compile(pattern)
        for root in sorted(roots):
            for fn in graph.match(f"{root}.{module_prefix}", cls, compiled):
                hits[fn.qualname] = fn
    return sorted(hits.values(), key=lambda f: f.qualname)


def _hop(fn: FunctionInfo) -> str:
    return f"{fn.short} ({fn.module}:{fn.line})"


def _reach(
    graph: CallGraph, start: FunctionInfo
) -> Dict[str, Optional[str]]:
    """BFS over call edges from ``start``; contracted callees are not
    entered (the audited cut). Returns node -> BFS parent."""
    parents: Dict[str, Optional[str]] = {start.qualname: None}
    queue = [start.qualname]
    while queue:
        current = queue.pop(0)
        fn = graph.functions.get(current)
        if fn is None:
            continue
        if fn.contract is not None and current != start.qualname:
            continue  # audited pure: do not traverse into it
        for callee in sorted(graph.callees(current)):
            if callee not in parents:
                parents[callee] = current
                queue.append(callee)
    return parents


def _chain(
    graph: CallGraph, parents: Mapping[str, Optional[str]], node: str
) -> Tuple[str, ...]:
    hops: List[str] = []
    cursor: Optional[str] = node
    while cursor is not None:
        fn = graph.functions[cursor]
        hops.append(_hop(fn))
        cursor = parents[cursor]
    return tuple(reversed(hops))


def _taint_findings(graph: CallGraph) -> Tuple[List[FlowFinding], List[str]]:
    findings: List[FlowFinding] = []
    entries = _entry_functions(graph)
    #: (path, line, rule) -> shortest chain seen, for deduplication
    best: Dict[Tuple[str, int, str], Tuple[Tuple[str, ...], SourceSite, FunctionInfo]] = {}
    for entry in entries:
        parents = _reach(graph, entry)
        for node in parents:
            fn = graph.functions.get(node)
            if fn is None:
                continue
            if fn.contract is not None and node != entry.qualname:
                continue  # sources inside an audited body are its DET005 risk
            for source in fn.sources:
                key = (fn.module, source.line, source.rule)
                chain = _chain(graph, parents, node)
                existing = best.get(key)
                if existing is None or len(chain) < len(existing[0]):
                    best[key] = (chain, source, fn)
    for (module, line, _rule), (chain, source, fn) in sorted(best.items()):
        code = _KIND_TO_CODE[source.kind]
        findings.append(
            FlowFinding(
                code=code,
                path=graph.modules[module].path,
                line=line,
                message=(
                    f"{source.detail} (via {source.rule}) is reachable "
                    f"from entry point {chain[0].split(' ')[0]}"
                ),
                chain=chain,
            )
        )
    return findings, [f"{e.short} ({e.module})" for e in entries]


def _contract_findings(
    graph: CallGraph,
) -> Tuple[List[FlowFinding], Dict[str, str], Dict[str, List[str]]]:
    """DET005 checks plus the contract registry/subtree report data."""
    findings: List[FlowFinding] = []
    contracts: Dict[str, str] = {}
    subtrees: Dict[str, List[str]] = {}
    for fn in sorted(graph.functions.values(), key=lambda f: f.qualname):
        if fn.contract is None:
            continue
        contracts[fn.qualname] = fn.contract
        path = graph.modules[fn.module].path
        if not fn.contract:
            findings.append(
                FlowFinding(
                    code="DET005",
                    path=path,
                    line=fn.line,
                    message=(
                        f"det: pure contract on {fn.short} carries no "
                        "justification — say why it is audited pure"
                    ),
                )
            )
        for source in fn.sources:
            findings.append(
                FlowFinding(
                    code="DET005",
                    path=path,
                    line=source.line,
                    message=(
                        f"det: pure contract on {fn.short} is violated: "
                        f"{source.detail} inside the audited body"
                    ),
                    chain=(_hop(fn),),
                )
            )
        # The audited function's transitive callees, for the reviewer.
        parents = _reach(graph, fn)
        subtrees[fn.qualname] = sorted(
            node for node in parents if node != fn.qualname
        )
    return findings, contracts, subtrees


# -- unit consistency ---------------------------------------------------------

#: atom -> (base-dimension exponents, power-of-ten scale). Dimensions:
#: T time (s), E energy (J), D data (byte), B data (bit), P pages.
#: Power is E·T⁻¹, frequency T⁻¹ — so ``pause_us * power_w`` correctly
#: simplifies to µJ instead of being flagged against ``energy_uj``.
_ATOMS: Dict[str, Tuple[Dict[str, int], int]] = {
    "ns": ({"T": 1}, -9), "us": ({"T": 1}, -6),
    "ms": ({"T": 1}, -3), "s": ({"T": 1}, 0),
    "uj": ({"E": 1}, -6), "mj": ({"E": 1}, -3), "j": ({"E": 1}, 0),
    "uw": ({"E": 1, "T": -1}, -6), "mw": ({"E": 1, "T": -1}, -3),
    "w": ({"E": 1, "T": -1}, 0),
    "hz": ({"T": -1}, 0), "khz": ({"T": -1}, 3),
    "mhz": ({"T": -1}, 6), "ghz": ({"T": -1}, 9),
    "byte": ({"D": 1}, 0), "bit": ({"B": 1}, 0), "page": ({"P": 1}, 0),
}

#: Unit = (sorted (dimension, exponent) pairs, power-of-ten scale).
#: None = unknown/unclassified; a fully cancelled unit is also None.
Unit = Tuple[Tuple[Tuple[str, int], ...], int]


def _normalize_atom(token: str) -> str:
    if token in ("bytes", "bits", "pages"):
        return token[:-1]
    return token


def _make_unit(dims: Mapping[str, int], scale: int) -> Optional[Unit]:
    reduced = tuple(
        sorted((dim, exp) for dim, exp in dims.items() if exp)
    )
    if not reduced:
        return None  # dimensionless: treated as unclassified
    return (reduced, scale)


def _atom_unit(atom: str) -> Optional[Unit]:
    entry = _ATOMS.get(atom)
    if entry is None:
        return None
    return _make_unit(entry[0], entry[1])


def parse_unit(name: Optional[str]) -> Optional[Unit]:
    """Infer a unit from a trailing naming convention: ``*_us`` ->
    microseconds, ``*_uj_per_byte`` -> µJ/byte, … None = unclassified."""
    if not name:
        return None
    tokens = [_normalize_atom(t) for t in name.lower().split("_") if t]
    if len(tokens) >= 3 and tokens[-2] == "per":
        num, den = _atom_unit(tokens[-3]), _atom_unit(tokens[-1])
        if num is not None and den is not None:
            return _combine(num, den, divide=True)
        return None
    if len(tokens) > 1 and tokens[-1] in _ATOMS:
        # require a descriptive stem (`latency_us`), not a bare atom
        return _atom_unit(tokens[-1])
    return None


def format_unit(unit: Unit) -> str:
    """Canonical display: a matching atom name (``uj``, ``us/byte``)
    when one exists, else the raw dimension/scale form."""
    dims, scale = unit
    for atom, (a_dims, a_scale) in _ATOMS.items():
        if _make_unit(a_dims, a_scale) == unit:
            return atom
    # ratio of two atoms?
    for num_atom in _ATOMS:
        num_unit = _atom_unit(num_atom)
        if num_unit is None:
            continue
        for den_atom in _ATOMS:
            den_unit = _atom_unit(den_atom)
            if den_unit is None:
                continue
            if _combine(num_unit, den_unit, divide=True) == unit:
                return f"{num_atom}/{den_atom}"
    parts = "*".join(
        f"{dim}^{exp}" if exp != 1 else dim for dim, exp in dims
    )
    return f"10^{scale}*{parts}" if scale else parts


def _combine(left: Unit, right: Unit, divide: bool) -> Optional[Unit]:
    dims: Dict[str, int] = dict(left[0])
    sign = -1 if divide else 1
    for dim, exp in right[0]:
        dims[dim] = dims.get(dim, 0) + sign * exp
    scale = left[1] + sign * right[1]
    return _make_unit(dims, scale)


_UNIT_PRESERVING_CALLS = frozenset({"abs", "min", "max", "float", "round"})


class _UnitChecker(ast.NodeVisitor):
    """Per-module unit inference + mismatch detection."""

    def __init__(
        self,
        path: str,
        source: str,
        param_units: Mapping[str, Tuple[Tuple[str, Optional[Unit]], ...]],
    ) -> None:
        self.path = path
        self.findings: List[FlowFinding] = []
        self.suppressed: Dict[int, Set[str]] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            match = _CSU_SUPPRESS_RE.search(line)
            if match:
                self.suppressed[number] = {
                    c.strip() for c in match.group(1).split(",") if c.strip()
                }
        #: resolved callee qualname -> ((param name, unit), ...)
        self.param_units = param_units
        self._function_units: List[Optional[Unit]] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self.suppressed.get(line, ()):
            return
        self.findings.append(
            FlowFinding(code=code, path=self.path, line=line, message=message)
        )

    # -- inference ---------------------------------------------------------

    def unit_of(self, node: ast.AST) -> Optional[Unit]:
        if isinstance(node, ast.Name):
            return parse_unit(node.id)
        if isinstance(node, ast.Attribute):
            return parse_unit(node.attr)
        if isinstance(node, ast.Subscript):
            return self.unit_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _UNIT_PRESERVING_CALLS and node.args:
                units = {self.unit_of(arg) for arg in node.args}
                if len(units) == 1:
                    return units.pop()
                return None
            return parse_unit(name)
        if isinstance(node, ast.IfExp):
            body, orelse = self.unit_of(node.body), self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.BinOp):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if left is not None and right is not None:
                    return left  # mismatch reported by visit_BinOp
                return left or right
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                if left is not None and right is not None:
                    return _combine(
                        left, right, divide=isinstance(
                            node.op, (ast.Div, ast.FloorDiv)
                        )
                    )
                # one side unknown (a count, a literal, a conversion
                # factor): the result is deliberately unclassified
                return None
            return None
        return None

    # -- rules -------------------------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if left is not None and right is not None and left != right:
                self._report(
                    node, "CSU001",
                    f"adding {format_unit(left)} to {format_unit(right)} "
                    "mixes units; convert one side explicitly",
                )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        left_node = node.left
        for comparator in node.comparators:
            left = self.unit_of(left_node)
            right = self.unit_of(comparator)
            if left is not None and right is not None and left != right:
                self._report(
                    node, "CSU002",
                    f"comparing {format_unit(left)} with "
                    f"{format_unit(right)} mixes units",
                )
            left_node = comparator
        self.generic_visit(node)

    def _check_binding(
        self, node: ast.AST, target_name: Optional[str], value: ast.AST,
        what: str,
    ) -> None:
        target_unit = parse_unit(target_name)
        if target_unit is None:
            return
        value_unit = self.unit_of(value)
        if value_unit is not None and value_unit != target_unit:
            self._report(
                node, "CSU003",
                f"{what} binds {format_unit(value_unit)} to "
                f"{target_name} ({format_unit(target_unit)}) without an "
                "explicit conversion",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None:
                self._check_binding(node, name, node.value, "assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._check_binding(
                node, node.target.id, node.value, "assignment"
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = None
        if isinstance(node.target, ast.Name):
            name = node.target.id
        elif isinstance(node.target, ast.Attribute):
            name = node.target.attr
        if name is not None and isinstance(node.op, (ast.Add, ast.Sub)):
            target_unit = parse_unit(name)
            value_unit = self.unit_of(node.value)
            if (
                target_unit is not None
                and value_unit is not None
                and target_unit != value_unit
            ):
                self._report(
                    node, "CSU001",
                    f"accumulating {format_unit(value_unit)} into {name} "
                    f"({format_unit(target_unit)}) mixes units",
                )
        self.generic_visit(node)

    def _visit_def(self, node: Any) -> None:
        self._function_units.append(parse_unit(node.name))
        self.generic_visit(node)
        self._function_units.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._function_units:
            expected = self._function_units[-1]
            if expected is not None:
                actual = self.unit_of(node.value)
                if actual is not None and actual != expected:
                    self._report(
                        node, "CSU003",
                        f"return binds {format_unit(actual)} to a "
                        f"function named for {format_unit(expected)} "
                        "without an explicit conversion",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        key = f"{self.path}:{node.lineno}:{node.col_offset}"
        bindings = self.param_units.get(key)
        if bindings:
            for (param, unit), arg in zip(bindings, node.args):
                if unit is None:
                    continue
                actual = self.unit_of(arg)
                if actual is not None and actual != unit:
                    self._report(
                        node, "CSU003",
                        f"argument binds {format_unit(actual)} to "
                        f"parameter {param} ({format_unit(unit)}) without "
                        "an explicit conversion",
                    )
        self.generic_visit(node)


def _callee_param_units(
    graph: CallGraph, summary_module: str, source: str, path: str
) -> Dict[str, Tuple[Tuple[str, Optional[Unit]], ...]]:
    """Map ``path:line:col`` of each *resolved* call in the module to
    the callee's (param, unit) vector, so argument bindings can be
    checked against the callee's naming convention."""
    summary = graph.modules[summary_module]
    by_line: Dict[int, List[str]] = {}
    fns = list(summary.functions.values())
    for cls in summary.classes.values():
        fns.extend(cls.methods.values())
    result: Dict[str, Tuple[Tuple[str, Optional[Unit]], ...]] = {}
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return result
    # Re-resolve calls the same way the graph did, but keep line/col.
    for fn in fns:
        callees = graph.callees(fn.qualname)
        name_map: Dict[str, FunctionInfo] = {}
        for callee in callees:
            target = graph.functions.get(callee)
            if target is not None:
                name_map.setdefault(target.name, target)
        by_line.setdefault(fn.line, [])
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not (fn.line <= node.lineno <= fn.end_line):
                continue
            callee_name = None
            if isinstance(node.func, ast.Name):
                callee_name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                callee_name = node.func.attr
            target = name_map.get(callee_name or "")
            if target is None:
                continue
            result[f"{path}:{node.lineno}:{node.col_offset}"] = tuple(
                (param, parse_unit(param)) for param in target.params
            )
    return result


def check_units(graph: CallGraph) -> List[FlowFinding]:
    """Run the CSU rules over every strict-package module."""
    findings: List[FlowFinding] = []
    for module in sorted(graph.modules):
        summary = graph.modules[module]
        if summary.package not in STRICT_PACKAGES:
            continue
        try:
            with open(summary.path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        param_units = _callee_param_units(
            graph, module, source, summary.path
        )
        try:
            tree = ast.parse(source, filename=summary.path)
        except SyntaxError:
            continue
        checker = _UnitChecker(summary.path, source, param_units)
        checker.visit(tree)
        findings.extend(checker.findings)
    return findings


# -- orchestration ------------------------------------------------------------


def analyze(
    root: str, cache_path: Optional[str] = None
) -> FlowReport:
    """Build the call graph (cached) and run both analyses."""
    graph, cache_stats = build_graph(root, cache_path=cache_path)
    taint, entries = _taint_findings(graph)
    contract_findings, contracts, subtrees = _contract_findings(graph)
    unit_findings = check_units(graph)
    findings = sorted(
        taint + contract_findings + unit_findings,
        key=lambda f: (f.path, f.line, f.code),
    )
    external_unaudited = sorted(
        name for name in graph.externals
        if name.split(".")[0] not in EXTERNAL_CONTRACTS
    )
    return FlowReport(
        root=root,
        files=len(graph.modules),
        functions=len(graph.functions),
        entry_points=entries,
        findings=findings,
        contracts=contracts,
        contract_subtrees=subtrees,
        worklist=[
            {
                "caller": item.caller,
                "line": item.line,
                "chain": list(item.chain),
                "reason": item.reason,
                "candidates": list(item.candidates),
            }
            for item in graph.worklist
        ],
        external_unaudited=external_unaudited,
        cache=cache_stats,
    )


def _default_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description=(
            "whole-program determinism taint (DET001-DET005) and unit "
            "consistency (CSU001-CSU003) for the CStream reproduction"
        ),
    )
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package directory to analyze (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the JSON report to stdout instead of human output",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="per-file AST/call-graph summary cache keyed on source "
        "hashes (CI keeps it between runs)",
    )
    args = parser.parse_args(argv)

    root = args.root or _default_root()
    if not os.path.isdir(root):
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2

    report = analyze(root, cache_path=args.cache)
    payload = report.payload()
    if args.report:
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return 2
    if args.as_json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for finding in report.findings:
            print(finding.format())
        status = (
            "clean" if not report.findings
            else f"{len(report.findings)} finding(s)"
        )
        print(
            f"analyzed {report.files} module(s), {report.functions} "
            f"function(s), {len(report.entry_points)} entry point(s): "
            f"{status}"
        )
        if report.worklist:
            print(
                f"note: {len(report.worklist)} unresolved dynamic "
                "call(s) on the worklist (see --json)"
            )
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
