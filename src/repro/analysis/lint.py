"""Determinism linter (``python -m repro.analysis.lint``).

Every claim the reproduction makes — CStream ≤ CS energy, serial ==
parallel == warm-cache equality, traced == untraced byte-identity —
rests on the simulator being a pure, deterministic function of its
inputs. One stray wall-clock read, unseeded RNG or set-ordered loop in
the simulation/scheduling packages silently breaks those invariants.
This module enforces the property statically with project-specific AST
rules:

========  ==================================================================
code      rule
========  ==================================================================
CSA001    no wall-clock calls (``time.time``, ``perf_counter``,
          ``datetime.now``, …) in ``simcore``/``core``/``runtime``/
          ``compression`` — real time must stay confined to
          ``repro.obs.registry`` and explicitly suppressed
          instrumentation sites
CSA002    no module-level or unseeded ``random`` / ``numpy.random`` use
          (global-RNG functions, ``default_rng()`` without a seed,
          ``os.urandom``/``uuid.uuid4``/``secrets``) anywhere
CSA003    no iteration over ``set``/``frozenset`` values (literals,
          ``set(...)`` calls, set-typed names, set-algebra results) in
          the simulation/scheduling packages unless wrapped in
          ``sorted(...)`` — set order is hash order, not data order
CSA004    no mutable default arguments (``[]``, ``{}``, ``set()``,
          ``defaultdict(...)``, …) anywhere
CSA005    no floating-point accumulation via bare ``sum()`` over
          energy/latency/power sequences in the simulation/scheduling
          packages — use :func:`repro.numerics.ordered_sum`, which pins
          the reduction order
CSA006    every trace-hook call (``trace.span``, ``recorder.placement``,
          …) in the simulation/scheduling packages must sit inside an
          ``if <recorder> is not None`` guard — the PR-2
          zero-overhead-when-off contract
CSA007    no environment reads (``os.environ``, ``os.getenv``) in the
          simulation/scheduling packages — configuration must arrive as
          explicit arguments so cached results can key on it
CSA008    no unsorted filesystem enumeration (``os.listdir``,
          ``glob.glob``, ``Path.iterdir``/``glob``/``rglob``,
          ``os.scandir``, ``os.walk``) anywhere unless wrapped in
          ``sorted(...)`` — directory order is filesystem-dependent
CSA009    every telemetry-hook call (``telemetry.comm``,
          ``collector.retry``, …) in the simulation/scheduling packages
          must sit inside an ``if <collector> is not None`` guard — the
          residual ledger rides the same zero-overhead-when-off
          contract as tracing
========  ==================================================================

Suppression: append ``# csa: ignore[CSA00x]`` (comma-separate several
codes) to the line where the flagged construct *starts*, with a nearby
comment saying why. Unsuppressed findings make the CLI exit 1; ``--json``
prints a machine-readable report and ``--report FILE`` writes one (the
CI ``static-analysis`` job uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintFinding",
    "RULES",
    "STRICT_PACKAGES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]

#: rule code -> one-line summary (the README/DESIGN tables render this)
RULES: Dict[str, str] = {
    "CSA001": "wall-clock call in deterministic simulation/scheduling code",
    "CSA002": "module-level or unseeded random / entropy source",
    "CSA003": "iteration over a set (hash order) without sorted()",
    "CSA004": "mutable default argument",
    "CSA005": "bare sum() over energy/latency/power values "
              "(use repro.numerics.ordered_sum)",
    "CSA006": "trace hook not guarded by a recorder-is-None fast path",
    "CSA007": "environment read inside deterministic code",
    "CSA008": "unsorted filesystem enumeration",
    "CSA009": "telemetry hook not guarded by a collector-is-None fast path",
}

#: packages (directories under ``repro/``) where the simulator's purity
#: contract is enforced; everything else gets only the everywhere-rules
STRICT_PACKAGES = frozenset(
    {"simcore", "core", "runtime", "compression", "fleet"}
)

#: rules that apply to every linted file regardless of package
_EVERYWHERE_RULES = frozenset({"CSA002", "CSA004", "CSA008"})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: numpy.random attributes that are *not* the legacy global RNG
_NUMPY_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: TraceRecorder emission methods (the hooks CSA006 guards)
_TRACE_HOOKS = frozenset({
    "span", "context_switch", "migration", "dvfs_transition", "fault",
    "batch_complete", "queue_depth", "energy_sample", "placement",
    "process_event", "begin_repetition", "end_repetition",
})

#: TelemetryCollector ingestion methods (the hooks CSA009 guards)
_TELEMETRY_HOOKS = frozenset({"comm", "retry", "collect_window"})

#: callables that consume an iterable order-insensitively — a set or a
#: directory listing fed *directly* into one of these is deterministic
_ORDER_SAFE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset",
})

#: identifier tokens marking an energy/latency/power quantity (CSA005)
_QUANTITY_RE = re.compile(
    r"energ|latenc|power|(^|_)(uj|us|uw|mw)(_|$)", re.IGNORECASE
)

_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
    "defaultdict", "OrderedDict", "Counter", "deque",
})

_FS_ENUM_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})
_FS_ENUM_METHODS = frozenset({"iterdir", "glob", "rglob"})

_SUPPRESS_RE = re.compile(r"#\s*csa:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: flow-pass companions (:mod:`repro.analysis.flow` reuses the linter's
#: comment grammar): per-site suppressions and audited-pure contracts
DET_SUPPRESS_RE = re.compile(r"#\s*det:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
DET_CONTRACT_RE = re.compile(r"#\s*det:\s*pure\b(.*)$")
CSU_SUPPRESS_RE = re.compile(r"#\s*csu:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _package_of(path: str) -> str:
    """The ``repro`` sub-package a file belongs to ('' = top level)."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1:]
            return remainder[0] if len(remainder) > 1 else ""
    return ""


class _Linter(ast.NodeVisitor):
    """Single-pass AST walk emitting :class:`LintFinding` objects."""

    def __init__(self, path: str, package: str, source: str) -> None:
        self.path = path
        self.package = package
        self.strict = package in STRICT_PACKAGES
        self.findings: List[LintFinding] = []
        #: local alias -> dotted origin (``np`` -> ``numpy``,
        #: ``pc`` -> ``time.perf_counter``)
        self.aliases: Dict[str, str] = {}
        #: per-line suppressed rule codes
        self.suppressed: Dict[int, Set[str]] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip() for c in match.group(1).split(",")}
                self.suppressed[number] = {c for c in codes if c}
        self._function_depth = 0
        self._order_safe_depth = 0
        self._guards: List[Set[str]] = []
        self._set_scopes: List[Set[str]] = [set()]

    # -- plumbing ----------------------------------------------------------

    def _applies(self, code: str) -> bool:
        return self.strict or code in _EVERYWHERE_RULES

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if not self._applies(code):
            return
        line = getattr(node, "lineno", 0)
        if code in self.suppressed.get(line, ()):
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def _resolve(self, node: ast.AST) -> Optional[str]:
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    # -- scopes, guards, order-safe contexts ---------------------------------

    def _is_set_annotation(self, annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Subscript):
            return self._is_set_annotation(annotation.value)
        dotted = _dotted(annotation)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in _SET_ANNOTATIONS

    def _is_set_like(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_like(node.left) or self._is_set_like(node.right)
        if isinstance(node, ast.Call):
            resolved = self._resolve(node.func)
            if resolved in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "intersection", "union", "difference", "symmetric_difference"
            ):
                return True
        return False

    def _visit_function(self, node) -> None:
        self._function_depth += 1
        scope: Set[str] = set()
        all_args = list(node.args.posonlyargs) + list(node.args.args) + (
            list(node.args.kwonlyargs)
        )
        for arg in all_args:
            if self._is_set_annotation(arg.annotation):
                scope.add(arg.arg)
        self._set_scopes.append(scope)
        self._check_defaults(node)
        self.generic_visit(node)
        self._set_scopes.pop()
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._function_depth += 1
        self._set_scopes.append(set())
        self._check_defaults(node)
        self.generic_visit(node)
        self._set_scopes.pop()
        self._function_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        set_like = self._is_set_like(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if set_like:
                    self._set_scopes[-1].add(target.id)
                else:
                    self._set_scopes[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and (
            self._is_set_annotation(node.annotation)
            or (node.value is not None and self._is_set_like(node.value))
        ):
            self._set_scopes[-1].add(node.target.id)
        self.generic_visit(node)

    @staticmethod
    def _guard_names(test: ast.AST) -> Set[str]:
        """Dotted names the test proves non-None (``x is not None`` or a
        bare truthiness check, conjunctions included)."""
        names: Set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                names |= _Linter._guard_names(value)
            return names
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            dotted = _dotted(test.left)
            if dotted:
                names.add(dotted)
            return names
        dotted = _dotted(test)
        if dotted:
            names.add(dotted)
        return names

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._guards.append(self._guard_names(node.test))
        for child in node.body:
            self.visit(child)
        self._guards.pop()
        for child in node.orelse:
            self.visit(child)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self.visit(node.test)
        self._guards.append(self._guard_names(node.test))
        self.visit(node.body)
        self._guards.pop()
        self.visit(node.orelse)

    # -- rules --------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)
            )
            if not mutable and isinstance(default, ast.Call):
                mutable = self._resolve(default.func) in _MUTABLE_FACTORIES
            if mutable:
                self._report(
                    default, "CSA004",
                    "mutable default argument is shared across calls; "
                    "default to None (or a frozen value) and build inside",
                )

    def _check_iteration(self, iterable: ast.AST) -> None:
        if self._order_safe_depth == 0 and self._is_set_like(iterable):
            self._report(
                iterable, "CSA003",
                "iterating a set yields hash order, which varies across "
                "processes and runs; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._resolve(node) == "os.environ":
            self._report(
                node, "CSA007",
                "os.environ read couples simulated behaviour to the "
                "process environment; pass configuration explicitly",
            )
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, resolved: str) -> None:
        unseeded = not node.args or (
            isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if resolved in _ENTROPY_CALLS or resolved.startswith("secrets."):
            self._report(
                node, "CSA002",
                f"{resolved}() draws OS entropy; derive values from an "
                "explicit seed instead",
            )
        elif resolved.startswith("random.SystemRandom"):
            self._report(
                node, "CSA002",
                "random.SystemRandom draws OS entropy; use a seeded "
                "Generator instead",
            )
        elif resolved == "random.Random":
            if unseeded:
                self._report(
                    node, "CSA002",
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
        elif resolved.startswith("random."):
            self._report(
                node, "CSA002",
                f"{resolved}() uses the process-global RNG; thread a "
                "seeded random.Random/np.random.Generator through instead",
            )
        elif resolved == "numpy.random.default_rng":
            if unseeded:
                self._report(
                    node, "CSA002",
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic; pass an explicit seed",
                )
            elif self._function_depth == 0:
                self._report(
                    node, "CSA002",
                    "module-level RNG shares draw order across all call "
                    "sites; construct the generator where it is used",
                )
        elif resolved == "numpy.random.RandomState":
            if unseeded:
                self._report(
                    node, "CSA002",
                    "numpy.random.RandomState() without a seed is "
                    "nondeterministic; pass an explicit seed",
                )
        elif resolved.startswith("numpy.random."):
            attr = resolved.rsplit(".", 1)[-1]
            if attr not in _NUMPY_RANDOM_OK:
                self._report(
                    node, "CSA002",
                    f"{resolved}() uses numpy's legacy global RNG; use a "
                    "seeded numpy.random.default_rng(seed) generator",
                )

    def _mentions_quantity(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            name = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name is not None and _QUANTITY_RE.search(name):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func) or ""

        # CSA001 — wall clock
        if resolved in _WALL_CLOCK:
            self._report(
                node, "CSA001",
                f"{resolved}() reads the wall clock inside deterministic "
                "code; simulated time must come from the DES clock "
                "(real-time instrumentation belongs in repro.obs.registry "
                "or needs an explicit suppression)",
            )

        # CSA002 — RNG / entropy
        self._check_rng_call(node, resolved)

        # CSA003 — set-like iterable handed to an iterating builtin
        if resolved in ("list", "tuple", "iter", "enumerate") and node.args:
            self._check_iteration(node.args[0])

        # CSA005 — bare sum() over energy/latency/power expressions
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and self._mentions_quantity(node.args[0])
        ):
            self._report(
                node, "CSA005",
                "bare sum() leaves the float reduction order implicit; "
                "use repro.numerics.ordered_sum for energy/latency "
                "accumulation",
            )

        # CSA006 — unguarded trace hook
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _TRACE_HOOKS
        ):
            receiver = _dotted(node.func.value)
            if receiver is not None:
                tail = receiver.rsplit(".", 1)[-1].lower()
                if ("trace" in tail or "recorder" in tail) and not any(
                    receiver in guard for guard in self._guards
                ):
                    self._report(
                        node, "CSA006",
                        f"trace hook {receiver}.{node.func.attr}(...) is "
                        f"not inside an 'if {receiver} is not None' guard; "
                        "untraced runs must keep the zero-overhead path",
                    )

        # CSA009 — unguarded telemetry hook
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _TELEMETRY_HOOKS
        ):
            receiver = _dotted(node.func.value)
            if receiver is not None:
                tail = receiver.rsplit(".", 1)[-1].lower()
                if (
                    "telemetry" in tail or "collector" in tail
                ) and not any(
                    receiver in guard for guard in self._guards
                ):
                    self._report(
                        node, "CSA009",
                        f"telemetry hook {receiver}.{node.func.attr}(...) "
                        f"is not inside an 'if {receiver} is not None' "
                        "guard; untelemetered runs must keep the "
                        "zero-overhead path",
                    )

        # CSA007 — os.getenv (os.environ is caught at the Attribute)
        if resolved == "os.getenv":
            self._report(
                node, "CSA007",
                "os.getenv couples simulated behaviour to the process "
                "environment; pass configuration explicitly",
            )

        # CSA008 — filesystem enumeration
        fs_enum = resolved in _FS_ENUM_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ENUM_METHODS
            and resolved not in ("glob.glob", "glob.iglob")
            and not resolved.startswith("re.")
        )
        if fs_enum and self._order_safe_depth == 0:
            self._report(
                node, "CSA008",
                "directory enumeration order is filesystem-dependent; "
                "wrap the listing in sorted(...)",
            )

        # Recurse; inside an order-insensitive consumer, iteration-order
        # rules stand down for the direct arguments.
        order_safe = resolved in _ORDER_SAFE_CONSUMERS
        self.visit(node.func)
        if order_safe:
            self._order_safe_depth += 1
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)
        if order_safe:
            self._order_safe_depth -= 1


def lint_source(
    source: str, path: str = "<string>", package: Optional[str] = None
) -> List[LintFinding]:
    """Lint one source string; ``package`` forces the rule scope (e.g.
    ``"simcore"`` enables the strict rules for fixture code)."""
    if package is None:
        package = _package_of(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            LintFinding(
                path=path,
                line=error.lineno or 0,
                col=(error.offset or 0),
                code="CSA000",
                message=f"syntax error: {error.msg}",
            )
        ]
    linter = _Linter(path, package, source)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col, f.code))


def lint_file(path: str, package: Optional[str] = None) -> List[LintFinding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path=path, package=package)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for directory, dirnames, filenames in sorted(os.walk(path)):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(directory, filename)
        else:
            yield path


def lint_paths(
    paths: Sequence[str], package: Optional[str] = None
) -> Tuple[List[LintFinding], int]:
    """Lint files/directories; returns (findings, files scanned)."""
    findings: List[LintFinding] = []
    scanned = 0
    for file_path in _iter_python_files(paths):
        scanned += 1
        findings.extend(lint_file(file_path, package=package))
    return findings, scanned


def report_payload(
    findings: Sequence[LintFinding], files_scanned: int
) -> Dict:
    """The JSON report shape (also uploaded as a CI artifact)."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "version": 1,
        "files_scanned": files_scanned,
        "findings": [asdict(finding) for finding in findings],
        "counts": dict(sorted(counts.items())),
        "rules": RULES,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="determinism linter for the CStream reproduction",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument(
        "--package", default=None,
        help="force the rule scope (e.g. 'simcore' to apply strict rules)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the JSON report to stdout instead of human output",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="also write the JSON report to FILE",
    )
    args = parser.parse_args(argv)

    try:
        findings, scanned = lint_paths(args.paths, package=args.package)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    payload = report_payload(findings, scanned)
    if args.report:
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.as_json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(finding.format())
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"checked {scanned} file(s): {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
