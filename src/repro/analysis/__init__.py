"""Static analysis for the CStream reproduction.

Three complementary tools keep the simulator's determinism contract
honest:

* :mod:`repro.analysis.lint` — an AST-based determinism linter
  (``CSA001``-``CSA008``): wall clocks, unseeded RNGs, set-order
  iteration, mutable defaults, unordered float accumulation, unguarded
  trace hooks, environment reads and unsorted filesystem listings.
* :mod:`repro.analysis.flow` (with :mod:`repro.analysis.callgraph`) —
  a whole-program pass: determinism taint propagated over a
  conservative project call graph (``DET001``-``DET005``) plus a
  unit-consistency checker over the repo's ``*_us``/``*_mhz``/``*_mj``
  naming conventions (``CSU001``-``CSU003``).
* :mod:`repro.analysis.verify` — a plan/trace invariant verifier
  (``PLN001``-``PLN005``, ``TRC001``-``TRC007``): DAG acyclicity, step
  coverage, core-id validity, double-booking, L_set feasibility for
  :class:`~repro.core.plan.SchedulingPlan` objects; monotone simulated
  time, monotone energy counters, non-overlapping spans and
  same-timestamp race hazards for exported trace streams.

All are importable as libraries (``lint_source``/``analyze``/
``build_graph``/``verify_plan``/``verify_trace_events``) and runnable
as CLIs; ``cstream analyze`` fronts them all (the flow pass behind
``--deep``).

Attribute access is lazy (PEP 562) so ``python -m repro.analysis.lint``
does not re-import its own module through the package and the package
import stays free of side effects.
"""

from typing import Any

_LINT_EXPORTS = frozenset({
    "RULES", "LintFinding", "lint_source", "lint_file", "lint_paths",
})
_FLOW_EXPORTS = frozenset({
    "FLOW_RULES", "FlowFinding", "FlowReport", "analyze", "parse_unit",
    "format_unit",
})
_CALLGRAPH_EXPORTS = frozenset({
    "CallGraph", "build_graph", "extract_module",
})
_VERIFY_EXPORTS = frozenset({
    "INVARIANTS", "VerifyFinding", "verify_plan", "verify_trace_events",
    "verify_chrome_payload", "iter_chrome_events", "iter_recorder_events",
})

__all__ = sorted(
    _LINT_EXPORTS | _FLOW_EXPORTS | _CALLGRAPH_EXPORTS | _VERIFY_EXPORTS
)


def __getattr__(name: str) -> Any:
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _FLOW_EXPORTS:
        from repro.analysis import flow

        return getattr(flow, name)
    if name in _CALLGRAPH_EXPORTS:
        from repro.analysis import callgraph

        return getattr(callgraph, name)
    if name in _VERIFY_EXPORTS:
        from repro.analysis import verify

        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
