"""Project symbol table + conservative call graph (``repro.analysis``).

The per-file linter (:mod:`repro.analysis.lint`) cannot see through a
call: a ``perf_counter()`` hidden in a helper two modules away from
``simcore`` sails straight past CSA001 because the helper's own package
is not strict. This module gives :mod:`repro.analysis.flow` the missing
whole-program view:

* **Extraction** — every module under the package root is parsed once
  into a :class:`ModuleSummary`: import aliases, module/class/function
  structure, parameter lists, best-effort local type hints (annotated
  parameters, ``x = ClassName(...)`` constructor assignments,
  ``self.attr = ClassName(...)`` attribute types) and every call site's
  attribute chain. Nondeterminism *sources* are found by re-running the
  CSA matchers with the strict rule scope forced on (see
  :func:`extract_module`), so the taint pass and the linter can never
  disagree about what counts as a source.
* **Resolution** — call chains are resolved against the symbol table:
  bare names through imports to module functions, ``self.m()`` through
  the class and its project bases, ``obj.m()`` through the inferred
  receiver type, module-level singletons (``REGISTRY.inc``) through
  module variable types, and — when the receiver is unknown — a *duck*
  edge to the method's unique project-wide definition. Calls that stay
  ambiguous (unknown receiver and zero or several candidate classes,
  bare calls of local callables) land on an explicit
  :attr:`CallGraph.worklist` instead of silently vanishing.
* **Caching** — extraction is the expensive part, so summaries are
  cached per file keyed on the source's SHA-256 (plus
  :data:`ANALYSIS_VERSION`); an unchanged file is never re-parsed. The
  CI ``static-analysis`` job keeps the cache file between runs keyed on
  the tree hash of ``src/repro``.

Known conservatism (also summarised in DESIGN.md): nested functions and
lambdas are attributed to their enclosing def; property *reads* are not
calls and are not traversed; module-level statements form no node;
multi-candidate dynamic calls are reported, not expanded.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis import lint

__all__ = [
    "ANALYSIS_VERSION",
    "SOURCE_KIND_BY_RULE",
    "SourceSite",
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "CallGraph",
    "UnresolvedCall",
    "extract_module",
    "build_graph",
    "iter_package_files",
]

#: bump to invalidate every cached :class:`ModuleSummary`
ANALYSIS_VERSION = 1

#: CSA rule -> taint-source kind; the taint pass *reuses* the linter's
#: matchers, so these five rules are the single definition of what a
#: nondeterminism source is.
SOURCE_KIND_BY_RULE: Dict[str, str] = {
    "CSA001": "clock",
    "CSA002": "rng",
    "CSA007": "env",
    "CSA003": "order",
    "CSA008": "order",
}

#: methods of builtin containers/strings/files — an unknown-receiver
#: call of one of these is assumed to be the builtin, not a project
#: method, and is dropped rather than duck-dispatched
_BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "clear", "copy", "count",
    "index", "sort", "reverse", "pop", "popleft", "appendleft",
    "keys", "values", "items", "update", "setdefault", "discard",
    "union", "intersection", "difference", "symmetric_difference",
    "split", "rsplit", "join", "strip", "lstrip", "rstrip", "format",
    "startswith", "endswith", "replace", "lower", "upper", "encode",
    "decode", "splitlines", "partition", "rpartition", "ljust", "rjust",
    "zfill", "title", "capitalize", "casefold", "find", "rfind",
    "read", "write", "readline", "readlines", "close", "flush", "seek",
    "tell", "add_argument", "add_parser", "parse_args", "getvalue",
    "hexdigest", "digest", "tobytes", "astype", "tolist", "item",
    "fileno", "isoformat", "total_seconds", "bit_length", "to_bytes",
})

_CONTRACT_RE = lint.DET_CONTRACT_RE
_DET_SUPPRESS_RE = lint.DET_SUPPRESS_RE


@dataclass(frozen=True)
class SourceSite:
    """One nondeterminism source inside a function body."""

    kind: str  # clock | rng | env | order
    rule: str  # the CSA rule that matched
    line: int
    detail: str


@dataclass(frozen=True)
class CallSite:
    """One call expression, as the raw attribute chain of its callee.

    ``chain`` is ``("self", "simulator", "run")`` for
    ``self.simulator.run(...)``; a leading ``"?"`` marks a receiver that
    is not a plain name chain (a call result, subscript, …).
    """

    line: int
    chain: Tuple[str, ...]


@dataclass
class FunctionInfo:
    """A module-level function or a method, with everything the flow
    pass needs: sources, outgoing calls, and local type hints."""

    qualname: str
    module: str
    cls: Optional[str]
    name: str
    line: int
    end_line: int
    params: Tuple[str, ...]
    contract: Optional[str]  # justification text; "" = missing reason
    sources: Tuple[SourceSite, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    local_types: Dict[str, str] = field(default_factory=dict)

    @property
    def short(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    line: int
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    module: str
    package: str
    path: str
    sha256: str
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_var_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class UnresolvedCall:
    """A dynamic call the resolver could not pin to one target."""

    caller: str
    line: int
    chain: Tuple[str, ...]
    reason: str
    candidates: Tuple[str, ...] = ()


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _chain_of(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The callee as a name chain; ``("?", ..)`` for non-name roots."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    else:
        return None
    return tuple(reversed(parts))


def _class_name_of(value: ast.AST) -> Optional[str]:
    """``ClassName`` / ``mod.ClassName`` when ``value`` is a direct
    constructor-looking call (capitalised last component)."""
    if not isinstance(value, ast.Call):
        return None
    chain = _chain_of(value.func)
    if chain is None or "?" in chain:
        return None
    last = chain[-1]
    if not last[:1].isupper():
        return None
    return ".".join(chain)


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """The dotted class name of a simple annotation (``Foo``,
    ``mod.Foo``, ``Optional[Foo]``, ``"Foo"``)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value.strip().strip('"\'')
        return name or None
    if isinstance(annotation, ast.Subscript):
        chain = _chain_of(annotation.value)
        if chain and chain[-1] in ("Optional",):
            return _annotation_name(annotation.slice)
        return None
    chain = _chain_of(annotation)
    if chain is None or "?" in chain:
        return None
    return ".".join(chain)


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST building the structural summary."""

    def __init__(self, summary: ModuleSummary, lines: Sequence[str]) -> None:
        self.summary = summary
        self.lines = lines
        self._class_stack: List[ClassInfo] = []
        self._current: Optional[FunctionInfo] = None

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.summary.aliases[alias.asname] = alias.name
            else:
                head = alias.name.partition(".")[0]
                self.summary.aliases[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            # Resolve the relative import against this module's package.
            parts = self.summary.module.split(".")
            base = parts[: len(parts) - node.level]
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            self.summary.aliases[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )

    # -- classes -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _chain_of(base)
            if chain and "?" not in chain:
                bases.append(".".join(chain))
        info = ClassInfo(
            qualname=f"{self.summary.module}.{node.name}",
            module=self.summary.module,
            name=node.name,
            line=node.lineno,
            bases=tuple(bases),
        )
        self.summary.classes[node.name] = info
        self._class_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    # -- functions ---------------------------------------------------------

    def _contract_for(self, node: ast.AST) -> Optional[str]:
        """The ``# det: pure`` justification, if the def (or the line
        right above it) carries the contract comment."""
        lineno = getattr(node, "lineno", 0)
        for number in (lineno, lineno - 1):
            if 1 <= number <= len(self.lines):
                match = _CONTRACT_RE.search(self.lines[number - 1])
                if match:
                    reason = match.group(1).strip().lstrip("—-:( ").rstrip(") ")
                    return reason
        return None

    def _visit_def(self, node: Any) -> None:
        if self._current is not None:
            # Nested def: its body is attributed to the enclosing
            # function (it runs, conservatively, whenever the outer
            # function runs). Keep walking for calls/types.
            self.generic_visit(node)
            return
        cls = self._class_stack[-1] if self._class_stack else None
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        params = tuple(
            a.arg for a in all_args if a.arg not in ("self", "cls")
        )
        qual = (
            f"{self.summary.module}.{cls.name}.{node.name}"
            if cls
            else f"{self.summary.module}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qual,
            module=self.summary.module,
            cls=cls.name if cls else None,
            name=node.name,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            params=params,
            contract=self._contract_for(node),
        )
        for arg in all_args:
            name = _annotation_name(arg.annotation)
            if name:
                info.local_types[arg.arg] = name
        if cls is not None:
            cls.methods[node.name] = info
        else:
            self.summary.functions[node.name] = info
        self._current = info
        calls: List[CallSite] = []
        self._collect_body(node, info, calls)
        info.calls = tuple(calls)
        self._current = None

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def _collect_body(
        self, node: ast.AST, info: FunctionInfo, calls: List[CallSite]
    ) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                chain = _chain_of(child.func)
                if chain is not None:
                    calls.append(
                        CallSite(line=child.lineno, chain=chain)
                    )
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                cls_name = _class_name_of(child.value)
                if cls_name is None:
                    continue
                if isinstance(target, ast.Name):
                    info.local_types[target.id] = cls_name
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self._class_stack
                ):
                    self._class_stack[-1].attr_types.setdefault(
                        target.attr, cls_name
                    )
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                name = _annotation_name(child.annotation)
                if name:
                    info.local_types[child.target.id] = name

    # -- module level ------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level singletons: ``REGISTRY = MetricsRegistry()``.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            cls_name = _class_name_of(node.value)
            if cls_name:
                self.summary.module_var_types[node.targets[0].id] = cls_name
        self.generic_visit(node)


def _det_suppressed(line_text: str, kind: str) -> bool:
    """Does the line carry a ``# det: ignore[DET00x]`` matching the
    source kind?"""
    match = _DET_SUPPRESS_RE.search(line_text)
    if not match:
        return False
    codes = {c.strip() for c in match.group(1).split(",")}
    wanted = {
        "clock": "DET001",
        "rng": "DET002",
        "env": "DET003",
        "order": "DET004",
    }[kind]
    return wanted in codes


def extract_module(
    path: str, module: str, source: Optional[str] = None
) -> ModuleSummary:
    """Parse one file into a :class:`ModuleSummary`.

    Sources are detected by re-running the CSA linter with the strict
    scope forced on (``package="simcore"``), so a clock/RNG/env/order
    construct is a taint source *everywhere* — that is the whole point
    of the flow pass. CSA suppressions count: a site the linter was
    told to ignore (with its audited why-comment) is not a source;
    ``# det: ignore[DET00x]`` works the same way for flow-only sites.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    package = module.split(".")[1] if module.count(".") else ""
    summary = ModuleSummary(
        module=module,
        package=package,
        path=path,
        sha256=_sha256(source),
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return summary
    lines = source.splitlines()
    _Extractor(summary, lines).visit(tree)

    # Sources via the CSA matchers, attributed to the enclosing def.
    spans: List[FunctionInfo] = list(summary.functions.values())
    for cls in summary.classes.values():
        spans.extend(cls.methods.values())
    per_kind: Dict[int, List[SourceSite]] = {}
    for finding in lint.lint_source(source, path=path, package="simcore"):
        kind = SOURCE_KIND_BY_RULE.get(finding.code)
        if kind is None:
            continue
        text = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if _det_suppressed(text, kind):
            continue
        site = SourceSite(
            kind=kind,
            rule=finding.code,
            line=finding.line,
            detail=finding.message.split(";")[0],
        )
        per_kind.setdefault(finding.line, []).append(site)
    for info in spans:
        sources: List[SourceSite] = []
        for line, sites in per_kind.items():
            if info.line <= line <= info.end_line:
                sources.extend(sites)
        info.sources = tuple(
            sorted(sources, key=lambda s: (s.line, s.rule))
        )
    return summary


def iter_package_files(root: str) -> Iterable[Tuple[str, str]]:
    """Yield ``(path, dotted module name)`` for every ``.py`` under the
    package directory ``root`` (sorted — CSA008 applies to us too)."""
    root = os.path.abspath(root)
    package_name = os.path.basename(root.rstrip(os.sep))
    for directory, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            relative = os.path.relpath(path, root)
            parts = [package_name] + relative.split(os.sep)
            parts[-1] = parts[-1][:-3]
            if parts[-1] == "__init__":
                parts.pop()
            yield path, ".".join(parts)


class CallGraph:
    """Resolved nodes + edges over every extracted module."""

    def __init__(self, modules: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            m.module: m for m in modules
        }
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> [class qualnames]
        self._class_index: Dict[str, List[str]] = {}
        #: method name -> [class qualnames defining it]
        self._method_index: Dict[str, List[str]] = {}
        #: caller qualname -> {callee qualname}
        self.edges: Dict[str, Set[str]] = {}
        self.worklist: List[UnresolvedCall] = []
        #: dotted names of calls that left the project (stdlib/numpy/…);
        #: flow.py audits these against its external contracts registry
        self.externals: Set[str] = set()
        for summary in modules:
            for fn in summary.functions.values():
                self.functions[fn.qualname] = fn
            for cls in summary.classes.values():
                self.classes[cls.qualname] = cls
                self._class_index.setdefault(cls.name, []).append(
                    cls.qualname
                )
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
                    self._method_index.setdefault(
                        method.name, []
                    ).append(cls.qualname)
        self._resolve_all()

    # -- lookup helpers ----------------------------------------------------

    def _resolve_class_name(
        self, name: str, module: ModuleSummary
    ) -> Optional[ClassInfo]:
        """A raw dotted class name (as written in ``module``) to its
        :class:`ClassInfo`."""
        head, _, rest = name.partition(".")
        origin = module.aliases.get(head, head)
        dotted = f"{origin}.{rest}" if rest else origin
        if dotted in self.classes:
            return self.classes[dotted]
        # ``ClassName`` defined in the same module.
        if not rest and name in module.classes:
            return module.classes[name]
        # ``mod.ClassName`` where origin is a module we know.
        owner, _, cls_name = dotted.rpartition(".")
        owning = self.modules.get(owner)
        if owning is not None and cls_name in owning.classes:
            return owning.classes[cls_name]
        # Unique bare name anywhere in the project.
        candidates = self._class_index.get(dotted.rpartition(".")[-1], [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def _mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """The class and its project bases, linearised breadth-first."""
        seen: List[ClassInfo] = []
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.append(current)
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self._resolve_class_name(base, module)
                if resolved is not None:
                    queue.append(resolved)
        return seen

    def _method_on(
        self, cls: ClassInfo, method: str
    ) -> Optional[FunctionInfo]:
        for candidate in self._mro(cls):
            if method in candidate.methods:
                return candidate.methods[method]
        return None

    # -- resolution --------------------------------------------------------

    def _add_edge(self, caller: FunctionInfo, callee: FunctionInfo) -> None:
        self.edges.setdefault(caller.qualname, set()).add(callee.qualname)

    def _constructor_edges(
        self, caller: FunctionInfo, cls: ClassInfo
    ) -> None:
        init = self._method_on(cls, "__init__")
        if init is not None:
            self._add_edge(caller, init)
        post = self._method_on(cls, "__post_init__")
        if post is not None:
            self._add_edge(caller, post)

    def _duck(
        self, caller: FunctionInfo, site: CallSite, method: str
    ) -> None:
        """Unknown receiver: dispatch to the method's unique project
        definition, else record the ambiguity on the worklist."""
        if method in _BUILTIN_METHODS:
            return
        owners = self._method_index.get(method, [])
        if len(owners) == 1:
            target = self.classes[owners[0]].methods[method]
            self._add_edge(caller, target)
        elif len(owners) > 1:
            self.worklist.append(
                UnresolvedCall(
                    caller=caller.qualname,
                    line=site.line,
                    chain=site.chain,
                    reason="ambiguous dynamic dispatch",
                    candidates=tuple(
                        f"{owner}.{method}" for owner in sorted(owners)
                    ),
                )
            )
        # No project class defines it: assumed external (stdlib/numpy
        # object method); sources inside externals are matched at the
        # call site by the CSA matchers, not here.

    def _resolve_call(
        self, caller: FunctionInfo, module: ModuleSummary, site: CallSite
    ) -> None:
        chain = site.chain
        head = chain[0]

        # Receiver is an expression (call result, subscript…): only the
        # trailing method name is known.
        if head == "?":
            self._duck(caller, site, chain[-1])
            return

        # self.method() / self.attr.method() / cls.method()
        if head in ("self", "cls") and caller.cls is not None:
            own = module.classes.get(caller.cls)
            if own is None:
                return
            if len(chain) == 2:
                target = self._method_on(own, chain[1])
                if target is not None:
                    self._add_edge(caller, target)
                else:
                    # Maybe a callable attribute with a known class type
                    attr_type = own.attr_types.get(chain[1])
                    if attr_type is not None:
                        cls_info = self._resolve_class_name(
                            attr_type, module
                        )
                        if cls_info is not None:
                            call = self._method_on(cls_info, "__call__")
                            if call is not None:
                                self._add_edge(caller, call)
                                return
                    self._duck(caller, site, chain[1])
                return
            if len(chain) == 3:
                attr_type = own.attr_types.get(chain[1])
                if attr_type is not None:
                    cls_info = self._resolve_class_name(attr_type, module)
                    if cls_info is not None:
                        target = self._method_on(cls_info, chain[2])
                        if target is not None:
                            self._add_edge(caller, target)
                            return
                self._duck(caller, site, chain[-1])
                return
            self._duck(caller, site, chain[-1])
            return

        # Local variable with an inferred class type.
        local_type = caller.local_types.get(head)
        if local_type is not None and len(chain) >= 2:
            cls_info = self._resolve_class_name(local_type, module)
            if cls_info is not None:
                if len(chain) == 2:
                    target = self._method_on(cls_info, chain[1])
                    if target is not None:
                        self._add_edge(caller, target)
                        return
                elif len(chain) == 3:
                    attr_type = cls_info.attr_types.get(chain[1])
                    if attr_type is not None:
                        attr_module = self.modules.get(cls_info.module)
                        attr_cls = self._resolve_class_name(
                            attr_type, attr_module or module
                        )
                        if attr_cls is not None:
                            target = self._method_on(attr_cls, chain[2])
                            if target is not None:
                                self._add_edge(caller, target)
                                return
            self._duck(caller, site, chain[-1])
            return

        # Module-level singleton (``REGISTRY.inc``).
        var_type = module.module_var_types.get(head)
        if var_type is not None and len(chain) >= 2:
            cls_info = self._resolve_class_name(var_type, module)
            if cls_info is not None:
                target = self._method_on(cls_info, chain[-1])
                if target is not None:
                    self._add_edge(caller, target)
                    return
            self._duck(caller, site, chain[-1])
            return

        # Resolve the full dotted chain through the import aliases.
        origin = module.aliases.get(head)
        if origin is None and len(chain) >= 2:
            # The receiver is a plain object we know nothing about (an
            # untyped parameter, a value plucked from a container…):
            # dynamic dispatch on the method name.
            self._duck(caller, site, chain[-1])
            return
        dotted = (
            f"{origin}.{'.'.join(chain[1:])}" if origin and len(chain) > 1
            else origin if origin
            else ".".join(chain)
        )

        # Bare name: same-module function or class, or imported symbol.
        if len(chain) == 1:
            if head in module.functions:
                self._add_edge(caller, module.functions[head])
                return
            if head in module.classes:
                self._constructor_edges(caller, module.classes[head])
                return
            if origin is not None:
                self._resolve_dotted(caller, site, origin)
                return
            if head in caller.local_types or head in caller.params:
                self.worklist.append(
                    UnresolvedCall(
                        caller=caller.qualname,
                        line=site.line,
                        chain=chain,
                        reason="call of a local callable value",
                    )
                )
            else:
                self.externals.add(head)  # builtin / module global
            return

        self._resolve_dotted(caller, site, dotted)

    def _resolve_dotted(
        self, caller: FunctionInfo, site: CallSite, dotted: str
    ) -> None:
        """``pkg.mod.symbol[.method]`` to a project function/class."""
        # Direct function qualname.
        if dotted in self.functions:
            self._add_edge(caller, self.functions[dotted])
            return
        if dotted in self.classes:
            self._constructor_edges(caller, self.classes[dotted])
            return
        owner, _, last = dotted.rpartition(".")
        # ``module.func`` / ``module.Class``.
        owning = self.modules.get(owner)
        if owning is not None:
            if last in owning.functions:
                self._add_edge(caller, owning.functions[last])
                return
            if last in owning.classes:
                self._constructor_edges(caller, owning.classes[last])
                return
            # Module attribute we do not know (re-export, constant).
            self.worklist.append(
                UnresolvedCall(
                    caller=caller.qualname,
                    line=site.line,
                    chain=site.chain,
                    reason=f"unknown attribute {last!r} of module {owner}",
                )
            )
            return
        # ``module.Class.method`` or ``alias_of_class.method``.
        if owner in self.classes:
            target = self._method_on(self.classes[owner], last)
            if target is not None:
                self._add_edge(caller, target)
                return
        cls_owner, _, cls_name = owner.rpartition(".")
        owning = self.modules.get(cls_owner)
        if owning is not None and cls_name in owning.classes:
            target = self._method_on(owning.classes[cls_name], last)
            if target is not None:
                self._add_edge(caller, target)
            else:
                self._duck(caller, site, last)
            return
        # ``module.SINGLETON.method`` — a module-level instance imported
        # from elsewhere (``from repro.obs.registry import REGISTRY``).
        if owning is not None and cls_name in owning.module_var_types:
            cls_info = self._resolve_class_name(
                owning.module_var_types[cls_name], owning
            )
            if cls_info is not None:
                target = self._method_on(cls_info, last)
                if target is not None:
                    self._add_edge(caller, target)
                    return
            self._duck(caller, site, last)
            return
        head = dotted.split(".")[0]
        if head in self.modules or any(
            m.startswith(head + ".") for m in self.modules
        ):
            # Rooted in the project but unresolvable — keep it visible.
            self.worklist.append(
                UnresolvedCall(
                    caller=caller.qualname,
                    line=site.line,
                    chain=site.chain,
                    reason=f"unresolved project reference {dotted!r}",
                )
            )
            return
        # Fully external (stdlib/numpy/…): sources are matched at the
        # call site by the CSA matchers; everything else is assumed
        # pure per the external contracts registry in repro.analysis.flow,
        # which audits this recorded set.
        self.externals.add(dotted)

    def _resolve_all(self) -> None:
        for summary in self.modules.values():
            fns = list(summary.functions.values())
            for cls in summary.classes.values():
                fns.extend(cls.methods.values())
            for fn in fns:
                for site in fn.calls:
                    self._resolve_call(fn, summary, site)

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def match(
        self, module_prefix: str, cls: Optional[str], method_pattern: Any
    ) -> List[FunctionInfo]:
        """Functions matching (module prefix, class selector, compiled
        method-name pattern). ``cls`` is a class name, ``"*"`` for any
        class, or None for module-level functions."""
        hits = []
        for fn in self.functions.values():
            if not fn.module.startswith(module_prefix):
                continue
            if cls is None and fn.cls is not None:
                continue
            if cls is not None and cls != "*" and fn.cls != cls:
                continue
            if cls == "*" and fn.cls is None:
                continue
            if method_pattern.fullmatch(fn.name):
                hits.append(fn)
        return sorted(hits, key=lambda f: f.qualname)


# -- cache --------------------------------------------------------------------


def _summary_to_dict(summary: ModuleSummary) -> Dict[str, Any]:
    return asdict(summary)


def _function_from_dict(data: Mapping[str, Any]) -> FunctionInfo:
    return FunctionInfo(
        qualname=data["qualname"],
        module=data["module"],
        cls=data["cls"],
        name=data["name"],
        line=data["line"],
        end_line=data["end_line"],
        params=tuple(data["params"]),
        contract=data["contract"],
        sources=tuple(SourceSite(**s) for s in data["sources"]),
        calls=tuple(
            CallSite(line=c["line"], chain=tuple(c["chain"]))
            for c in data["calls"]
        ),
        local_types=dict(data["local_types"]),
    )


def _summary_from_dict(data: Mapping[str, Any]) -> ModuleSummary:
    summary = ModuleSummary(
        module=data["module"],
        package=data["package"],
        path=data["path"],
        sha256=data["sha256"],
        aliases=dict(data["aliases"]),
        module_var_types=dict(data["module_var_types"]),
    )
    summary.functions = {
        name: _function_from_dict(fn)
        for name, fn in data["functions"].items()
    }
    for name, cls in data["classes"].items():
        info = ClassInfo(
            qualname=cls["qualname"],
            module=cls["module"],
            name=cls["name"],
            line=cls["line"],
            bases=tuple(cls["bases"]),
            attr_types=dict(cls["attr_types"]),
        )
        info.methods = {
            m_name: _function_from_dict(m)
            for m_name, m in cls["methods"].items()
        }
        summary.classes[name] = info
    return summary


def build_graph(
    root: str, cache_path: Optional[str] = None
) -> Tuple[CallGraph, Dict[str, int]]:
    """Extract (with per-file SHA-keyed caching) and resolve the graph.

    Returns the graph plus cache statistics (``hits``/``misses``) so the
    CLI and CI can report whether the AST cache did its job.
    """
    cached: Dict[str, Any] = {}
    if cache_path is not None and os.path.exists(cache_path):
        try:
            with open(cache_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") == ANALYSIS_VERSION:
                cached = payload.get("files", {})
        except (OSError, ValueError):
            cached = {}

    summaries: List[ModuleSummary] = []
    fresh: Dict[str, Any] = {}
    stats = {"hits": 0, "misses": 0}
    for path, module in iter_package_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        digest = _sha256(source)
        entry = cached.get(module)
        if entry is not None and entry.get("sha256") == digest:
            stats["hits"] += 1
            summary = _summary_from_dict(entry["summary"])
            summary.path = path  # tolerate checkouts moving around
        else:
            stats["misses"] += 1
            summary = extract_module(path, module, source=source)
        summaries.append(summary)
        fresh[module] = {
            "sha256": digest,
            "summary": _summary_to_dict(summary),
        }

    if cache_path is not None:
        try:
            os.makedirs(
                os.path.dirname(os.path.abspath(cache_path)), exist_ok=True
            )
            with open(cache_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {"version": ANALYSIS_VERSION, "files": fresh}, handle
                )
        except OSError:
            pass  # cache is an optimisation, never a failure

    return CallGraph(summaries), stats
