"""Embed the session controller behind an external heartbeat.

:class:`~repro.control.controller.SessionController` was built as the
executor's window callback: the DES calls ``on_window`` with a
:class:`~repro.runtime.executor.WindowObservation` it assembled from
the simulation. The fleet tier (:mod:`repro.fleet`) runs *many*
controllers — one per placed tenant — without a DES underneath: board
load, throttles and noise are synthesized at the fleet's model level.
:class:`ExternalHeartbeat` is the adapter that makes the controller
embeddable there: the host feeds it per-window measurements and
hardware signals, it assembles the observation exactly the way the
executor would, forwards it to the controller and keeps the decision
history. The controller cannot tell the difference — drift detection,
failover replans (e.g. on a board-level throttle reported as every
core's capped frequency) and migration gating all work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.control.controller import SessionController
from repro.runtime.executor import WindowDecision, WindowObservation

__all__ = ["ExternalHeartbeat"]


@dataclass
class ExternalHeartbeat:
    """Window-boundary pump for a controller with no executor attached.

    ``windows_observed`` and ``decisions`` mirror what the executor's
    session path would have recorded, so fleet health reports can show
    per-tenant control activity with the same vocabulary as single-board
    sessions.
    """

    controller: SessionController
    windows_observed: int = 0
    batches_fed: int = 0
    decisions: List[WindowDecision] = field(default_factory=list)

    def observe(
        self,
        window_index: int,
        latencies_us_per_byte: Sequence[float],
        now_us: float,
        failed_cores: Tuple[int, ...] = (),
        throttled_mhz: Tuple[Tuple[int, float], ...] = (),
        telemetry: Optional[object] = None,
    ) -> Optional[WindowDecision]:
        """Feed one completed window; return the controller's verdict.

        Batch indices are assigned consecutively from the number of
        batches fed so far, matching how the executor numbers a
        session's batches — the controller indexes its per-batch cost
        stream with them.
        """
        batch_count = len(latencies_us_per_byte)
        observation = WindowObservation(
            window_index=window_index,
            batch_start=self.batches_fed,
            batch_count=batch_count,
            now_us=now_us,
            latencies_us_per_byte=tuple(latencies_us_per_byte),
            failed_cores=failed_cores,
            throttled_mhz=throttled_mhz,
            telemetry=telemetry,
        )
        self.windows_observed += 1
        self.batches_fed += batch_count
        decision = self.controller.on_window(observation)
        if decision is not None:
            self.decisions.append(decision)
        return decision

    @property
    def plan(self):
        """The controller's current plan (post any adopted replan)."""
        return self.controller.plan
