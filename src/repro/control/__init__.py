"""Online session control: the adaptive plan lifecycle.

The paper schedules once per workload; this package closes the loop the
way §V-D's future-work paragraph sketches. A
:class:`~repro.control.controller.SessionController` watches per-window
workload statistics (through the
:class:`~repro.core.statistics_regulator.StatisticsAwareRegulator` in
detect-only mode), replans incrementally with a warm-started
branch-and-bound when the stream drifts, and only migrates to the new
plan when the modeled energy savings over a configurable horizon exceed
the modeled cost of moving replica state between cores.

Layering: this package imports :mod:`repro.core` and
:mod:`repro.runtime`; the runtime never imports it back — the executor
sees the controller only as a duck-typed ``on_window`` callback.
"""

from repro.control.controller import (
    ControlEvent,
    ControllerConfig,
    FailoverEvent,
    SessionController,
)
from repro.control.session import (
    SessionComparison,
    SessionSpec,
    build_drift_stream,
    run_adaptive_session,
)

__all__ = [
    "ControlEvent",
    "ControllerConfig",
    "FailoverEvent",
    "SessionController",
    "SessionComparison",
    "SessionSpec",
    "build_drift_stream",
    "run_adaptive_session",
]
