"""Adaptive-vs-static sessions over drift scenarios.

Glue used by ``cstream adapt`` and :mod:`repro.bench.exp_adaptive`:
build a drifting per-batch cost stream from a
:func:`~repro.datasets.micro.drift_schedule`, then run the same windowed
session twice — once with the static one-shot plan all the way through
(``controller=None``) and once under a
:class:`~repro.control.controller.SessionController` — and compare
energy and constraint violations batch for batch. Both sessions share
the window structure, so the only difference between them is the
control loop itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.compression import get_codec
from repro.compression.base import StepCost
from repro.control.controller import ControllerConfig, SessionController
from repro.core.profiler import profile_workload
from repro.core.scheduler import Scheduler
from repro.datasets import DRIFT_KINDS, MicroDataset, drift_schedule
from repro.errors import ConfigurationError
from repro.obs.health import SessionHealth
from repro.obs.residuals import TelemetryCollector
from repro.runtime.executor import (
    ExecutionConfig,
    PipelineExecutor,
    SessionResult,
)

__all__ = [
    "SessionSpec",
    "SessionComparison",
    "build_drift_stream",
    "finalize_session_health",
    "run_adaptive_session",
]


@dataclass(frozen=True)
class SessionSpec:
    """One drift scenario for an adaptive session."""

    codec: str = "tcomp32"
    scenario: str = "phase-shift"
    batches: int = 18
    window_batches: int = 3
    warmup_batches: int = 2
    latency_constraint: float = 20.0
    low_range: int = 500
    high_range: int = 50_000
    controller: ControllerConfig = ControllerConfig()

    def __post_init__(self) -> None:
        if self.scenario not in DRIFT_KINDS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {DRIFT_KINDS}"
            )
        if self.window_batches < 1:
            raise ConfigurationError("window must hold at least one batch")
        if self.warmup_batches >= self.batches:
            raise ConfigurationError("warmup must leave measurable batches")


@dataclass(frozen=True)
class SessionComparison:
    """Static vs adaptive outcome on one drift scenario."""

    spec: SessionSpec
    static: SessionResult
    adaptive: SessionResult
    static_energy_uj_per_byte: float
    adaptive_energy_uj_per_byte: float
    static_violations: int
    adaptive_violations: int
    #: violations among *steady-state* batches only — a drained
    #: window's first batch pays the full pipeline traversal (no
    #: overlap with the previous window) in both arms alike, so the
    #: constraint story is read off the non-boundary batches
    static_steady_violations: int
    adaptive_steady_violations: int
    controller_events: Tuple
    warm_start_hits: int
    #: residual-attribution health report of the adaptive arm — only
    #: populated when the session ran with ``telemetry=True``
    health: Optional[SessionHealth] = None

    @property
    def energy_saving(self) -> float:
        if self.static_energy_uj_per_byte == 0.0:
            return 0.0
        return 1.0 - (
            self.adaptive_energy_uj_per_byte / self.static_energy_uj_per_byte
        )


def build_drift_stream(
    harness, spec: SessionSpec
) -> Tuple[object, List[Mapping[str, StepCost]], int]:
    """The drifting per-batch cost stream plus its workload context.

    Profiles one Micro variant per distinct ``dynamic_range`` in the
    schedule (deterministic seeds derived from the harness seed) and
    assembles the per-batch step costs batch by batch. The returned
    context is profiled at ``low_range`` — the regime the static plan is
    optimized for, exactly as a one-shot deployment would be.
    """
    from repro.bench.harness import WorkloadSpec

    workload = WorkloadSpec.of(
        spec.codec,
        "micro",
        dataset_options={"dynamic_range": spec.low_range},
        latency_constraint=spec.latency_constraint,
    )
    context = harness.context(workload)
    ranges = drift_schedule(
        spec.scenario, spec.batches, low=spec.low_range, high=spec.high_range
    )
    profiles = {}
    for index, value in enumerate(sorted(set(ranges))):
        profiles[value] = profile_workload(
            get_codec(spec.codec),
            MicroDataset(dynamic_range=value),
            workload.batch_size,
            batches=3,
            seed=harness.seed + 1 + index,
        )
    stream: List[Mapping[str, StepCost]] = []
    for batch_index, value in enumerate(ranges):
        per_batch = profiles[value].per_batch_step_costs
        stream.append(per_batch[batch_index % len(per_batch)])
    return context, stream, workload.batch_size


def finalize_session_health(
    controller: SessionController,
    collector: TelemetryCollector,
    result: SessionResult,
    batch_bytes: int,
    label: str,
) -> SessionHealth:
    """Close out a telemetry-carrying session's health report.

    The executor collects telemetry for *every* window but only
    consults the controller on non-final boundaries, so the final
    window(s) sit in the collector unattributed; feed them through the
    controller's ledger — against the final adopted plan, which is
    what they ran under — and return the full report.
    """
    for telemetry in collector.windows[len(controller.health_windows):]:
        start = telemetry.batch_start
        previous = result.completion_ts_us[start - 1] if start > 0 else 0.0
        latencies = []
        for batch_index in range(start, start + telemetry.batch_count):
            completed = result.completion_ts_us[batch_index]
            latencies.append((completed - previous) / batch_bytes)
            previous = completed
        controller.ingest_telemetry(telemetry, latencies)
    return controller.session_health(label)


def run_adaptive_session(
    harness=None,
    spec: SessionSpec = SessionSpec(),
    trace=None,
    telemetry: bool = False,
) -> SessionComparison:
    """Run one drift scenario statically and adaptively and compare.

    ``trace`` (a :class:`~repro.obs.trace.TraceRecorder`) is attached to
    the *adaptive* session only — that is the run whose replan and
    migration events are worth inspecting. ``telemetry=True``
    additionally runs the adaptive arm with a residual-ledger
    telemetry collector and fills :attr:`SessionComparison.health`;
    the default keeps both arms byte-identical to a pre-telemetry
    build.
    """
    if harness is None:
        from repro.bench.harness import default_harness

        harness = default_harness()
    context, stream, batch_bytes = build_drift_stream(harness, spec)

    config = ExecutionConfig(
        latency_constraint_us_per_byte=spec.latency_constraint,
        repetitions=1,
        batches_per_repetition=spec.batches,
        warmup_batches=spec.warmup_batches,
        seed=harness.seed,
    )

    # Static arm: the one-shot plan for the profiled (pre-drift) regime.
    static_model = context.cost_model(context.fine_graph)
    static_plan = Scheduler(static_model).schedule(best_effort=True).estimate.plan
    static_result = PipelineExecutor(harness.board, config).run_session(
        static_plan,
        stream,
        batch_bytes,
        window_batches=spec.window_batches,
        controller=None,
    )

    # Adaptive arm: same initial plan, same windows, live controller.
    adaptive_model = context.cost_model(context.fine_graph)
    controller = SessionController(
        adaptive_model,
        stream,
        batch_bytes,
        config=spec.controller,
        plan=static_plan,
    )
    collector = TelemetryCollector() if telemetry else None
    adaptive_result = PipelineExecutor(
        harness.board, config, trace=trace, telemetry=collector
    ).run_session(
        static_plan,
        stream,
        batch_bytes,
        window_batches=spec.window_batches,
        controller=controller,
    )
    health = None
    if collector is not None:
        health = finalize_session_health(
            controller, collector, adaptive_result, batch_bytes,
            label=f"adapt:{spec.scenario}",
        )

    def _summarize(result: SessionResult) -> Tuple[float, int, int]:
        measured = result.measured(spec.warmup_batches)
        energy = sum(b.energy_uj_per_byte for b in measured) / len(measured)
        violations = sum(1 for b in measured if b.violated)
        steady = sum(
            1
            for b in measured
            if b.violated and b.batch_index % spec.window_batches != 0
        )
        return energy, violations, steady

    static_energy, static_violations, static_steady = _summarize(static_result)
    adaptive_energy, adaptive_violations, adaptive_steady = _summarize(
        adaptive_result
    )
    return SessionComparison(
        spec=spec,
        static=static_result,
        adaptive=adaptive_result,
        static_energy_uj_per_byte=static_energy,
        adaptive_energy_uj_per_byte=adaptive_energy,
        static_violations=static_violations,
        adaptive_violations=adaptive_violations,
        static_steady_violations=static_steady,
        adaptive_steady_violations=adaptive_steady,
        controller_events=tuple(controller.events),
        warm_start_hits=controller.warm_start_hits,
        health=health,
    )
