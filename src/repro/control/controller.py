"""The session controller: drift → warm replan → gated migration.

Decision pipeline, run once per window boundary (the executor calls
:meth:`SessionController.on_window` after draining the window's
in-flight batches):

1. **Drift detection** — the window's per-batch step costs feed a
   :class:`~repro.core.statistics_regulator.StatisticsAwareRegulator`
   in detect-only mode (``auto_replan=False``). The regulator owns the
   hysteresis and the one-step model recalibration
   (``latency_scale[stage] *= observed / baseline``); the controller
   owns what happens next.
2. **Incremental replanning** — on drift, a single shared
   :class:`~repro.core.scheduler.Scheduler` re-searches with
   ``warm_start=incumbent``: the incumbent's re-evaluated energy seeds
   the branch-and-bound bound (strict-``>`` pruning, so ties keep the
   incumbent) and the scheduler's per-stage energy-floor cache carries
   over — floors depend on κ scales, not on the recalibrated
   ``latency_scale``, so they survive drift recalibration.
3. **Migration gating** — the candidate is adopted only when the
   modeled energy savings over ``horizon_windows`` windows exceed the
   modeled migration cost (state transfer over the board's c0/c1/c2
   paths, priced with the profiled communication table, plus the
   pipeline-pause energy at static power). Exception: a candidate that
   rescues a violated latency constraint is adopted unconditionally —
   meeting ``L_set`` trumps the energy ledger.
4. **Residual diagnosis** (only when the executor carries a telemetry
   collector) — windows that violate ``L_set`` without any heartbeat or
   drift signal are handed to the residual ledger
   (:mod:`repro.obs.residuals`). When the ledger's health report pins
   the violation on a *signal-free* fault, the controller edits the
   cost model to match reality and replans around it with
   ``reason="diagnosis"``: a degraded interconnect path is re-priced in
   the communication table
   (:meth:`~repro.core.cost_model.CostModel.apply_path_degradation`),
   so the scheduler routes the pipeline off the slow link; a
   retry-heavy final stage gets its ``latency_scale`` inflated by the
   measured retry burden, so the scheduler buys replicas that shrink
   the re-run cost. Each (kind, key) is acted on once per session —
   the model edit is persistent, so repeating it would compound.

Everything is deterministic: the controller draws no randomness and
reads no clocks (the ledger's tie-break epsilons come from a fixed
seed); its only inputs are the window observation — including its
telemetry, when collected — and the pre-built per-batch step costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.compression.base import StepCost
from repro.core.cost_model import CostModel
from repro.core.plan import SchedulingPlan, migration_cost
from repro.core.scheduler import Scheduler
from repro.core.statistics_regulator import StatisticsAwareRegulator
from repro.errors import ConfigurationError
from repro.numerics import ordered_sum
from repro.obs.health import SessionHealth, WindowHealth, build_window_health
from repro.obs.residuals import LedgerConfig, ResidualLedger
from repro.runtime.executor import WindowDecision, WindowObservation
from repro.simcore.interconnect import Path

__all__ = [
    "ControllerConfig",
    "ControlEvent",
    "FailoverEvent",
    "SessionController",
]


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the online control loop."""

    #: relative per-stage work shift that counts as drift (the
    #: regulator's trigger; 15 % is above batch noise, below real jumps)
    trigger_threshold: float = 0.15
    #: EWMA factor on observed statistics (0 = trust each batch)
    smoothing: float = 0.3
    #: windows over which a candidate plan must amortize its migration
    horizon_windows: int = 4
    #: modeled savings must exceed migration cost by this factor
    min_saving_ratio: float = 1.0
    #: multiplier on the profiled per-stage output bytes standing in for
    #: the replica state footprint — the migratable state (dictionary,
    #: counters, partial window) is a fraction of one batch's output
    state_bytes_scale: float = 0.25
    #: residual anomaly score a health attribution must clear before a
    #: diagnosis replan fires (healthy windows sit near |score| ≈ 1)
    diagnosis_threshold: float = 3.0
    #: cap on the one-shot latency_scale inflation a retry diagnosis may
    #: apply — keeps a pathological window from poisoning the model
    diagnosis_scale_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.horizon_windows < 1:
            raise ConfigurationError("horizon must span at least one window")
        if self.min_saving_ratio <= 0.0:
            raise ConfigurationError("min_saving_ratio must be positive")
        if self.diagnosis_threshold <= 0.0:
            raise ConfigurationError("diagnosis threshold must be positive")
        if self.diagnosis_scale_cap < 1.0:
            raise ConfigurationError("diagnosis scale cap must be >= 1")


@dataclass(frozen=True)
class ControlEvent:
    """One window-boundary decision, for reporting and tests."""

    window_index: int
    drifted: bool
    replanned: bool
    adopted: bool
    reason: str
    incumbent_energy_uj_per_byte: float
    candidate_energy_uj_per_byte: float
    modeled_saving_uj: float
    migration_cost_uj: float
    migration_pause_us: float
    warm_start_hits: int


@dataclass(frozen=True)
class FailoverEvent:
    """One hardware-degradation recovery, for reporting and tests."""

    window_index: int
    failed_cores: tuple
    throttled_cores: tuple
    pause_us: float
    energy_uj: float
    candidate_energy_uj_per_byte: float


class SessionController:
    """Owns the plan across a windowed session (duck-typed into
    :meth:`~repro.runtime.executor.PipelineExecutor.run_session`)."""

    def __init__(
        self,
        model: CostModel,
        per_batch_step_costs: Sequence[Mapping[str, StepCost]],
        batch_bytes: int,
        config: ControllerConfig = ControllerConfig(),
        plan: Optional[SchedulingPlan] = None,
    ) -> None:
        self.model = model
        self.per_batch_step_costs = per_batch_step_costs
        self.batch_bytes = batch_bytes
        self.config = config
        # One scheduler for the whole session: its energy-floor cache
        # and warm-start bounds are what make replans incremental.
        self.scheduler = Scheduler(model)
        self.regulator = StatisticsAwareRegulator(
            model,
            trigger_threshold=config.trigger_threshold,
            smoothing=config.smoothing,
            auto_replan=False,
            scheduler=self.scheduler,
        )
        self.plan: SchedulingPlan = (
            plan if plan is not None else self.regulator.plan
        )
        self.events: List[ControlEvent] = []
        self.failovers: List[FailoverEvent] = []
        self.replans = 0
        self.plans_adopted = 0
        self.warm_start_hits = 0
        #: residual ledger + per-window health, populated only when the
        #: executor delivers telemetry with its window observations
        self.ledger = ResidualLedger(LedgerConfig())
        self.health_windows: List[WindowHealth] = []
        self._failed_cores: set = set()
        self._throttled: dict = {}
        #: (kind, key) pairs already acted on — each model edit is
        #: persistent, so repeating it would compound the correction
        self._diagnosed: set = set()
        self._state_bytes = {
            stage: model.stage_output_bytes(stage) * config.state_bytes_scale
            for stage in range(model.graph.stage_count)
        }
        board = model.board
        #: W == µJ/µs: prices the pipeline pause a migration causes
        self._static_power_w = board.uncore_power_w + ordered_sum(
            core.static_power_w for core in board.cores
        )

    # -- executor callback ---------------------------------------------------

    def on_window(
        self, observation: WindowObservation
    ) -> Optional[WindowDecision]:
        """Digest one completed window; maybe hand back a plan swap."""
        # The ledger sees the window against the plan that was actually
        # in force while it ran — before any decision below mutates the
        # model or the plan.
        health: Optional[WindowHealth] = None
        if observation.telemetry is not None:
            health = self.ingest_telemetry(
                observation.telemetry, observation.latencies_us_per_byte
            )
        drifted = False
        for batch_index in range(
            observation.batch_start,
            observation.batch_start + observation.batch_count,
        ):
            event = self.regulator.observe(
                batch_index, self.per_batch_step_costs[batch_index]
            )
            drifted = drifted or event.drifted
        # Hardware degradation outranks workload drift: a dead or newly
        # throttled core forces an immediate failover replan.
        new_failed = tuple(
            c for c in observation.failed_cores if c not in self._failed_cores
        )
        new_throttled = tuple(
            (core, mhz) for core, mhz in observation.throttled_mhz
            if self._throttled.get(core) != mhz
        )
        if new_failed or new_throttled:
            return self._failover(observation, new_failed, new_throttled)
        if drifted:
            return self._replan(observation)
        # No heartbeat, no drift: the residual ledger is the last line
        # of defense against signal-free faults.
        if health is not None:
            return self._diagnose(observation, health)
        return None

    # -- residual diagnosis ---------------------------------------------------

    def ingest_telemetry(
        self, telemetry, latencies_us_per_byte: Sequence[float]
    ) -> WindowHealth:
        """Feed one window's telemetry through the residual ledger.

        Called by :meth:`on_window` for every telemetry-carrying
        observation, and by the session glue for the final window (the
        executor consults no controller after the last batch). The
        window's measured latency is the steady-batch mean — the first
        batch of a window is the boundary batch that pays the full
        pipeline traversal, which the model's steady-state estimate
        deliberately excludes.
        """
        latencies = tuple(latencies_us_per_byte)
        steady = latencies[1:] if len(latencies) > 1 else latencies
        measured = ordered_sum(steady) / len(steady)
        estimate = self.model.evaluate(self.plan)
        residual = self.ledger.observe(
            telemetry, measured, self.plan, estimate, self.model
        )
        constraint = self.model.latency_constraint_us_per_byte
        violated = any(l > constraint for l in steady)
        health = build_window_health(
            residual, violated, self.config.diagnosis_threshold
        )
        self.health_windows.append(health)
        return health

    def session_health(self, label: str) -> SessionHealth:
        """The session's health report so far (windows in order)."""
        return SessionHealth(
            label=label,
            board=self.model.board.name,
            latency_constraint_us_per_byte=(
                self.model.latency_constraint_us_per_byte
            ),
            windows=tuple(self.health_windows),
        )

    def _diagnose(
        self, observation: WindowObservation, health: WindowHealth
    ) -> Optional[WindowDecision]:
        """Replan around a component the health report implicates.

        Fires only for windows that violate ``L_set`` with an anomalous
        attribution on a *signal-free* component — a degraded path or a
        retry-heavy stage. Core attributions stay report-only: an
        underperforming core that matters shows up through the
        heartbeat (throttle/failure) or drift paths, which own those
        responses.
        """
        attribution = health.attribution
        if attribution is None or not health.violated:
            return None
        if attribution.kind not in ("path", "retry"):
            return None
        if (attribution.kind, attribution.key) in self._diagnosed:
            return None
        self._diagnosed.add((attribution.kind, attribution.key))

        # Teach the model what the ledger measured, then replan on it.
        window = self.ledger.windows[-1]
        component = next(
            c for c in window.components
            if c.kind == attribution.kind and c.key == attribution.key
        )
        if attribution.kind == "path":
            if component.predicted_us_per_byte > 0.0:
                factor = (
                    component.measured_us_per_byte
                    / component.predicted_us_per_byte
                )
            else:
                factor = self.config.diagnosis_scale_cap
            factor = min(
                max(factor, 1.0), self.config.diagnosis_scale_cap
            )
            self.model.apply_path_degradation(Path(attribution.key), factor)
        else:
            stage = int(attribution.key)
            replica_l_comp = [
                t.l_comp_us_per_byte
                for t in self.model.evaluate(self.plan).task_estimates
                if t.stage_index == stage
            ]
            mean_l_comp = (
                ordered_sum(replica_l_comp) / len(replica_l_comp)
                if replica_l_comp else 0.0
            )
            if mean_l_comp <= 0.0:
                return None
            scale = 1.0 + component.measured_us_per_byte / mean_l_comp
            scale = min(scale, self.config.diagnosis_scale_cap)
            self.model.latency_scale[stage] = (
                self.model.latency_scale.get(stage, 1.0) * scale
            )
        # The scheduler's energy-floor caches and the vectorized cost
        # tables both predate the model edit — rebuild from scratch (and
        # keep honoring any earlier failover's survivor restriction).
        surviving = [
            c.core_id for c in self.model.board.cores
            if c.core_id not in self._failed_cores
        ]
        self.scheduler = Scheduler(
            self.model,
            allowed_cores=surviving if self._failed_cores else None,
        )
        self.regulator.scheduler = self.scheduler

        self.replans += 1
        incumbent = self.model.evaluate(self.plan)
        result = self.scheduler.schedule(best_effort=True, warm_start=self.plan)
        candidate = result.estimate
        hits = (
            result.search_stats.warm_start_hits
            if result.search_stats is not None
            else 0
        )
        self.warm_start_hits += hits

        delta = self.plan.diff(candidate.plan)
        cost = migration_cost(
            delta,
            self.model.board,
            self.model.communication,
            self._state_bytes,
        )
        window_bytes = float(self.batch_bytes * observation.batch_count)
        saving_uj = (
            incumbent.energy_uj_per_byte - candidate.energy_uj_per_byte
        ) * window_bytes * self.config.horizon_windows
        cost_uj = cost.energy_uj + cost.pause_us * self._static_power_w

        # A diagnosis targets an active SLO violation, so adoption is
        # unconditional (like a failover) whenever the placement moves.
        adopted = not delta.is_empty
        if adopted:
            self.plans_adopted += 1
            self.plan = candidate.plan
        self.events.append(
            ControlEvent(
                window_index=observation.window_index,
                drifted=False,
                replanned=True,
                adopted=adopted,
                reason="diagnosis",
                incumbent_energy_uj_per_byte=incumbent.energy_uj_per_byte,
                candidate_energy_uj_per_byte=candidate.energy_uj_per_byte,
                modeled_saving_uj=saving_uj,
                migration_cost_uj=cost_uj,
                migration_pause_us=cost.pause_us,
                warm_start_hits=hits,
            )
        )
        return WindowDecision(
            replanned=True,
            adopted=adopted,
            reason="diagnosis",
            plan=candidate.plan if adopted else None,
            pause_us=cost.pause_us if adopted else 0.0,
            energy_uj=cost.energy_uj if adopted else 0.0,
            moved_replicas=cost.moved_replicas,
            moves=delta.describe(),
            energy_uj_per_byte=candidate.energy_uj_per_byte,
            warm_start_hits=hits,
        )

    # -- internals -----------------------------------------------------------

    def _replan(self, observation: WindowObservation) -> WindowDecision:
        self.replans += 1
        incumbent = self.model.evaluate(self.plan)
        result = self.scheduler.schedule(
            best_effort=True, warm_start=self.plan
        )
        candidate = result.estimate
        hits = (
            result.search_stats.warm_start_hits
            if result.search_stats is not None
            else 0
        )
        self.warm_start_hits += hits

        delta = self.plan.diff(candidate.plan)
        cost = migration_cost(
            delta,
            self.model.board,
            self.model.communication,
            self._state_bytes,
        )
        window_bytes = float(self.batch_bytes * observation.batch_count)
        saving_uj = (
            incumbent.energy_uj_per_byte - candidate.energy_uj_per_byte
        ) * window_bytes * self.config.horizon_windows
        cost_uj = cost.energy_uj + cost.pause_us * self._static_power_w

        rescue = not incumbent.feasible and candidate.feasible
        if delta.is_empty:
            adopted = False
            reason = "incumbent-optimal"
        elif rescue:
            adopted = True
            reason = "constraint-rescue"
        elif saving_uj > cost_uj * self.config.min_saving_ratio:
            adopted = True
            reason = "amortized-saving"
        else:
            adopted = False
            reason = "migration-too-costly"

        self.events.append(
            ControlEvent(
                window_index=observation.window_index,
                drifted=True,
                replanned=True,
                adopted=adopted,
                reason=reason,
                incumbent_energy_uj_per_byte=incumbent.energy_uj_per_byte,
                candidate_energy_uj_per_byte=candidate.energy_uj_per_byte,
                modeled_saving_uj=saving_uj,
                migration_cost_uj=cost_uj,
                migration_pause_us=cost.pause_us,
                warm_start_hits=hits,
            )
        )
        if adopted:
            self.plans_adopted += 1
            self.plan = candidate.plan
        return WindowDecision(
            replanned=True,
            adopted=adopted,
            reason=reason,
            plan=candidate.plan if adopted else None,
            pause_us=cost.pause_us if adopted else 0.0,
            energy_uj=cost.energy_uj if adopted else 0.0,
            moved_replicas=cost.moved_replicas,
            moves=delta.describe(),
            energy_uj_per_byte=candidate.energy_uj_per_byte,
            warm_start_hits=hits,
        )

    def _fallback_core(self, core_id: int, surviving: Sequence[int]) -> int:
        """The executor's emergency-routing rule: lowest-id survivor of
        the same cluster, else lowest-id survivor anywhere. Matching the
        rule means the patched incumbent describes what the pipeline is
        already doing."""
        victim = self.model.board.core_by_id[core_id]
        same_cluster = [
            c for c in surviving
            if self.model.board.core_by_id[c].is_big == victim.is_big
        ]
        return min(same_cluster) if same_cluster else min(surviving)

    def _failover(
        self,
        observation: WindowObservation,
        new_failed: Sequence[int],
        new_throttled: Sequence,
    ) -> WindowDecision:
        """Replan over the surviving cores after hardware degradation.

        The candidate is adopted unconditionally — every batch spent on
        emergency routes pays the reroute surcharge (and likely violates
        ``L_set``), so no amortization argument applies."""
        self.replans += 1
        self._failed_cores.update(new_failed)
        for core, mhz in new_throttled:
            current = self._throttled.get(core)
            self._throttled[core] = (
                mhz if current is None else min(current, mhz)
            )
        if new_throttled:
            # Teach the cost model the capped frequencies so candidate
            # estimates price throttled cores honestly.
            fmap = dict(self.model.frequency_map or {})
            for core, mhz in self._throttled.items():
                fmap[core] = min(fmap.get(core, mhz), mhz)
            self.model.frequency_map = fmap
        surviving = [
            c.core_id for c in self.model.board.cores
            if c.core_id not in self._failed_cores
        ]
        # Fresh scheduler restricted to survivors, shared with the
        # regulator so later drift replans also avoid the dead cores.
        self.scheduler = Scheduler(self.model, allowed_cores=surviving)
        self.regulator.scheduler = self.scheduler

        routing = {
            core: self._fallback_core(core, surviving)
            for core in sorted(self._failed_cores)
        }
        patched = self.plan.remap_cores(routing)
        incumbent = self.model.evaluate(patched)
        result = self.scheduler.schedule(best_effort=True, warm_start=patched)
        candidate = result.estimate
        hits = (
            result.search_stats.warm_start_hits
            if result.search_stats is not None
            else 0
        )
        self.warm_start_hits += hits

        delta = self.plan.diff(candidate.plan)
        cost = migration_cost(
            delta,
            self.model.board,
            self.model.communication,
            self._state_bytes,
        )
        window_bytes = float(self.batch_bytes * observation.batch_count)
        saving_uj = (
            incumbent.energy_uj_per_byte - candidate.energy_uj_per_byte
        ) * window_bytes * self.config.horizon_windows
        cost_uj = cost.energy_uj + cost.pause_us * self._static_power_w

        self.plans_adopted += 1
        self.plan = candidate.plan
        self.events.append(
            ControlEvent(
                window_index=observation.window_index,
                drifted=False,
                replanned=True,
                adopted=True,
                reason="failover",
                incumbent_energy_uj_per_byte=incumbent.energy_uj_per_byte,
                candidate_energy_uj_per_byte=candidate.energy_uj_per_byte,
                modeled_saving_uj=saving_uj,
                migration_cost_uj=cost_uj,
                migration_pause_us=cost.pause_us,
                warm_start_hits=hits,
            )
        )
        self.failovers.append(
            FailoverEvent(
                window_index=observation.window_index,
                failed_cores=tuple(sorted(self._failed_cores)),
                throttled_cores=tuple(sorted(self._throttled.items())),
                pause_us=cost.pause_us,
                energy_uj=cost.energy_uj,
                candidate_energy_uj_per_byte=candidate.energy_uj_per_byte,
            )
        )
        return WindowDecision(
            replanned=True,
            adopted=True,
            reason="failover",
            plan=candidate.plan,
            pause_us=cost.pause_us,
            energy_uj=cost.energy_uj,
            moved_replicas=cost.moved_replicas,
            moves=delta.describe(),
            energy_uj_per_byte=candidate.energy_uj_per_byte,
            warm_start_hits=hits,
        )
