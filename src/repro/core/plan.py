"""Scheduling plans (paper Definition 2) and their estimates.

A :class:`SchedulingPlan` maps every task replica to a concrete core.
The paper describes a plan as the array ``p = {j_0, ..., j_{n-1}}``;
here the array is grouped per stage because replicas of one stage are
interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.task import TaskGraph
from repro.errors import ConfigurationError

__all__ = ["SchedulingPlan", "TaskEstimate", "PlanEstimate"]


@dataclass(frozen=True)
class SchedulingPlan:
    """Mapping of each stage's replicas to cores.

    ``assignments[s]`` is the tuple of core ids hosting stage ``s``'s
    replicas; its length is the stage's replication degree.
    """

    graph: TaskGraph
    assignments: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.assignments) != self.graph.stage_count:
            raise ConfigurationError(
                f"plan has {len(self.assignments)} stage assignments for "
                f"{self.graph.stage_count} stages"
            )
        for stage, cores in enumerate(self.assignments):
            if not cores:
                raise ConfigurationError(f"stage {stage} has no replicas")

    def replicas(self, stage_index: int) -> int:
        return len(self.assignments[stage_index])

    @property
    def total_replicas(self) -> int:
        return sum(len(cores) for cores in self.assignments)

    def cores_used(self) -> Tuple[int, ...]:
        used = sorted({core for cores in self.assignments for core in cores})
        return tuple(used)

    def flat(self) -> Tuple[int, ...]:
        """The paper's plan array: one core id per task replica, in
        stage-major order."""
        return tuple(core for cores in self.assignments for core in cores)

    def tasks_per_core(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for cores in self.assignments:
            for core in cores:
                counts[core] = counts.get(core, 0) + 1
        return counts

    def describe(self) -> str:
        """E.g. ``t0[s0+s1]@[4] -> t1[s2]@[0]``."""
        parts = []
        for task, cores in zip(self.graph.tasks, self.assignments):
            parts.append(f"{task}@{list(cores)}")
        return " -> ".join(parts)


@dataclass(frozen=True)
class TaskEstimate:
    """Cost-model outputs for one task replica (Eqs 4-7), batch
    normalized to µs/byte and µJ/byte."""

    stage_index: int
    replica_index: int
    core_id: int
    kappa: float
    l_comp_us_per_byte: float
    l_comm_us_per_byte: float
    energy_uj_per_byte: float

    @property
    def l_us_per_byte(self) -> float:
        """l_i = l_comp + l_comm (paper Eq 2)."""
        return self.l_comp_us_per_byte + self.l_comm_us_per_byte


@dataclass(frozen=True)
class PlanEstimate:
    """Cost-model evaluation of a whole plan (Eqs 1-3)."""

    plan: SchedulingPlan
    task_estimates: Tuple[TaskEstimate, ...]
    latency_us_per_byte: float
    energy_uj_per_byte: float
    feasible: bool
    infeasibility_reason: str = ""
    core_load_us_per_byte: Mapping[int, float] = field(default_factory=dict)

    def bottleneck(self) -> TaskEstimate:
        """The task replica with the highest estimated latency — the
        replication target of topologically-sorted iterative scaling."""
        return max(self.task_estimates, key=lambda est: est.l_us_per_byte)
