"""Scheduling plans (paper Definition 2) and their estimates.

A :class:`SchedulingPlan` maps every task replica to a concrete core.
The paper describes a plan as the array ``p = {j_0, ..., j_{n-1}}``;
here the array is grouped per stage because replicas of one stage are
interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.task import TaskGraph
from repro.errors import ConfigurationError

__all__ = ["SchedulingPlan", "TaskEstimate", "PlanEstimate"]


@dataclass(frozen=True)
class SchedulingPlan:
    """Mapping of each stage's replicas to cores.

    ``assignments[s]`` is the tuple of core ids hosting stage ``s``'s
    replicas; its length is the stage's replication degree.
    """

    graph: TaskGraph
    assignments: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.assignments) != self.graph.stage_count:
            raise ConfigurationError(
                f"plan has {len(self.assignments)} stage assignments for "
                f"{self.graph.stage_count} stages"
            )
        for stage, cores in enumerate(self.assignments):
            if not cores:
                raise ConfigurationError(f"stage {stage} has no replicas")

    def replicas(self, stage_index: int) -> int:
        return len(self.assignments[stage_index])

    @property
    def total_replicas(self) -> int:
        return sum(len(cores) for cores in self.assignments)

    def cores_used(self) -> Tuple[int, ...]:
        used = sorted({core for cores in self.assignments for core in cores})
        return tuple(used)

    def flat(self) -> Tuple[int, ...]:
        """The paper's plan array: one core id per task replica, in
        stage-major order."""
        return tuple(core for cores in self.assignments for core in cores)

    def tasks_per_core(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for cores in self.assignments:
            for core in cores:
                counts[core] = counts.get(core, 0) + 1
        return counts

    def describe(self) -> str:
        """E.g. ``t0[s0+s1]@[4] -> t1[s2]@[0]``."""
        parts = []
        for task, cores in zip(self.graph.tasks, self.assignments):
            parts.append(f"{task}@{list(cores)}")
        return " -> ".join(parts)

    def validate(
        self,
        *,
        board=None,
        expected_steps=None,
        cost_model=None,
        expect_feasible: bool = False,
        strict: bool = False,
    ):
        """Check this plan against the PLN001-PLN005 invariants.

        Raises :class:`~repro.errors.InvariantViolationError` on any
        error-severity finding (with ``strict=True``, on warnings too);
        returns the full findings list otherwise so callers can log
        warnings. ``board``/``expected_steps``/``cost_model`` enable the
        corresponding checks — see
        :func:`repro.analysis.verify.verify_plan`. Enabled for every
        :meth:`~repro.core.scheduler.Scheduler.schedule` call when
        ``REPRO_VALIDATE_PLANS=1`` (the test suite's default).
        """
        # Imported lazily: repro.analysis.verify is stdlib-only, but
        # keeping it out of module scope avoids import-time coupling of
        # the core data model to the analysis tooling.
        from repro.analysis.verify import verify_plan

        from repro.errors import InvariantViolationError

        findings = verify_plan(
            self,
            board=board,
            expected_steps=expected_steps,
            cost_model=cost_model,
            expect_feasible=expect_feasible,
        )
        failing = [
            finding
            for finding in findings
            if finding.severity == "error" or strict
        ]
        if failing:
            details = "; ".join(finding.format() for finding in failing)
            raise InvariantViolationError(
                f"plan {self.describe()} violates "
                f"{len(failing)} invariant(s): {details}",
                findings=failing,
            )
        return findings


@dataclass(frozen=True)
class TaskEstimate:
    """Cost-model outputs for one task replica (Eqs 4-7), batch
    normalized to µs/byte and µJ/byte."""

    stage_index: int
    replica_index: int
    core_id: int
    kappa: float
    l_comp_us_per_byte: float
    l_comm_us_per_byte: float
    energy_uj_per_byte: float

    @property
    def l_us_per_byte(self) -> float:
        """l_i = l_comp + l_comm (paper Eq 2)."""
        return self.l_comp_us_per_byte + self.l_comm_us_per_byte


@dataclass(frozen=True)
class PlanEstimate:
    """Cost-model evaluation of a whole plan (Eqs 1-3)."""

    plan: SchedulingPlan
    task_estimates: Tuple[TaskEstimate, ...]
    latency_us_per_byte: float
    energy_uj_per_byte: float
    feasible: bool
    infeasibility_reason: str = ""
    core_load_us_per_byte: Mapping[int, float] = field(default_factory=dict)

    def bottleneck(self) -> TaskEstimate:
        """The task replica with the highest estimated latency — the
        replication target of topologically-sorted iterative scaling."""
        return max(self.task_estimates, key=lambda est: est.l_us_per_byte)
