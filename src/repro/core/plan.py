"""Scheduling plans (paper Definition 2) and their estimates.

A :class:`SchedulingPlan` maps every task replica to a concrete core.
The paper describes a plan as the array ``p = {j_0, ..., j_{n-1}}``;
here the array is grouped per stage because replicas of one stage are
interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.core.task import TaskGraph
from repro.errors import ConfigurationError
from repro.numerics import ordered_sum

__all__ = [
    "SchedulingPlan",
    "TaskEstimate",
    "PlanEstimate",
    "ReplicaMove",
    "PlanDelta",
    "MigrationCost",
    "migration_cost",
]


@dataclass(frozen=True)
class SchedulingPlan:
    """Mapping of each stage's replicas to cores.

    ``assignments[s]`` is the tuple of core ids hosting stage ``s``'s
    replicas; its length is the stage's replication degree.
    """

    graph: TaskGraph
    assignments: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.assignments) != self.graph.stage_count:
            raise ConfigurationError(
                f"plan has {len(self.assignments)} stage assignments for "
                f"{self.graph.stage_count} stages"
            )
        for stage, cores in enumerate(self.assignments):
            if not cores:
                raise ConfigurationError(f"stage {stage} has no replicas")

    def replicas(self, stage_index: int) -> int:
        return len(self.assignments[stage_index])

    @property
    def total_replicas(self) -> int:
        return sum(len(cores) for cores in self.assignments)

    def cores_used(self) -> Tuple[int, ...]:
        used = sorted({core for cores in self.assignments for core in cores})
        return tuple(used)

    def flat(self) -> Tuple[int, ...]:
        """The paper's plan array: one core id per task replica, in
        stage-major order."""
        return tuple(core for cores in self.assignments for core in cores)

    def tasks_per_core(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for cores in self.assignments:
            for core in cores:
                counts[core] = counts.get(core, 0) + 1
        return counts

    def describe(self) -> str:
        """E.g. ``t0[s0+s1]@[4] -> t1[s2]@[0]`` for chains; DAG plans
        annotate join/fork stages with their producers the way
        :meth:`TaskGraph.describe` does (``t3[d3]@[0]<-[t1,t2]``)."""
        chain = self.graph.is_chain
        parts = []
        for task, cores in zip(self.graph.tasks, self.assignments):
            label = f"{task}@{list(cores)}"
            if not chain and task.predecessors:
                producers = ",".join(
                    self.graph.tasks[p].name for p in task.predecessors
                )
                label = f"{label}<-[{producers}]"
            parts.append(label)
        return " -> ".join(parts) if chain else " ; ".join(parts)

    def remap_cores(self, mapping: Mapping[int, int]) -> "SchedulingPlan":
        """A copy with every core id rewritten through ``mapping``
        (identity for absent keys).

        The controller's failover path uses this to patch a dead core out
        of the incumbent before warm-starting the replan search."""
        return SchedulingPlan(
            graph=self.graph,
            assignments=tuple(
                tuple(mapping.get(core, core) for core in cores)
                for cores in self.assignments
            ),
        )

    def diff(self, new_plan: "SchedulingPlan") -> "PlanDelta":
        """Replica moves turning this plan into ``new_plan``.

        Stage-indexed, so it is shape-agnostic: chains and DAG plans
        diff identically (moves are per-stage; the edge structure only
        matters when *pricing* the moves, via the migration table).
        Replicas of one stage are interchangeable, so the diff is a
        per-stage multiset comparison: cores present in both plans stay
        put, and the leftovers are paired source-to-destination in
        sorted core order (deterministic, and near-optimal because the
        pairing only prices inter-cluster hops, which sorting groups).
        When the replication degree grows, the extra destinations split
        state off an existing replica; when it shrinks, orphaned sources
        merge their state into a surviving replica — both are still
        moves with a concrete (from_core, to_core) pair to price.
        """
        if new_plan.graph != self.graph:
            raise ConfigurationError(
                "cannot diff plans built for different task graphs"
            )
        moves: List[ReplicaMove] = []
        for stage, (old_cores, new_cores) in enumerate(
            zip(self.assignments, new_plan.assignments)
        ):
            old_counts = _core_counts(old_cores)
            new_counts = _core_counts(new_cores)
            sources = _leftover(old_counts, new_counts)
            destinations = _leftover(new_counts, old_counts)
            paired = min(len(sources), len(destinations))
            for index in range(paired):
                moves.append(
                    ReplicaMove(stage, sources[index], destinations[index])
                )
            survivors = sorted(set(new_cores)) or sorted(set(old_cores))
            for index, destination in enumerate(destinations[paired:]):
                # Growth: state splits off an existing replica.
                donor_pool = sorted(set(old_cores)) or survivors
                moves.append(
                    ReplicaMove(
                        stage,
                        donor_pool[index % len(donor_pool)],
                        destination,
                    )
                )
            for index, source in enumerate(sources[paired:]):
                # Shrink: orphaned state merges into a survivor.
                moves.append(
                    ReplicaMove(
                        stage, source, survivors[index % len(survivors)]
                    )
                )
        return PlanDelta(moves=tuple(moves))

    def validate(
        self,
        *,
        board=None,
        expected_steps=None,
        step_dependencies=None,
        cost_model=None,
        expect_feasible: bool = False,
        strict: bool = False,
    ):
        """Check this plan against the PLN001-PLN006 invariants.

        Raises :class:`~repro.errors.InvariantViolationError` on any
        error-severity finding (with ``strict=True``, on warnings too);
        returns the full findings list otherwise so callers can log
        warnings. ``board``/``expected_steps``/``cost_model`` enable the
        corresponding checks; ``step_dependencies`` (the codec's step
        DAG, as produced by
        :meth:`~repro.compression.base.StreamCompressor.step_dependencies`)
        replaces PLN001's linear step-order data edges — see
        :func:`repro.analysis.verify.verify_plan`. Enabled for every
        :meth:`~repro.core.scheduler.Scheduler.schedule` call when
        ``REPRO_VALIDATE_PLANS=1`` (the test suite's default).
        """
        # Imported lazily: repro.analysis.verify is stdlib-only, but
        # keeping it out of module scope avoids import-time coupling of
        # the core data model to the analysis tooling.
        from repro.analysis.verify import verify_plan

        from repro.errors import InvariantViolationError

        findings = verify_plan(
            self,
            board=board,
            expected_steps=expected_steps,
            step_dependencies=step_dependencies,
            cost_model=cost_model,
            expect_feasible=expect_feasible,
        )
        failing = [
            finding
            for finding in findings
            if finding.severity == "error" or strict
        ]
        if failing:
            details = "; ".join(finding.format() for finding in failing)
            raise InvariantViolationError(
                f"plan {self.describe()} violates "
                f"{len(failing)} invariant(s): {details}",
                findings=failing,
            )
        return findings


@dataclass(frozen=True)
class TaskEstimate:
    """Cost-model outputs for one task replica (Eqs 4-7), batch
    normalized to µs/byte and µJ/byte."""

    stage_index: int
    replica_index: int
    core_id: int
    kappa: float
    l_comp_us_per_byte: float
    l_comm_us_per_byte: float
    energy_uj_per_byte: float

    @property
    def l_us_per_byte(self) -> float:
        """l_i = l_comp + l_comm (paper Eq 2)."""
        return self.l_comp_us_per_byte + self.l_comm_us_per_byte


@dataclass(frozen=True)
class PlanEstimate:
    """Cost-model evaluation of a whole plan (Eqs 1-3)."""

    plan: SchedulingPlan
    task_estimates: Tuple[TaskEstimate, ...]
    latency_us_per_byte: float
    energy_uj_per_byte: float
    feasible: bool
    infeasibility_reason: str = ""
    core_load_us_per_byte: Mapping[int, float] = field(default_factory=dict)
    #: longest path through the stage DAG (per-stage latency summed along
    #: the heaviest chain of edges) — the end-to-end latency a single
    #: batch sees. For chains this is the plain stage sum. Steady-state
    #: throughput is still governed by ``latency_us_per_byte`` (the
    #: bottleneck period, Eq 1); the critical path prices *pipeline
    #: depth*, which forks shorten and joins cannot extend past the
    #: heaviest branch.
    critical_path_us_per_byte: float = 0.0

    def bottleneck(self) -> TaskEstimate:
        """The task replica with the highest estimated latency — the
        replication target of topologically-sorted iterative scaling."""
        return max(self.task_estimates, key=lambda est: est.l_us_per_byte)


# -- plan diffing and migration costing (online control loop) ----------------


def _core_counts(cores: Tuple[int, ...]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for core in cores:
        counts[core] = counts.get(core, 0) + 1
    return counts


def _leftover(counts: Dict[int, int], other: Dict[int, int]) -> List[int]:
    """Cores of ``counts`` not matched by ``other``, sorted, with
    multiplicity."""
    cores: List[int] = []
    for core in sorted(counts):
        excess = counts[core] - other.get(core, 0)
        cores.extend([core] * max(excess, 0))
    return cores


@dataclass(frozen=True)
class ReplicaMove:
    """One stage replica relocating from one core to another."""

    stage_index: int
    from_core: int
    to_core: int


@dataclass(frozen=True)
class PlanDelta:
    """The replica moves between an incumbent and a candidate plan.

    Produced by :meth:`SchedulingPlan.diff`; priced by
    :func:`migration_cost`. An empty delta means the candidate is a
    relabeling of the incumbent and can be adopted for free.
    """

    moves: Tuple[ReplicaMove, ...]

    @property
    def is_empty(self) -> bool:
        return not self.moves

    @property
    def moved_replicas(self) -> int:
        return len(self.moves)

    def stages_touched(self) -> Tuple[int, ...]:
        return tuple(sorted({move.stage_index for move in self.moves}))

    def describe(self) -> str:
        if self.is_empty:
            return "no-op"
        return ", ".join(
            f"s{move.stage_index}:{move.from_core}->{move.to_core}"
            for move in self.moves
        )


#: state ships in page-sized messages; each page pays the per-message
#: energy of its path (the unit the dry-run communication table measures)
_MIGRATION_PAGE_BYTES = 4096.0


@dataclass(frozen=True)
class MigrationCost:
    """Modeled cost of applying a :class:`PlanDelta` at a window boundary.

    ``stall_us_by_core`` is the per-core pause while state transfers —
    both endpoints of a move stall for the full transfer (synchronous
    state handoff over the c0/c1/c2 path); independent moves on disjoint
    cores overlap, so the pipeline pause is the per-core maximum, not
    the sum.
    """

    stall_us_by_core: Tuple[Tuple[int, float], ...]
    transfer_us: float
    energy_uj: float
    moved_replicas: int

    @property
    def pause_us(self) -> float:
        """The window-boundary pipeline pause (slowest stalled core)."""
        return max((stall for _, stall in self.stall_us_by_core), default=0.0)


def migration_cost(
    delta: PlanDelta,
    board,
    communication,
    state_bytes_by_stage: Mapping[int, float],
) -> MigrationCost:
    """Price a plan delta: state transfer over the board's paths.

    ``communication`` is the profiled
    :class:`~repro.core.profiler.CommunicationTable` (Eq 7's unit costs
    and overheads), so migration is priced with the same measurements
    the scheduler plans with. ``state_bytes_by_stage`` maps each stage
    to its transferable state footprint (working set + codec state);
    stages absent from the mapping move for free.
    """
    stalls: Dict[int, float] = {}
    energy_terms: List[float] = []
    transfer_total = 0.0
    for move in delta.moves:
        if move.from_core == move.to_core:
            continue
        state_bytes = float(state_bytes_by_stage.get(move.stage_index, 0.0))
        path = board.path_between(move.from_core, move.to_core)
        transfer_us = (
            state_bytes * communication.unit_cost(path)
            + communication.overhead(path)
        )
        pages = max(state_bytes / _MIGRATION_PAGE_BYTES, 1.0)
        energy_terms.append(communication.energy(path) * pages)
        transfer_total += transfer_us
        for core in (move.from_core, move.to_core):
            stalls[core] = stalls.get(core, 0.0) + transfer_us
    return MigrationCost(
        stall_us_by_core=tuple(sorted(stalls.items())),
        transfer_us=transfer_total,
        energy_uj=ordered_sum(energy_terms),
        moved_replicas=len(delta.moves),
    )
