"""Model-guided plan search (paper §V-C) with iterative scaling (§IV-B).

The search enumerates scheduling plans with a dynamic program over
pipeline stages. Stage indices are a topological order of the task
graph (a :class:`~repro.core.task.TaskGraph` invariant: every
predecessor has a lower index), so the same stage-by-stage depth-first
walk is simultaneously a walk over chains and over fork/join DAGs —
when a stage is placed, every producer it prices communication against
is already placed. Two structural reductions keep it exact *and* small:

* cores inside a cluster are identical, so a stage's placement is a
  *split* ``(n_little, n_big)`` of its replicas between clusters; the
  concrete core ids are then assigned deterministically (least-loaded
  core of the cluster first), which is optimal because intra-cluster
  paths all cost c0;
* the search is a depth-first branch-and-bound over per-stage cluster
  splits: a partial plan carries its accumulated energy and per-core
  load profile, and a branch is cut when that energy plus the sum of
  the remaining stages' independent per-stage energy minima cannot
  beat the best complete feasible plan found so far (see
  :meth:`Scheduler.search` for the exact bounds). There is no memo
  table — per-core loads are continuous, so distinct prefixes almost
  never collide; ``plans_evaluated`` counts complete plans reaching
  evaluation, not pruned branches.

Replication follows the paper's *topologically sorted iterative
scaling*: start with one replica per stage; while no feasible plan
exists, replicate the bottleneck stage (highest estimated latency under
the best latency-minimizing plan) and search again, until feasibility or
core saturation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cost_model import CostModel
from repro.core.plan import PlanEstimate, SchedulingPlan
from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.numerics import ordered_sum
from repro.obs.registry import REGISTRY

__all__ = ["Scheduler", "ScheduleResult", "SearchStats"]


@dataclass(frozen=True)
class SearchStats:
    """Instrumentation of one :meth:`Scheduler.schedule` invocation.

    ``nodes_expanded`` counts per-stage split branches the depth-first
    walk actually descended into; ``branches_pruned`` counts branches
    cut by the energy-floor / latency bound; ``plans_evaluated`` counts
    complete plans reaching cost-model evaluation; ``scaling_rounds``
    counts iterative-scaling restarts; ``wall_clock_s`` is real time.
    """

    nodes_expanded: int = 0
    branches_pruned: int = 0
    plans_evaluated: int = 0
    scaling_rounds: int = 0
    wall_clock_s: float = 0.0
    #: branches that only the warm-started incumbent bound could cut
    #: (0 for cold searches; see :meth:`Scheduler.schedule`'s warm_start)
    warm_start_hits: int = 0

    def as_pairs(self) -> Tuple[Tuple[str, float], ...]:
        """(name, value) pairs for trace summaries and reports."""
        return (
            ("nodes_expanded", float(self.nodes_expanded)),
            ("branches_pruned", float(self.branches_pruned)),
            ("plans_evaluated", float(self.plans_evaluated)),
            ("scaling_rounds", float(self.scaling_rounds)),
            ("wall_clock_s", self.wall_clock_s),
            ("warm_start_hits", float(self.warm_start_hits)),
        )


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one workload."""

    estimate: PlanEstimate
    replica_counts: Tuple[int, ...]
    plans_evaluated: int
    feasible: bool
    #: search instrumentation (None only for hand-built results)
    search_stats: Optional[SearchStats] = field(default=None, compare=False)

    @property
    def plan(self) -> SchedulingPlan:
        return self.estimate.plan


class Scheduler:
    """Searches for the energy-optimal feasible plan (Eq 1 s.t. Eqs 2-3)."""

    def __init__(
        self,
        model: CostModel,
        max_replicas_per_stage: Optional[int] = None,
        allowed_cores: Optional[Iterable[int]] = None,
    ) -> None:
        self.model = model
        self.board = model.board
        self._little = list(self.board.little_core_ids)
        self._big = list(self.board.big_core_ids)
        if allowed_cores is not None:
            # Restrict the search to a surviving subset (the controller's
            # failover path after a permanent core failure).
            allowed = set(allowed_cores)
            unknown = allowed - set(self.board.core_by_id)
            if unknown:
                raise ConfigurationError(
                    f"allowed_cores names unknown cores {sorted(unknown)}"
                )
            self._little = [c for c in self._little if c in allowed]
            self._big = [c for c in self._big if c in allowed]
            if not self._little and not self._big:
                raise ConfigurationError(
                    "allowed_cores leaves no core to schedule on"
                )
        if max_replicas_per_stage is None:
            max_replicas_per_stage = len(self._little) + len(self._big)
        self.max_replicas_per_stage = max_replicas_per_stage
        #: instrumentation of the most recent :meth:`search` call
        self.last_search_counters: Dict[str, int] = {
            "expanded": 0, "pruned": 0, "evaluated": 0, "warm_pruned": 0,
        }
        # Per-stage energy minima reused across incremental replans: the
        # floors depend only on replica counts and the energy-side model
        # parameters (κ scales), not on the latency calibration the
        # regulator adjusts, so a controller replanning after drift
        # recomputes nothing here.
        self._floor_cache: Dict[Tuple, List[float]] = {}

    # -- placement enumeration ---------------------------------------------

    def _stage_placements(self, replicas: int):
        """All (n_little, n_big) splits of a stage's replicas."""
        for n_big in range(min(replicas, len(self._big) * 2) + 1):
            n_little = replicas - n_big
            if n_little > len(self._little) * 2:
                continue
            if n_little < 0:
                continue
            yield (n_little, n_big)

    def _assign_cores(
        self, split: Tuple[int, int], load: Dict[int, float]
    ) -> Tuple[int, ...]:
        """Concrete cores for a split: least-loaded cluster cores first."""
        n_little, n_big = split
        cores: List[int] = []
        for count, pool in ((n_little, self._little), (n_big, self._big)):
            if count == 0:
                continue
            ordered = sorted(pool, key=lambda c: (load.get(c, 0.0), c))
            for index in range(count):
                cores.append(ordered[index % len(ordered)])
        return tuple(cores)

    # -- search ---------------------------------------------------------------

    def _energy_floor_key(self, replica_counts: Tuple[int, ...]) -> Tuple:
        """Cache key of the per-stage energy minima: the floors depend on
        the replica counts and the κ scales (which shift each stage's
        position on the ζ curve), never on the latency calibration."""
        return (
            replica_counts,
            tuple(sorted(self.model.kappa_scale.items())),
        )

    def _stage_energy_floors(
        self,
        replica_counts: Tuple[int, ...],
        stage_splits: List[List[Tuple[int, int]]],
    ) -> List[float]:
        key = self._energy_floor_key(replica_counts)
        cached = self._floor_cache.get(key)
        if cached is not None:
            REGISTRY.inc("scheduler.floor_cache_hits")
            return cached
        floors: List[float] = []
        for stage_index, splits in enumerate(stage_splits):
            minima = []
            for split in splits:
                cores = self._assign_cores(split, {})
                minima.append(
                    ordered_sum(
                        self.model.task_energy(stage_index, core, len(cores))
                        for core in cores
                    )
                )
            floors.append(min(minima) if minima else 0.0)
        self._floor_cache[key] = floors
        return floors

    def search(
        self,
        replica_counts: Tuple[int, ...],
        initial_bound: Optional[float] = None,
    ) -> Tuple[Optional[PlanEstimate], Optional[PlanEstimate], int]:
        """Enumerate plans for fixed replica counts, with pruning.

        The enumeration is a depth-first walk over per-stage cluster
        splits. Two admissible bounds keep it far below the full
        product:

        * **energy bound** — each stage's energy is minimized over its
          own placements independently of the others (communication adds
          energy, never removes it), so partial energy plus the sum of
          the remaining stages' independent minima is a lower bound; a
          branch that cannot beat the incumbent feasible plan is cut;
        * the **latency floor** of a partial plan only grows as stages
          are added, so branches are also cut for the min-latency search
          once both incumbents are unbeatable.

        ``initial_bound`` seeds the energy bound with an incumbent
        plan's energy *before any complete plan has been evaluated* —
        this is how a warm-started incremental replan prunes from the
        first branch. The bound is applied strictly (``>``), so an
        equal-energy alternative is still explored and exactness is
        preserved.

        Returns ``(best_feasible, min_latency, plans_evaluated)`` — the
        energy optimum among feasible plans (or None) and the
        latency-minimizing plan (used to locate the bottleneck stage for
        iterative scaling). After each call,
        :attr:`last_search_counters` holds the walk's instrumentation
        (``expanded`` branches descended, ``pruned`` branches cut,
        ``evaluated`` complete plans, ``warm_pruned`` cuts only the
        incumbent bound enabled); :meth:`schedule` aggregates them into
        a :class:`SearchStats`.
        """
        graph = self.model.graph
        stage_splits = [
            list(self._stage_placements(r)) for r in replica_counts
        ]
        # Independent per-stage energy minima for the lower bound
        # (cached across replans — see _stage_energy_floors).
        stage_energy_floor = self._stage_energy_floors(
            replica_counts, stage_splits
        )
        remaining_floor = [0.0] * (graph.stage_count + 1)
        for stage_index in range(graph.stage_count - 1, -1, -1):
            remaining_floor[stage_index] = (
                remaining_floor[stage_index + 1]
                + stage_energy_floor[stage_index]
            )

        state = {
            "best": None,       # best feasible estimate
            "fastest": None,    # min-latency estimate
            "evaluated": 0,
            "expanded": 0,      # branches descended into
            "pruned": 0,        # branches cut by the bounds
            "warm_pruned": 0,   # cuts only the incumbent bound enabled
        }

        def consider(assignments: List[Tuple[int, ...]]) -> None:
            plan = SchedulingPlan(graph=graph, assignments=tuple(assignments))
            estimate = self.model.evaluate(plan)
            state["evaluated"] += 1
            fastest = state["fastest"]
            if fastest is None or (
                estimate.latency_us_per_byte < fastest.latency_us_per_byte
            ):
                state["fastest"] = estimate
            best = state["best"]
            if estimate.feasible and (
                best is None
                or estimate.energy_uj_per_byte < best.energy_uj_per_byte
                or (
                    estimate.energy_uj_per_byte == best.energy_uj_per_byte
                    and estimate.latency_us_per_byte
                    < best.latency_us_per_byte
                )
            ):
                state["best"] = estimate

        def walk(
            stage_index: int,
            assignments: List[Tuple[int, ...]],
            load: Dict[int, float],
            partial_energy: float,
        ) -> None:
            if stage_index == graph.stage_count:
                consider(assignments)
                return
            for split in stage_splits[stage_index]:
                cores = self._assign_cores(split, load)
                replicas = len(cores)
                stage_energy = ordered_sum(
                    self.model.task_energy(stage_index, core, replicas)
                    for core in cores
                )
                candidate_energy = partial_energy + stage_energy
                best = state["best"]
                energy_floor = (
                    candidate_energy + remaining_floor[stage_index + 1]
                )
                beaten_by_best = (
                    best is not None
                    and energy_floor >= best.energy_uj_per_byte
                )
                beaten_by_incumbent = (
                    initial_bound is not None and energy_floor > initial_bound
                )
                if (beaten_by_best or beaten_by_incumbent) and state[
                    "fastest"
                ] is not None and (
                    # The latency incumbent can still improve; only cut
                    # when the branch cannot help either search. A
                    # cheap sufficient condition: the partial core loads
                    # already exceed the fastest plan seen.
                    max(load.values(), default=0.0)
                    >= state["fastest"].latency_us_per_byte
                ):
                    state["pruned"] += 1
                    if beaten_by_incumbent and not beaten_by_best:
                        state["warm_pruned"] += 1
                    continue
                state["expanded"] += 1
                new_load = dict(load)
                for core in cores:
                    new_load[core] = new_load.get(
                        core, 0.0
                    ) + self.model.compute_latency(stage_index, core, replicas)
                assignments.append(cores)
                walk(stage_index + 1, assignments, new_load, candidate_energy)
                assignments.pop()

        walk(0, [], {}, 0.0)
        self.last_search_counters = {
            "expanded": state["expanded"],
            "pruned": state["pruned"],
            "evaluated": state["evaluated"],
            "warm_pruned": state["warm_pruned"],
        }
        return state["best"], state["fastest"], state["evaluated"]

    # -- plan validation ------------------------------------------------------

    def _validate_if_enabled(
        self, plan: SchedulingPlan, expect_feasible: bool
    ) -> None:
        """Run the PLN invariants on a plan about to be returned.

        Gated behind ``REPRO_VALIDATE_PLANS=1`` (tests set it by
        default via ``conftest.py``) so production scheduling pays
        nothing; when on, a structurally broken plan raises
        :class:`~repro.errors.InvariantViolationError` before any
        simulation runs on it.
        """
        # The env read selects *whether to double-check*, never what the
        # scheduler computes — results are identical either way.
        if os.environ.get("REPRO_VALIDATE_PLANS") != "1":  # csa: ignore[CSA007]
            return
        dependency_map = getattr(
            self.model.profile, "dependency_map", None
        )
        plan.validate(
            board=self.board,
            expected_steps=self.model.profile.step_ids,
            step_dependencies=(
                dependency_map() if callable(dependency_map) else None
            ),
            cost_model=self.model if expect_feasible else None,
            expect_feasible=expect_feasible,
        )

    # -- iterative scaling ------------------------------------------------------

    def schedule(
        self,
        best_effort: bool = False,
        warm_start: Optional[SchedulingPlan] = None,
    ) -> ScheduleResult:
        """Find the optimal plan, replicating bottleneck stages lazily.

        With ``best_effort=True`` an infeasible workload returns the
        latency-minimizing plan instead of raising — this is how
        best-effort mechanisms keep running and get charged their
        constraint violations.

        ``warm_start`` is an incumbent plan from a previous schedule of
        the same graph (the online control loop's current plan). It is
        re-evaluated under the *current* model — the calibration may
        have drifted since it was found — and, when still feasible,
        seeds the branch-and-bound's energy bound before the first
        branch, so an incremental replan prunes everything that cannot
        beat the incumbent. If nothing strictly beats it, the incumbent
        itself is returned (refreshed), which means a warm replan is
        never worse than keeping the current plan. Ties go to the
        incumbent — deliberately, since adopting an equal-energy plan
        would cost a migration for nothing.
        """
        graph = self.model.graph
        replica_counts = [1] * graph.stage_count
        total_evaluated = 0
        total_expanded = 0
        total_pruned = 0
        total_warm_pruned = 0
        scaling_rounds = 0
        # Wall-clock here instruments the *search*, which runs before the
        # simulation starts — it never feeds simulated time or results.
        search_started = time.perf_counter()  # csa: ignore[CSA001]
        fallback: Optional[PlanEstimate] = None
        best_overall: Optional[PlanEstimate] = None
        best_counts: Optional[Tuple[int, ...]] = None
        core_count = len(self._little) + len(self._big)

        if warm_start is not None and warm_start.graph == self.model.graph:
            incumbent = self.model.evaluate(warm_start)
            if incumbent.feasible:
                best_overall = incumbent
                best_counts = tuple(
                    len(cores) for cores in warm_start.assignments
                )
            elif incumbent.latency_us_per_byte > 0:
                fallback = incumbent

        while True:
            bound = (
                best_overall.energy_uj_per_byte
                if best_overall is not None
                else None
            )
            best, min_latency, evaluated = self.search(
                tuple(replica_counts), initial_bound=bound
            )
            total_evaluated += evaluated
            total_expanded += self.last_search_counters["expanded"]
            total_pruned += self.last_search_counters["pruned"]
            total_warm_pruned += self.last_search_counters["warm_pruned"]
            scaling_rounds += 1
            if min_latency is not None:
                if fallback is None or (
                    min_latency.latency_us_per_byte
                    < fallback.latency_us_per_byte
                ):
                    fallback = min_latency
            improved = best is not None and (
                best_overall is None
                or best.energy_uj_per_byte < best_overall.energy_uj_per_byte
            )
            if improved:
                best_overall = best
                best_counts = tuple(replica_counts)
            if (
                sum(replica_counts) >= core_count
                or max(replica_counts) >= self.max_replicas_per_stage
                or min_latency is None
            ):
                break
            # Replicate the bottleneck stage of the best plan so far (or
            # of the fastest infeasible plan while still infeasible).
            reference = best_overall if best_overall is not None else min_latency
            bottleneck = reference.bottleneck().stage_index
            if replica_counts[bottleneck] >= self.max_replicas_per_stage:
                # Saturated; try the next-worst stage.
                candidates = sorted(
                    reference.task_estimates,
                    key=lambda est: -est.l_us_per_byte,
                )
                for candidate in candidates:
                    if (
                        replica_counts[candidate.stage_index]
                        < self.max_replicas_per_stage
                    ):
                        bottleneck = candidate.stage_index
                        break
                else:
                    break
            replica_counts[bottleneck] += 1

        stats = SearchStats(
            nodes_expanded=total_expanded,
            branches_pruned=total_pruned,
            plans_evaluated=total_evaluated,
            scaling_rounds=scaling_rounds,
            # Same wall-clock instrumentation as above: reporting only.
            wall_clock_s=time.perf_counter() - search_started,  # csa: ignore[CSA001]
            warm_start_hits=total_warm_pruned,
        )
        # Publish to the process-wide metrics registry so the harness
        # and benches can report aggregate search effort.
        REGISTRY.inc("scheduler.schedules")
        REGISTRY.inc("scheduler.plans_evaluated", total_evaluated)
        REGISTRY.inc("scheduler.nodes_expanded", total_expanded)
        REGISTRY.inc("scheduler.branches_pruned", total_pruned)
        REGISTRY.inc("scheduler.warm_start_hits", total_warm_pruned)
        REGISTRY.observe("scheduler.search", stats.wall_clock_s)

        if best_overall is not None:
            self._validate_if_enabled(best_overall.plan, expect_feasible=True)
            return ScheduleResult(
                estimate=best_overall,
                replica_counts=best_counts,
                plans_evaluated=total_evaluated,
                feasible=True,
                search_stats=stats,
            )
        if best_effort and fallback is not None:
            self._validate_if_enabled(fallback.plan, expect_feasible=False)
            return ScheduleResult(
                estimate=fallback,
                replica_counts=tuple(
                    len(cores) for cores in fallback.plan.assignments
                ),
                plans_evaluated=total_evaluated,
                feasible=False,
                search_stats=stats,
            )
        raise InfeasiblePlanError(
            f"no plan meets {self.model.latency_constraint_us_per_byte:.2f} "
            f"µs/byte for {graph.codec_name} "
            f"(best achievable: "
            f"{fallback.latency_us_per_byte if fallback else float('nan'):.2f})"
        )
