"""Dry-run profiling (paper §V-B).

Three measurements feed the cost model:

* :func:`profile_workload` — run the codec on a handful of warm-up
  batches (the paper instantiates with 10~100) and average the per-step
  costs; κ of each step is instructions / memory accesses from the
  codec's counters (the paper uses ``perf`` plus static analysis).
* :func:`profile_roofline` — feed synthetic kernels of varying κ to one
  core and record (κ, η) and (κ, ζ) samples for the piecewise-linear fit
  of Eq 5; samples carry a small measurement noise like a real profiling
  run.
* :func:`measure_communication` — set up a producer/consumer core pair
  per path and measure the unit cost and per-message overhead of Eq 7.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression.base import StepCost, StreamCompressor
from repro.compression.stats import BatchStatistics, analyze_batch
from repro.datasets.base import Dataset
from repro.errors import ProfilingError
from repro.simcore.boards import BoardSpec
from repro.simcore.hardware import CoreSpec
from repro.simcore.interconnect import Path

__all__ = [
    "WorkloadProfile",
    "profile_workload",
    "profile_roofline",
    "measure_communication",
    "RooflineSamples",
    "CommunicationTable",
]

_DEFAULT_PROFILE_BATCHES = 10


@dataclass(frozen=True)
class WorkloadProfile:
    """Averaged per-step costs of one Algorithm-Dataset procedure."""

    codec_name: str
    dataset_name: str
    batch_size_bytes: int
    stateful: bool
    step_ids: Tuple[str, ...]
    mean_step_costs: Dict[str, StepCost]
    per_batch_step_costs: Tuple[Dict[str, StepCost], ...]
    statistics: BatchStatistics
    compression_ratio: float
    #: the codec's step DAG (step id -> producer step ids), ``None`` for
    #: profiles captured before the DAG generalization — consumers fall
    #: back to the linear chain via :meth:`dependency_map`, which also
    #: keeps previously cached/pickled profiles loadable.
    step_dependencies: Optional[Dict[str, Tuple[str, ...]]] = None

    @property
    def batch_count(self) -> int:
        return len(self.per_batch_step_costs)

    def dependency_map(self) -> Dict[str, Tuple[str, ...]]:
        """Step DAG with the chain fallback for legacy profiles."""
        declared = getattr(self, "step_dependencies", None)
        if declared:
            return dict(declared)
        return {
            step_id: (() if index == 0 else (self.step_ids[index - 1],))
            for index, step_id in enumerate(self.step_ids)
        }

    def step_kappa(self, step_id: str) -> float:
        return self.mean_step_costs[step_id].operational_intensity

    def fingerprint(self) -> str:
        """Stable content digest of the profile.

        Profiles are pickled into the persistent result cache and
        shipped to grid worker processes (:mod:`repro.bench.parallel`);
        the fingerprint lets both sides assert that a transported
        profile is the one that was measured. ``repr`` is deterministic
        here: every field is a plain scalar, tuple, or dict built in
        step order.
        """
        digest = hashlib.sha256(repr(self).encode("utf-8"))
        return digest.hexdigest()[:16]


def profile_workload(
    codec: StreamCompressor,
    dataset: Dataset,
    batch_size: int,
    batches: int = _DEFAULT_PROFILE_BATCHES,
    seed: int = 0,
    warmup_batches: int = 1,
) -> WorkloadProfile:
    """Compress sample batches and average per-step costs.

    The first ``warmup_batches`` batches prime stateful codecs (empty
    dictionaries make the very first batch unrepresentative) and are
    excluded from the averaged costs.
    """
    if batches < 1:
        raise ProfilingError("need at least one profiling batch")
    if warmup_batches < 0:
        raise ProfilingError("warmup_batches must be non-negative")
    codec.reset()
    per_batch: List[Dict[str, StepCost]] = []
    first_batch = None
    output_total = 0
    input_total = 0
    stream = dataset.stream(batch_size, batches + warmup_batches, seed=seed)
    for index, batch in enumerate(stream):
        result = codec.compress(batch)
        if index < warmup_batches:
            continue
        if first_batch is None:
            first_batch = batch
        per_batch.append(dict(result.step_costs))
        output_total += result.output_size
        input_total += result.input_size
    if input_total == 0:
        raise ProfilingError("profiling produced no data")

    step_ids = codec.step_ids()
    mean_costs: Dict[str, StepCost] = {}
    for step_id in step_ids:
        costs = [batch_costs[step_id] for batch_costs in per_batch]
        mean_costs[step_id] = StepCost(
            instructions=float(np.mean([c.instructions for c in costs])),
            memory_accesses=float(np.mean([c.memory_accesses for c in costs])),
            input_bytes=int(np.mean([c.input_bytes for c in costs])),
            output_bytes=int(np.mean([c.output_bytes for c in costs])),
        )
    return WorkloadProfile(
        codec_name=codec.name,
        dataset_name=dataset.name,
        batch_size_bytes=len(first_batch),
        stateful=codec.stateful,
        step_ids=step_ids,
        mean_step_costs=mean_costs,
        per_batch_step_costs=tuple(per_batch),
        statistics=analyze_batch(first_batch),
        compression_ratio=input_total / output_total if output_total else float("inf"),
        step_dependencies={
            step_id: tuple(producers)
            for step_id, producers in codec.step_dependencies().items()
        },
    )


@dataclass(frozen=True)
class RooflineSamples:
    """(κ, η, ζ) samples measured on one core."""

    core_id: int
    kappas: Tuple[float, ...]
    eta_values: Tuple[float, ...]
    zeta_values: Tuple[float, ...]


def profile_roofline(
    core: CoreSpec,
    kappas: Sequence[float] = None,
    noise: float = 0.004,
    seed: int = 0,
) -> RooflineSamples:
    """Sample a core's η/ζ curves with synthetic kernels of varying κ.

    This emulates the roofline-toolkit style microbenchmarks the paper
    profiles with (Lo et al.): each sample runs a kernel whose
    instruction/memory-access ratio is κ and measures throughput and
    energy. ``noise`` is the relative measurement error.
    """
    if kappas is None:
        # Dense at low κ where the little core's curves have kinks
        # (κ≈30 and κ≈70), coarser toward the roof.
        kappas = tuple(
            float(k)
            for k in (
                list(range(2, 80, 2))
                + list(range(80, 200, 6))
                + list(range(200, 520, 8))
            )
        )
    if not kappas:
        raise ProfilingError("need at least one κ sample")
    rng = np.random.default_rng(seed + core.core_id)
    eta_noise = rng.normal(1.0, noise, size=len(kappas))
    zeta_noise = rng.normal(1.0, noise, size=len(kappas))
    eta_values = tuple(
        core.eta.value(k) * float(n) for k, n in zip(kappas, eta_noise)
    )
    zeta_values = tuple(
        core.zeta.value(k) * float(n) for k, n in zip(kappas, zeta_noise)
    )
    return RooflineSamples(
        core_id=core.core_id,
        kappas=tuple(kappas),
        eta_values=eta_values,
        zeta_values=zeta_values,
    )


@dataclass(frozen=True)
class CommunicationTable:
    """Measured Eq 7 parameters per path class, plus the per-message
    transfer energy the dry run observes on the supply rail."""

    unit_cost_us_per_byte: Dict[Path, float]
    message_overhead_us: Dict[Path, float]
    message_energy_uj: Dict[Path, float] = None

    def unit_cost(self, path: Path) -> float:
        if path is Path.LOCAL:
            return 0.0
        return self.unit_cost_us_per_byte[path]

    def overhead(self, path: Path) -> float:
        if path is Path.LOCAL:
            return 0.0
        return self.message_overhead_us[path]

    def energy(self, path: Path) -> float:
        if path is Path.LOCAL or not self.message_energy_uj:
            return 0.0
        return self.message_energy_uj[path]


#: process-wide memo, same contract as the curve cache in
#: :mod:`repro.core.cost_model`: the measurement depends only on
#: (board, noise, seed) and nothing mutates a returned table, so every
#: workload context on the same board shares one instance.
_COMMUNICATION_CACHE: Dict[Tuple[str, float, int], "CommunicationTable"] = {}


def measure_communication(
    board: BoardSpec, noise: float = 0.02, seed: int = 0
) -> CommunicationTable:
    """Dry-run producer/consumer measurement of each path's Eq 7 costs.

    The paper measures ``L_comm`` and ``ω`` for every core pair by
    pinning a producer thread on one core and a consumer on the other;
    with symmetric cores this reduces to one measurement per path class.
    """
    cache_key = (repr(board), noise, seed)
    cached = _COMMUNICATION_CACHE.get(cache_key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(seed)
    unit: Dict[Path, float] = {}
    overhead: Dict[Path, float] = {}
    energy: Dict[Path, float] = {}
    for path in (Path.C0, Path.C1, Path.C2):
        cost = board.interconnect.costs[path]
        unit[path] = cost.unit_cost_us_per_byte * float(rng.normal(1.0, noise))
        overhead[path] = cost.message_overhead_us * float(rng.normal(1.0, noise))
        energy[path] = cost.message_energy_uj * float(rng.normal(1.0, noise))
    if len(_COMMUNICATION_CACHE) >= 64:
        _COMMUNICATION_CACHE.clear()
    table = CommunicationTable(
        unit_cost_us_per_byte=unit,
        message_overhead_us=overhead,
        message_energy_uj=energy,
    )
    _COMMUNICATION_CACHE[cache_key] = table
    return table
