"""Statistics-aware regulation (the paper's future-work controller).

§V-D closes by noting that the PID regulator's response "may be lagged
when facing a bursting workload" — it needs at least three observations
(Eq 8) — and that "more sophisticated controllers that monitor workload
statistical information in the datastream may achieve an even better
response". This module implements that controller.

Instead of inferring drift from the *latency error* (an indirect,
lagging signal), :class:`StatisticsAwareRegulator` watches the
*per-stage instruction counts* the codec's counters report for each
batch — the direct driver of Eq 6. When a stage's work shifts beyond a
threshold against the profiled baseline, the model is recalibrated in a
single step (scale = observed / baseline) and the scheduler replans
immediately: a distribution jump is handled in one batch instead of
three or four.

The trade-off is sensitivity: the PID integrates noise away, while the
statistics watcher must distinguish real drift from batch-to-batch
variation — hence the hysteresis (``trigger_threshold`` to act,
``settle_threshold`` to re-anchor the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.compression.base import StepCost
from repro.core.cost_model import CostModel
from repro.core.plan import PlanEstimate
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError

__all__ = ["StatisticsAwareRegulator", "StatisticsEvent"]


@dataclass(frozen=True)
class StatisticsEvent:
    """Outcome of one batch observation."""

    batch_index: int
    #: per-stage observed/baseline instruction ratios
    stage_shifts: Mapping[int, float]
    max_shift: float
    replanned: bool
    #: the shift crossed the trigger and the model was recalibrated
    #: (equals ``replanned`` when the regulator replans for itself;
    #: with ``auto_replan=False`` this is the drift signal a session
    #: controller acts on)
    drifted: bool = False


@dataclass
class StatisticsAwareRegulator:
    """Replans from direct workload-statistics observation.

    Parameters
    ----------
    model:
        The cost model to keep calibrated (its ``latency_scale`` is the
        calibrated parameter, as in the PID regulator).
    trigger_threshold:
        Relative per-stage work shift that triggers recalibration
        (default 15 % — above batch noise, below any real range jump).
    smoothing:
        EWMA factor for the observed statistics (0 = trust each batch).
    """

    model: CostModel
    trigger_threshold: float = 0.15
    smoothing: float = 0.3
    estimate: PlanEstimate = None
    events: List[StatisticsEvent] = field(default_factory=list)
    #: with ``auto_replan=False`` the regulator only recalibrates the
    #: model and reports ``drifted`` — the session controller owns the
    #: replanning decision (warm start, migration gating)
    auto_replan: bool = True
    #: an externally-owned scheduler to replan with (shares its
    #: energy-floor cache across recalibrations); ``None`` builds one
    scheduler: Scheduler = None

    def __post_init__(self) -> None:
        if not 0.0 < self.trigger_threshold < 1.0:
            raise ConfigurationError("trigger_threshold must be in (0, 1)")
        if not 0.0 <= self.smoothing < 1.0:
            raise ConfigurationError("smoothing must be in [0, 1)")
        self._baseline = self._stage_instructions_from_profile()
        self._smoothed: Dict[int, float] = dict(self._baseline)
        if self.scheduler is None:
            self.scheduler = Scheduler(self.model)
        if self.estimate is None:
            self.estimate = self.scheduler.schedule(
                best_effort=True
            ).estimate

    @property
    def plan(self):
        return self.estimate.plan

    def _stage_instructions_from_profile(self) -> Dict[int, float]:
        return {
            stage: self.model.stage_instructions(stage)
            for stage in range(self.model.graph.stage_count)
        }

    def observe(
        self, batch_index: int, batch_step_costs: Mapping[str, StepCost]
    ) -> StatisticsEvent:
        """Feed one batch's per-step costs; recalibrate and replan on
        drift. Returns what happened; ``self.plan`` reflects replans."""
        shifts: Dict[int, float] = {}
        for stage, task in enumerate(self.model.graph.tasks):
            observed = task.merged_cost(batch_step_costs).instructions
            previous = self._smoothed[stage]
            smoothed = (
                self.smoothing * previous + (1.0 - self.smoothing) * observed
            )
            self._smoothed[stage] = smoothed
            shifts[stage] = smoothed / self._baseline[stage]

        max_shift = max(abs(ratio - 1.0) for ratio in shifts.values())
        replanned = False
        drifted = False
        if max_shift > self.trigger_threshold:
            # One-step recalibration: the observed work *is* the new
            # baseline; Eq 6 scales linearly in instructions.
            drifted = True
            for stage, ratio in shifts.items():
                self.model.latency_scale[stage] = (
                    self.model.latency_scale.get(stage, 1.0) * ratio
                )
                self._baseline[stage] = self._smoothed[stage]
            if self.auto_replan:
                self.estimate = self.scheduler.schedule(
                    best_effort=True
                ).estimate
                replanned = True

        event = StatisticsEvent(
            batch_index=batch_index,
            stage_shifts=shifts,
            max_shift=max_shift,
            replanned=replanned,
            drifted=drifted,
        )
        self.events.append(event)
        return event
