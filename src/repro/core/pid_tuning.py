"""PSO tuning of the feedback controller's gains (paper §VII-A).

The paper configures the incremental PID (Eq 8) "with [P, I, D] as
[0.1, 0.85, 0.05] under the guidance of well-known PSO tuning [86]".
This module implements that tuning step: a plain particle-swarm
optimizer over the gain cube, scored on the controller's closed-loop
response to a calibration step — the exact situation §V-D's regulator
faces when a workload jumps.

The fitness is ITAE (integral of time-weighted absolute error — the
standard PID-tuning criterion, late errors cost more) plus an overshoot
penalty, so tuned gains both converge fast and avoid the oscillation
the paper's Fig 9 shows during re-adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.core.adaptive import IncrementalPID
from repro.errors import ConfigurationError

__all__ = ["PsoResult", "step_response_fitness", "pso_tune_pid"]

#: gain search cube: (low, high) per gain, matching sane PID ranges
DEFAULT_BOUNDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0),   # P
    (0.05, 1.5),  # I
    (0.0, 0.5),   # D
)


@dataclass(frozen=True)
class PsoResult:
    """Outcome of one tuning run."""

    gains: Tuple[float, float, float]
    fitness: float
    iterations: int
    evaluations: int
    history: Tuple[float, ...]  # best fitness per iteration


def step_response_fitness(
    gains: Sequence[float],
    horizon: int = 20,
    step: float = 1.0,
    overshoot_weight: float = 4.0,
) -> float:
    """Closed-loop step-tracking cost of a gain triple.

    The plant is the regulator's own calibration loop: an estimate that
    moves by the controller's increment each observation
    (``x_{k+1} = x_k + δ_k``), chasing a step change of ``step`` — i.e.
    the latency-scale recalibration after a workload jump.
    """
    p, i, d = gains
    if min(p, i, d) < 0:
        return float("inf")
    controller = IncrementalPID(p, i, d)
    x = 0.0
    cost = 0.0
    for k in range(1, horizon + 1):
        error = step - x
        x += controller.step(error)
        cost += k * abs(step - x)           # ITAE
        overshoot = max(0.0, (x - step) * (1.0 if step >= 0 else -1.0))
        cost += overshoot_weight * k * overshoot
    return cost


def pso_tune_pid(
    fitness: Callable[[Sequence[float]], float] = step_response_fitness,
    bounds: Sequence[Tuple[float, float]] = DEFAULT_BOUNDS,
    swarm_size: int = 24,
    iterations: int = 40,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
    seed: int = 0,
) -> PsoResult:
    """Standard global-best PSO over the PID gain cube.

    Constriction-style defaults (Clerc's ω=0.72, c1=c2=1.49) keep the
    swarm stable; positions are clamped to the bounds.
    """
    if swarm_size < 2 or iterations < 1:
        raise ConfigurationError("need at least 2 particles and 1 iteration")
    if len(bounds) != 3:
        raise ConfigurationError("bounds must cover (P, I, D)")
    rng = np.random.default_rng(seed)
    low = np.array([b[0] for b in bounds])
    high = np.array([b[1] for b in bounds])
    if np.any(high <= low):
        raise ConfigurationError("each bound needs low < high")

    positions = rng.uniform(low, high, size=(swarm_size, 3))
    velocities = rng.uniform(
        -(high - low) / 4, (high - low) / 4, size=(swarm_size, 3)
    )
    personal_best = positions.copy()
    personal_fitness = np.array(
        [fitness(tuple(position)) for position in positions]
    )
    best_index = int(np.argmin(personal_fitness))
    global_best = personal_best[best_index].copy()
    global_fitness = float(personal_fitness[best_index])
    evaluations = swarm_size
    history = [global_fitness]

    for _ in range(iterations):
        r_cognitive = rng.random((swarm_size, 3))
        r_social = rng.random((swarm_size, 3))
        velocities = (
            inertia * velocities
            + cognitive * r_cognitive * (personal_best - positions)
            + social * r_social * (global_best - positions)
        )
        positions = np.clip(positions + velocities, low, high)
        for index in range(swarm_size):
            value = fitness(tuple(positions[index]))
            evaluations += 1
            if value < personal_fitness[index]:
                personal_fitness[index] = value
                personal_best[index] = positions[index]
                if value < global_fitness:
                    global_fitness = float(value)
                    global_best = positions[index].copy()
        history.append(global_fitness)

    return PsoResult(
        gains=tuple(float(g) for g in global_best),
        fitness=global_fitness,
        iterations=iterations,
        evaluations=evaluations,
        history=tuple(history),
    )
