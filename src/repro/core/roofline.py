"""Piecewise-linear roofline fitting (paper Eq 5).

The cost model estimates a core's η(κ) and ζ(κ) as four-region
piecewise-linear functions fitted to profiled samples. The fit is the
classic *segmented least squares* dynamic program: for ``k`` segments
over ``n`` sorted samples it chooses the segment boundaries minimizing
the total squared error of per-segment line fits — O(k·n²) with O(n²)
precomputed single-segment errors.

Outside the sampled κ range the fit clamps: below the first sample it
extends the first segment, above the last sample it holds the last
segment's end value (the "roof").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ProfilingError

__all__ = ["FittedPiecewise", "fit_piecewise"]


@dataclass(frozen=True)
class FittedPiecewise:
    """A fitted piecewise-linear curve over κ.

    ``boundaries[s]`` is the κ upper edge of segment ``s`` (the last one
    is the roof knee); ``slopes``/``intercepts`` are per-segment line
    parameters.
    """

    boundaries: Tuple[float, ...]
    slopes: Tuple[float, ...]
    intercepts: Tuple[float, ...]
    kappa_min: float
    kappa_max: float
    residual: float

    @property
    def segment_count(self) -> int:
        return len(self.slopes)

    @property
    def roof(self) -> float:
        """Value held above the last sampled κ."""
        return self.slopes[-1] * self.kappa_max + self.intercepts[-1]

    def value(self, kappa: float) -> float:
        """Evaluate the fit at ``kappa`` (clamped outside the fit range)."""
        if kappa < 0:
            raise ValueError(f"operational intensity must be >= 0, got {kappa}")
        kappa = min(kappa, self.kappa_max)
        for boundary, slope, intercept in zip(
            self.boundaries, self.slopes, self.intercepts
        ):
            if kappa <= boundary:
                return max(slope * kappa + intercept, 1e-9)
        return max(self.roof, 1e-9)

    def values(self, kappas: Sequence[float]) -> Tuple[float, ...]:
        return tuple(self.value(k) for k in kappas)


def _line_fit_errors(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """err[i, j] = SSE of the least-squares line through points i..j.

    Row-vectorized, bit-identical to the incremental scalar version it
    replaced: ``np.add.accumulate`` is a *sequential* left fold
    (``out[k] = out[k-1] + in[k]``, no pairwise tree), so every running
    moment equals the scalar ``s += term`` accumulation exactly, and the
    per-cell slope/intercept/SSE formulas keep the same parenthesization.
    Degenerate cells (single point, vertical run) divide by a dummy 1.0
    and are masked to the scalar branch's 0.0.
    """
    n = len(x)
    err = np.zeros((n, n))
    xx = x * x
    xy = x * y
    yy = y * y
    for i in range(n):
        sx = np.add.accumulate(x[i:])
        sy = np.add.accumulate(y[i:])
        sxx = np.add.accumulate(xx[i:])
        sxy = np.add.accumulate(xy[i:])
        syy = np.add.accumulate(yy[i:])
        count = np.arange(1, n - i + 1, dtype=float)
        denominator = count * sxx - sx * sx
        degenerate = (count < 2) | (np.abs(denominator) < 1e-12)
        safe = np.where(degenerate, 1.0, denominator)
        slope = (count * sxy - sx * sy) / safe
        intercept = (sy - slope * sx) / count
        sse = (
            syy
            - 2 * slope * sxy
            - 2 * intercept * sy
            + slope * slope * sxx
            + 2 * slope * intercept * sx
            + count * intercept * intercept
        )
        err[i, i:] = np.where(degenerate, 0.0, np.maximum(sse, 0.0))
    return err


def _line_params(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    count = len(x)
    if count == 1:
        return 0.0, float(y[0])
    sx, sy = float(x.sum()), float(y.sum())
    sxx, sxy = float((x * x).sum()), float((x * y).sum())
    denominator = count * sxx - sx * sx
    if abs(denominator) < 1e-12:
        return 0.0, sy / count
    slope = (count * sxy - sx * sy) / denominator
    intercept = (sy - slope * sx) / count
    return slope, intercept


def fit_piecewise(
    kappas: Sequence[float],
    values: Sequence[float],
    segments: int = 4,
) -> FittedPiecewise:
    """Segmented least-squares fit of ``values`` over ``kappas``.

    The paper fits four segments (Eq 5, Fig 3); fewer samples than
    2×segments reduce the segment count automatically.
    """
    if len(kappas) != len(values):
        raise ProfilingError("kappas and values must have the same length")
    if len(kappas) < 2:
        raise ProfilingError("need at least two samples to fit a roofline")
    order = np.argsort(np.asarray(kappas, dtype=float))
    x = np.asarray(kappas, dtype=float)[order]
    y = np.asarray(values, dtype=float)[order]
    n = len(x)
    segments = max(1, min(segments, n // 2))

    err = _line_fit_errors(x, y)
    infinity = float("inf")
    # dp[s][j]: best error covering points 0..j with s+1 segments.
    dp = np.full((segments, n), infinity)
    choice = np.zeros((segments, n), dtype=int)
    dp[0, :] = err[0, :]
    for s in range(1, segments):
        # Vectorized split search. np.argmin returns the *first* minimum,
        # matching the scalar loop's strict-< update rule, so tie-breaks
        # (and therefore the reconstructed boundaries) are unchanged.
        prev = dp[s - 1]
        for j in range(s, n):
            candidates = prev[s - 1:j] + err[s:j + 1, j]
            best_index = int(np.argmin(candidates))
            dp[s, j] = candidates[best_index]
            choice[s, j] = s + best_index

    # Reconstruct segment starts.
    starts = []
    j = n - 1
    for s in range(segments - 1, 0, -1):
        i = int(choice[s, j])
        starts.append(i)
        j = i - 1
    starts.append(0)
    starts.reverse()

    boundaries, slopes, intercepts = [], [], []
    for index, start in enumerate(starts):
        end = (starts[index + 1] - 1) if index + 1 < len(starts) else n - 1
        slope, intercept = _line_params(x[start:end + 1], y[start:end + 1])
        slopes.append(slope)
        intercepts.append(intercept)
        boundaries.append(float(x[end]))
    return FittedPiecewise(
        boundaries=tuple(boundaries),
        slopes=tuple(slopes),
        intercepts=tuple(intercepts),
        kappa_min=float(x[0]),
        kappa_max=float(x[-1]),
        residual=float(dp[segments - 1, n - 1]),
    )
