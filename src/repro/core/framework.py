"""The CStream facade: profile → decompose → schedule → execute.

:class:`CStream` wires the full Fig 4 workflow together for one
workload procedure (Algorithm-Dataset pair, Definition 1):

>>> from repro import CStream
>>> from repro.simcore.boards import rk3399
>>> framework = CStream(
...     codec="tcomp32", dataset="rovio",
...     batch_size=65536, latency_constraint_us_per_byte=26.0,
... )
>>> schedule = framework.plan()
>>> result = framework.run(repetitions=10)

The facade is deliberately thin — each phase is its own module and can
be driven independently (see the examples/ directory).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.compression import StreamCompressor, get_codec
from repro.core.baselines import (
    CStreamMechanism,
    Mechanism,
    WorkloadContext,
    get_mechanism,
)
from repro.core.profiler import WorkloadProfile, profile_workload
from repro.core.scheduler import ScheduleResult, Scheduler
from repro.datasets import Dataset, get_dataset
from repro.errors import ConfigurationError
from repro.runtime.executor import ExecutionConfig, PipelineExecutor
from repro.runtime.metrics import RunResult
from repro.simcore.boards import BoardSpec, rk3399

__all__ = ["CStream"]


class CStream:
    """Parallelize one stream-compression procedure on one board."""

    def __init__(
        self,
        codec: Union[str, StreamCompressor],
        dataset: Union[str, Dataset],
        batch_size: int,
        latency_constraint_us_per_byte: float,
        board: Optional[BoardSpec] = None,
        profile_batches: int = 10,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.dataset = (
            get_dataset(dataset) if isinstance(dataset, str) else dataset
        )
        self.batch_size = batch_size
        self.latency_constraint = latency_constraint_us_per_byte
        self.board = board if board is not None else rk3399()
        self.profile_batches = profile_batches
        self.seed = seed
        self._profile: Optional[WorkloadProfile] = None
        self._context: Optional[WorkloadContext] = None
        self._schedule: Optional[ScheduleResult] = None

    # -- workflow phases -----------------------------------------------------

    def profile(self) -> WorkloadProfile:
        """Dry-run profiling of the workload (cached)."""
        if self._profile is None:
            self._profile = profile_workload(
                self.codec,
                self.dataset,
                self.batch_size,
                batches=self.profile_batches,
                seed=self.seed,
            )
        return self._profile

    def context(self) -> WorkloadContext:
        """Board calibration + fine-grained decomposition (cached)."""
        if self._context is None:
            self._context = WorkloadContext.build(
                self.board,
                self.profile(),
                self.latency_constraint,
                seed=self.seed,
            )
        return self._context

    def plan(self, best_effort: bool = False) -> ScheduleResult:
        """Asymmetry-aware scheduling of the decomposed tasks (cached)."""
        if self._schedule is None:
            context = self.context()
            model = context.cost_model(context.fine_graph)
            self._schedule = Scheduler(model).schedule(best_effort=best_effort)
        return self._schedule

    def run(
        self,
        repetitions: int = 100,
        batches_per_repetition: int = 6,
        mechanism: Union[str, Mechanism, None] = None,
        **config_options,
    ) -> RunResult:
        """Execute the planned pipeline on the simulated board.

        ``mechanism`` defaults to CStream itself; pass a baseline name
        ("OS", "CS", "RR", "BO", "LO") to measure a competitor on the
        same workload.
        """
        context = self.context()
        if mechanism is None:
            mechanism = CStreamMechanism()
        elif isinstance(mechanism, str):
            mechanism = get_mechanism(mechanism)
        outcome = mechanism.prepare(context)
        config = ExecutionConfig(
            latency_constraint_us_per_byte=self.latency_constraint,
            repetitions=repetitions,
            batches_per_repetition=batches_per_repetition,
            seed=self.seed,
            **config_options,
        )
        executor = PipelineExecutor(self.board, config)
        profile = self.profile()
        per_batch = list(profile.per_batch_step_costs)
        # Pad/trim the profiled batches to the requested window length.
        while len(per_batch) < batches_per_repetition:
            per_batch.extend(profile.per_batch_step_costs)
        per_batch = per_batch[:batches_per_repetition]
        return executor.run(
            outcome.plan,
            per_batch,
            profile.batch_size_bytes,
            dynamics=outcome.dynamics,
        )

    # -- direct codec access ---------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        """Compress a batch with the configured codec (no simulation)."""
        return self.codec.compress(data).payload

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`."""
        return self.codec.decompress(payload)
