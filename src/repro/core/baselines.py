"""The six parallelization mechanisms compared in the paper (§VI-A),
plus the §VII-D break-down ablations.

Each mechanism turns a profiled workload into (task graph, scheduling
plan, runtime dynamics). The plan may be a fixed
:class:`~repro.core.plan.SchedulingPlan` or a per-repetition factory for
randomized mechanisms (BO, LO, OS, and the random-placement ablations).

* **CStream** — fine-grained decomposition + asymmetry-aware scheduling.
* **OS** — whole-procedure workers placed by the simulated EAS kernel
  scheduler, with migration/context-switch dynamics.
* **CS** — coarse-grained: the whole procedure as one task, scheduled by
  CStream's asymmetry-aware scheduler (prior-work style).
* **RR** — fine-grained tasks, round-robin over cores.
* **BO** / **LO** — fine-grained tasks randomly on big / little cores.

Ablations for Fig 17: ``simple`` (replicated whole procedure, random
symmetric placement), ``+decom.`` (fine tasks, random placement),
``+asy-comp.`` (model-guided but communication-blind), ``+asy-comm.``
(full CStream).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.core.cost_model import CostModel, calibrate_curves
from repro.core.decomposition import decompose
from repro.core.plan import SchedulingPlan
from repro.core.profiler import (
    CommunicationTable,
    WorkloadProfile,
    measure_communication,
)
from repro.core.scheduler import Scheduler
from repro.core.task import TaskGraph
from repro.errors import ConfigurationError
from repro.runtime.executor import MechanismDynamics
from repro.simcore.boards import BoardSpec
from repro.simcore.os_sched import (
    OS_CONTEXT_SWITCHES_PER_KB,
    OS_MIGRATION_RATE,
    eas_place,
)

__all__ = [
    "WorkloadContext",
    "MechanismOutcome",
    "Mechanism",
    "CStreamMechanism",
    "OSMechanism",
    "CoarseGrainedMechanism",
    "RoundRobinMechanism",
    "BigOnlyMechanism",
    "LittleOnlyMechanism",
    "SimpleAblation",
    "DecompositionAblation",
    "AsymmetricComputationAblation",
    "MECHANISM_NAMES",
    "get_mechanism",
]

PlanOrProvider = Union[
    SchedulingPlan, Callable[[int, np.random.Generator], SchedulingPlan]
]


@dataclass(frozen=True)
class WorkloadContext:
    """Shared per-workload inputs every mechanism consumes."""

    board: BoardSpec
    profile: WorkloadProfile
    latency_constraint_us_per_byte: float
    curves: object
    communication: CommunicationTable
    fine_graph: TaskGraph
    coarse_graph: TaskGraph
    seed: int = 0
    #: static frequency map for planning (None = maximum frequencies)
    frequency_map: Optional[dict] = None

    @classmethod
    def build(
        cls,
        board: BoardSpec,
        profile: WorkloadProfile,
        latency_constraint_us_per_byte: float,
        seed: int = 0,
        frequency_map: Optional[dict] = None,
    ) -> "WorkloadContext":
        """Profile the board and decompose the workload once."""
        curves = calibrate_curves(board, seed=seed)
        communication = measure_communication(board, seed=seed)
        fine_graph = decompose(profile, board, curves.eta, communication)
        coarse_graph = TaskGraph.coarse(profile.codec_name, profile.step_ids)
        return cls(
            board=board,
            profile=profile,
            latency_constraint_us_per_byte=latency_constraint_us_per_byte,
            curves=curves,
            communication=communication,
            fine_graph=fine_graph,
            coarse_graph=coarse_graph,
            seed=seed,
            frequency_map=frequency_map,
        )

    def cost_model(
        self, graph: TaskGraph, **options
    ) -> CostModel:
        options.setdefault("frequency_map", self.frequency_map)
        return CostModel(
            board=self.board,
            graph=graph,
            profile=self.profile,
            curves=self.curves,
            communication=self.communication,
            latency_constraint_us_per_byte=self.latency_constraint_us_per_byte,
            **options,
        )


@dataclass(frozen=True)
class MechanismOutcome:
    """What a mechanism decided for one workload."""

    mechanism: str
    graph: TaskGraph
    plan: PlanOrProvider
    dynamics: MechanismDynamics = MechanismDynamics()
    scheduled_feasible: bool = True
    estimate: Optional[object] = None  # PlanEstimate when model-guided
    description: str = ""
    #: SearchStats of the plan search (None for search-free mechanisms)
    search_stats: Optional[object] = None


class Mechanism(abc.ABC):
    """A strategy for parallelizing a stream-compression procedure."""

    name: str = ""

    @abc.abstractmethod
    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        """Decide graph, plan and runtime dynamics for a workload."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Mechanism {self.name}>"


def _random_plan_provider(
    graph: TaskGraph, core_pool: Tuple[int, ...]
) -> Callable[[int, np.random.Generator], SchedulingPlan]:
    """Each repetition draws one random core per stage from the pool."""

    def provider(repetition: int, rng: np.random.Generator) -> SchedulingPlan:
        assignments = tuple(
            (int(rng.choice(core_pool)),) for _ in graph.tasks
        )
        return SchedulingPlan(graph=graph, assignments=assignments)

    return provider


class CStreamMechanism(Mechanism):
    """Fine-grained decomposition + fully asymmetry-aware scheduling.

    Decomposition is a means, not an end: when shipping intermediate
    data between stages costs more than the task-core affinity buys
    (fusion's global analogue), the fused single-task pipeline is the
    better decomposition — so CStream schedules both granularities and
    keeps the cheaper feasible plan.
    """

    name = "CStream"

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        candidates = []
        for graph in (context.fine_graph, context.coarse_graph):
            model = context.cost_model(graph)
            result = Scheduler(model).schedule(best_effort=True)
            candidates.append((graph, result))
        feasible = [c for c in candidates if c[1].feasible]
        pool = feasible if feasible else candidates
        graph, result = min(
            pool, key=lambda c: c[1].estimate.energy_uj_per_byte
        )
        return MechanismOutcome(
            mechanism=self.name,
            graph=graph,
            plan=result.plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.01),
            scheduled_feasible=result.feasible,
            estimate=result.estimate,
            description=result.plan.describe(),
            search_stats=result.search_stats,
        )


class CoarseGrainedMechanism(Mechanism):
    """CS: whole procedure as one task, asymmetry-aware scheduling."""

    name = "CS"

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        model = context.cost_model(context.coarse_graph)
        result = Scheduler(model).schedule(best_effort=True)
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.coarse_graph,
            plan=result.plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            scheduled_feasible=result.feasible,
            estimate=result.estimate,
            description=result.plan.describe(),
            search_stats=result.search_stats,
        )


class RoundRobinMechanism(Mechanism):
    """RR: fine-grained tasks mapped sequentially to core 0, 1, 2, ..."""

    name = "RR"

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        cores = context.board.core_ids
        assignments = tuple(
            (cores[index % len(cores)],)
            for index in range(context.fine_graph.stage_count)
        )
        plan = SchedulingPlan(graph=context.fine_graph, assignments=assignments)
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.fine_graph,
            plan=plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            description=plan.describe(),
        )


class BigOnlyMechanism(Mechanism):
    """BO: fine-grained tasks randomly on the big cores only."""

    name = "BO"

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        provider = _random_plan_provider(
            context.fine_graph, context.board.big_core_ids
        )
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.fine_graph,
            plan=provider,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            description="random placement on big cores",
        )


class LittleOnlyMechanism(Mechanism):
    """LO: fine-grained tasks randomly on the little cores only."""

    name = "LO"

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        provider = _random_plan_provider(
            context.fine_graph, context.board.little_core_ids
        )
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.fine_graph,
            plan=provider,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            description="random placement on little cores",
        )


class OSMechanism(Mechanism):
    """OS: whole-procedure workers placed by the simulated EAS kernel."""

    name = "OS"

    def __init__(self, worker_count: Optional[int] = None) -> None:
        self.worker_count = worker_count

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        workers = self.worker_count or len(context.board.cores)
        graph = context.coarse_graph

        def provider(repetition: int, rng: np.random.Generator) -> SchedulingPlan:
            placement = eas_place(context.board, workers, rng)
            return SchedulingPlan(graph=graph, assignments=(placement,))

        return MechanismOutcome(
            mechanism=self.name,
            graph=graph,
            plan=provider,
            dynamics=MechanismDynamics(
                context_switches_per_kb=OS_CONTEXT_SWITCHES_PER_KB,
                migration_rate_per_batch=OS_MIGRATION_RATE,
                latency_jitter_sigma=0.015,
            ),
            description=f"EAS placement of {workers} workers",
        )


# --- §VII-D break-down ablations ------------------------------------------


class SimpleAblation(Mechanism):
    """``simple``: symmetric-multicore-style data parallelism only —
    the whole procedure replicated, placed randomly (no asymmetry
    model, no decomposition)."""

    name = "simple"

    def __init__(self, replicas: int = 2) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be positive")
        self.replicas = replicas

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        graph = context.coarse_graph
        cores = context.board.core_ids

        def provider(repetition: int, rng: np.random.Generator) -> SchedulingPlan:
            chosen = rng.choice(cores, size=self.replicas, replace=False)
            return SchedulingPlan(
                graph=graph, assignments=(tuple(int(c) for c in chosen),)
            )

        return MechanismOutcome(
            mechanism=self.name,
            graph=graph,
            plan=provider,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            description=f"{self.replicas} whole-procedure replicas, random cores",
        )


class DecompositionAblation(Mechanism):
    """``+decom.``: fine-grained tasks, randomly placed on any core."""

    name = "+decom."

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        provider = _random_plan_provider(
            context.fine_graph, context.board.core_ids
        )
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.fine_graph,
            plan=provider,
            dynamics=MechanismDynamics(context_switches_per_kb=0.05),
            description="random placement on all cores",
        )


class AsymmetricComputationAblation(Mechanism):
    """``+asy-comp.``: model-guided scheduling that is blind to
    communication costs (Eq 7 dropped), per §VII-D."""

    name = "+asy-comp."

    def prepare(self, context: WorkloadContext) -> MechanismOutcome:
        model = context.cost_model(
            context.fine_graph, communication_aware=False
        )
        result = Scheduler(model).schedule(best_effort=True)
        return MechanismOutcome(
            mechanism=self.name,
            graph=context.fine_graph,
            plan=result.plan,
            dynamics=MechanismDynamics(context_switches_per_kb=0.01),
            scheduled_feasible=result.feasible,
            estimate=result.estimate,
            description=result.plan.describe(),
            search_stats=result.search_stats,
        )


MECHANISM_NAMES = ("CStream", "OS", "CS", "RR", "BO", "LO")

_MECHANISMS = {
    CStreamMechanism.name: CStreamMechanism,
    OSMechanism.name: OSMechanism,
    CoarseGrainedMechanism.name: CoarseGrainedMechanism,
    RoundRobinMechanism.name: RoundRobinMechanism,
    BigOnlyMechanism.name: BigOnlyMechanism,
    LittleOnlyMechanism.name: LittleOnlyMechanism,
    SimpleAblation.name: SimpleAblation,
    DecompositionAblation.name: DecompositionAblation,
    AsymmetricComputationAblation.name: AsymmetricComputationAblation,
    "+asy-comm.": CStreamMechanism,  # the fully-functional system
}


def get_mechanism(name: str, **options) -> Mechanism:
    """Instantiate a mechanism by its paper label."""
    try:
        mechanism_class = _MECHANISMS[name]
    except KeyError:
        known = ", ".join(sorted(_MECHANISMS))
        raise ConfigurationError(f"unknown mechanism {name!r}; known: {known}")
    return mechanism_class(**options)
