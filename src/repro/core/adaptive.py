"""Feedback-based regulation for dynamic workloads (paper §V-D, Eq 8).

Stream characteristics drift; the profiled cost model goes stale; the
plan starts violating the latency constraint. CStream periodically
compares measured against predicted compressing latency and, when the
relative error exceeds a threshold, enters a calibration phase: an
*incremental* PID controller (Eq 8 — not position PID, which suffers
integral saturation) nudges the model's calibratable parameters
(the computation-latency scale, and an energy-side κ scale) until the
relative error is small, after which the scheduler replans from the
refreshed model.

The controller needs at least three observations (k, k-1, k-2 appear in
Eq 8), which is why re-adaptation spans a few batches in Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.cost_model import CostModel
from repro.core.plan import PlanEstimate
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError

__all__ = ["IncrementalPID", "FeedbackRegulator", "RegulationEvent"]


class IncrementalPID:
    """The incremental-form PID of Eq 8.

    ``delta = P·(e_k - e_{k-1}) + I·e_k + D·(e_k - 2·e_{k-1} + e_{k-2})``
    """

    def __init__(self, p: float = 0.1, i: float = 0.85, d: float = 0.05) -> None:
        self.p = p
        self.i = i
        self.d = d
        self._e1: Optional[float] = None  # e_{k-1}
        self._e2: Optional[float] = None  # e_{k-2}
        self._count = 0

    def step(self, error: float) -> float:
        """Feed e_k, get the increment δ_k."""
        e1 = self._e1 if self._e1 is not None else 0.0
        e2 = self._e2 if self._e2 is not None else 0.0
        delta = (
            self.p * (error - e1)
            + self.i * error
            + self.d * (error - 2.0 * e1 + e2)
        )
        self._e2 = self._e1 if self._e1 is not None else 0.0
        self._e1 = error
        self._count += 1
        return delta

    def reset(self) -> None:
        self._e1 = None
        self._e2 = None
        self._count = 0

    @property
    def observations(self) -> int:
        """How many errors the controller has seen since reset."""
        return self._count


@dataclass(frozen=True)
class RegulationEvent:
    """What the regulator did after one observation."""

    batch_index: int
    measured_latency: float
    estimated_latency: float
    relative_error: float
    calibrating: bool
    replanned: bool
    latency_scale: float


@dataclass
class FeedbackRegulator:
    """Monitors one running plan and recalibrates + replans on drift.

    Parameters mirror §V-D: ``error_threshold`` triggers calibration
    (and ends it once the error is small again); the PID gains default
    to the paper's PSO-tuned ``[0.1, 0.85, 0.05]``.
    """

    model: CostModel
    error_threshold: float = 0.1
    pid_gains: tuple = (0.1, 0.85, 0.05)
    estimate: PlanEstimate = None
    events: List[RegulationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.error_threshold < 1:
            raise ConfigurationError("error threshold must be in (0, 1)")
        p, i, d = self.pid_gains
        self._pid = IncrementalPID(p, i, d)
        self._calibrating = False
        if self.estimate is None:
            self.estimate = Scheduler(self.model).schedule(
                best_effort=True
            ).estimate

    @property
    def plan(self):
        return self.estimate.plan

    def _current_scale(self) -> float:
        scales = self.model.latency_scale
        if not scales:
            return 1.0
        return sum(scales.values()) / len(scales)

    def observe(self, batch_index: int, measured_latency: float) -> RegulationEvent:
        """Compare one measurement against the model; calibrate/replan.

        Returns the regulation event; ``self.plan`` reflects any replan.
        """
        estimated = self.estimate.latency_us_per_byte
        error = measured_latency - estimated
        relative_error = abs(error) / estimated if estimated > 0 else 0.0

        replanned = False
        if not self._calibrating:
            if relative_error > self.error_threshold:
                self._calibrating = True
                self._pid.reset()
        if self._calibrating:
            # Tune the l_comp scale so the model tracks the measurement.
            delta = self._pid.step(error) / max(estimated, 1e-9)
            new_scale = max(self._current_scale() + delta, 1e-3)
            for stage in range(self.model.graph.stage_count):
                self.model.latency_scale[stage] = new_scale
            # Refresh the estimate of the *current* plan under the new
            # model; once the model agrees with reality, replan.
            self.estimate = self.model.evaluate(self.plan)
            refreshed_error = abs(
                measured_latency - self.estimate.latency_us_per_byte
            ) / max(self.estimate.latency_us_per_byte, 1e-9)
            if (
                refreshed_error <= self.error_threshold
                and self._pid.observations >= 3
            ):
                self._calibrating = False
                self.estimate = Scheduler(self.model).schedule(
                    best_effort=True
                ).estimate
                replanned = True

        event = RegulationEvent(
            batch_index=batch_index,
            measured_latency=measured_latency,
            estimated_latency=estimated,
            relative_error=relative_error,
            calibrating=self._calibrating,
            replanned=replanned,
            latency_scale=self._current_scale(),
        )
        self.events.append(event)
        return event
