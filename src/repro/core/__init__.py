"""CStream's core: decomposition, cost model, scheduling, adaptation."""

from repro.core.adaptive import FeedbackRegulator, IncrementalPID
from repro.core.baselines import (
    MECHANISM_NAMES,
    Mechanism,
    MechanismOutcome,
    WorkloadContext,
    get_mechanism,
)
from repro.core.cost_model import CostModel, calibrate_curves
from repro.core.decomposition import decompose
from repro.core.framework import CStream
from repro.core.pid_tuning import PsoResult, pso_tune_pid
from repro.core.plan import PlanEstimate, SchedulingPlan, TaskEstimate
from repro.core.profiler import (
    CommunicationTable,
    WorkloadProfile,
    measure_communication,
    profile_roofline,
    profile_workload,
)
from repro.core.roofline import FittedPiecewise, fit_piecewise
from repro.core.scheduler import ScheduleResult, Scheduler
from repro.core.statistics_regulator import StatisticsAwareRegulator
from repro.core.task import Task, TaskGraph

__all__ = [
    "CStream",
    "CommunicationTable",
    "CostModel",
    "FeedbackRegulator",
    "FittedPiecewise",
    "IncrementalPID",
    "MECHANISM_NAMES",
    "Mechanism",
    "MechanismOutcome",
    "PlanEstimate",
    "PsoResult",
    "ScheduleResult",
    "Scheduler",
    "SchedulingPlan",
    "StatisticsAwareRegulator",
    "Task",
    "TaskEstimate",
    "TaskGraph",
    "WorkloadContext",
    "WorkloadProfile",
    "calibrate_curves",
    "decompose",
    "fit_piecewise",
    "get_mechanism",
    "measure_communication",
    "profile_roofline",
    "profile_workload",
    "pso_tune_pid",
]
