"""The CStream cost model (paper §V-B, Eqs 4-7).

Given a task graph, a workload profile and the calibrated hardware
curves, the model predicts for every task replica of a scheduling plan:

* computation latency ``l_comp = instructions / η(κ, core)`` (Eq 6 —
  linear in input size, since instructions scale with the batch);
* communication latency ``l_comm`` from the upstream stage's forwarded
  bytes and the measured per-path unit costs and overheads (Eq 7);
* energy ``e = η·l/ζ = instructions / ζ(κ, core)`` (Eq 4).

Everything is normalized to per-byte-of-batch units (µs/byte, µJ/byte),
matching the paper's reporting. The plan-level outputs are
``L_est = max(l_i)`` (Eq 2, pipeline bottleneck — including per-core
serialization when several replicas share a core, which is Eq 3's
capacity constraint expressed in time) and ``E_est = Σ e_i`` (Eq 1).

The model can be degraded for the paper's §VII-D ablations:
``communication_aware=False`` drops l_comm from every estimate (the
``+asy-comp.`` factor, which models asymmetric computation but ignores
communication effects entirely — our reading of "L_comm treated the same
for any pair"; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.plan import PlanEstimate, SchedulingPlan, TaskEstimate
from repro.core.profiler import (
    CommunicationTable,
    WorkloadProfile,
    measure_communication,
    profile_roofline,
)
from repro.core.roofline import FittedPiecewise, fit_piecewise
from repro.core.task import TaskGraph
from repro.errors import ConfigurationError
from repro.numerics import ordered_sum
from repro.simcore.boards import BoardSpec
from repro.simcore.hardware import CoreType, replication_factor

__all__ = ["CostModel", "CalibratedCurves", "calibrate_curves"]

#: default safety factor applied to L_set when checking Eq 2
DEFAULT_GUARD_BAND = 0.99


@dataclass(frozen=True)
class CalibratedCurves:
    """Fitted η/ζ curves per core type (the model's view of Fig 3)."""

    eta: Dict[CoreType, FittedPiecewise]
    zeta: Dict[CoreType, FittedPiecewise]


def calibrate_curves(
    board: BoardSpec, noise: float = 0.01, seed: int = 0
) -> CalibratedCurves:
    """Profile one core of each type and fit Eq 5's piecewise curves."""
    eta: Dict[CoreType, FittedPiecewise] = {}
    zeta: Dict[CoreType, FittedPiecewise] = {}
    for core_type in CoreType:
        cores = board.cores_of_type(core_type)
        if not cores:
            continue
        samples = profile_roofline(cores[0], noise=noise, seed=seed)
        eta[core_type] = fit_piecewise(samples.kappas, samples.eta_values)
        zeta[core_type] = fit_piecewise(samples.kappas, samples.zeta_values)
    return CalibratedCurves(eta=eta, zeta=zeta)


@dataclass
class CostModel:
    """Plan cost estimator for one workload on one board."""

    board: BoardSpec
    graph: TaskGraph
    profile: WorkloadProfile
    curves: CalibratedCurves
    communication: CommunicationTable
    latency_constraint_us_per_byte: float
    guard_band: float = DEFAULT_GUARD_BAND
    communication_aware: bool = True
    frequency_map: Optional[Mapping[int, float]] = None
    #: per-stage calibration multipliers on l_comp and κ, adjusted by the
    #: adaptive PID controller (§V-D); 1.0 = trust the profile
    latency_scale: Dict[int, float] = field(default_factory=dict)
    kappa_scale: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency_constraint_us_per_byte <= 0:
            raise ConfigurationError("latency constraint must be positive")
        if not 0 < self.guard_band <= 1:
            raise ConfigurationError("guard band must be in (0, 1]")
        self._stage_costs = tuple(
            task.merged_cost(self.profile.mean_step_costs)
            for task in self.graph.tasks
        )
        self._batch_bytes = self.profile.batch_size_bytes

    # -- convenience -------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        board: BoardSpec,
        graph: TaskGraph,
        profile: WorkloadProfile,
        latency_constraint_us_per_byte: float,
        seed: int = 0,
        **options,
    ) -> "CostModel":
        """Build a model by dry-run profiling the board (Fig 4 workflow)."""
        return cls(
            board=board,
            graph=graph,
            profile=profile,
            curves=calibrate_curves(board, seed=seed),
            communication=measure_communication(board, seed=seed),
            latency_constraint_us_per_byte=latency_constraint_us_per_byte,
            **options,
        )

    def stage_kappa(self, stage_index: int) -> float:
        base = self._stage_costs[stage_index].operational_intensity
        return base * self.kappa_scale.get(stage_index, 1.0)

    def stage_instructions(self, stage_index: int) -> float:
        return self._stage_costs[stage_index].instructions

    def stage_output_bytes(self, stage_index: int) -> float:
        return float(self._stage_costs[stage_index].output_bytes)

    def _core_frequency(self, core_id: int) -> Optional[float]:
        if self.frequency_map is None:
            return None
        return self.frequency_map.get(core_id)

    def _eta(self, kappa: float, core_id: int) -> float:
        core = self.board.core_by_id[core_id]
        fitted = self.curves.eta[core.core_type]
        base = fitted.value(kappa)
        frequency = self._core_frequency(core_id)
        if frequency is None:
            return base
        # The fitted curve was profiled at max frequency; reuse the
        # hardware's scaling law for other levels.
        return base * core.eta_at(kappa, frequency) / core.eta_at(kappa, None)

    def _zeta(self, kappa: float, core_id: int) -> float:
        core = self.board.core_by_id[core_id]
        fitted = self.curves.zeta[core.core_type]
        base = fitted.value(kappa)
        frequency = self._core_frequency(core_id)
        if frequency is None:
            return base
        return base * core.zeta_at(kappa, frequency) / core.zeta_at(kappa, None)

    # -- per-task estimates (Eqs 4, 6, 7) -----------------------------------

    def compute_latency(
        self, stage_index: int, core_id: int, replicas: int = 1
    ) -> float:
        """l_comp of one replica, µs per byte of batch (Eq 6)."""
        kappa = self.stage_kappa(stage_index)
        instructions = self.stage_instructions(stage_index) / replicas
        overhead = replication_factor(
            self.board.replication_latency_overhead, replicas
        )
        scale = self.latency_scale.get(stage_index, 1.0)
        return (
            scale * instructions * overhead
            / self._eta(kappa, core_id)
            / self._batch_bytes
        )

    def task_energy(
        self, stage_index: int, core_id: int, replicas: int = 1
    ) -> float:
        """e of one replica, µJ per byte of batch (Eq 4)."""
        kappa = self.stage_kappa(stage_index)
        instructions = self.stage_instructions(stage_index) / replicas
        overhead = replication_factor(
            self.board.replication_energy_overhead, replicas
        )
        return (
            instructions * overhead
            / self._zeta(kappa, core_id)
            / self._batch_bytes
        )

    def communication_latency(
        self,
        stage_index: int,
        core_id: int,
        upstream_cores: Tuple[int, ...],
        replicas: int,
    ) -> float:
        """l_comm of one replica, µs per byte of batch (Eq 7).

        The replica fetches its 1/replicas share of the upstream stage's
        forwarded bytes, drawn evenly from every upstream replica; each
        producer contributes one message (its ω) over its path.
        """
        if stage_index == 0 or not self.communication_aware:
            return 0.0
        upstream_bytes = self.stage_output_bytes(stage_index - 1)
        share = upstream_bytes / replicas / len(upstream_cores)
        total_us = 0.0
        for producer_core in upstream_cores:
            path = self.board.path_between(producer_core, core_id)
            total_us += share * self.communication.unit_cost(path)
            total_us += self.communication.overhead(path)
        return total_us / self._batch_bytes

    def communication_energy(
        self,
        stage_index: int,
        core_id: int,
        upstream_cores: Tuple[int, ...],
    ) -> float:
        """Per-message transfer energy of one replica, µJ per byte.

        The paper's Eq 4 prices computation only; shipping a message
        still draws interconnect/DRAM energy, which the dry-run
        measurement exposes — pricing it keeps the scheduler honest
        about uneconomical replication at small batch sizes (Fig 11).
        """
        if stage_index == 0 or not self.communication_aware:
            return 0.0
        total_uj = 0.0
        for producer_core in upstream_cores:
            path = self.board.path_between(producer_core, core_id)
            total_uj += self.communication.energy(path)
        return total_uj / self._batch_bytes

    # -- plan evaluation (Eqs 1-3) -------------------------------------------

    def evaluate(self, plan: SchedulingPlan) -> PlanEstimate:
        """Predict L_est, E_est and feasibility of a plan."""
        if plan.graph is not self.graph and plan.graph != self.graph:
            raise ConfigurationError("plan was built for a different task graph")
        estimates = []
        core_load: Dict[int, float] = {}
        for stage_index, cores in enumerate(plan.assignments):
            replicas = len(cores)
            upstream_cores = (
                plan.assignments[stage_index - 1] if stage_index > 0 else ()
            )
            for replica_index, core_id in enumerate(cores):
                l_comp = self.compute_latency(stage_index, core_id, replicas)
                l_comm = self.communication_latency(
                    stage_index, core_id, upstream_cores, replicas
                )
                energy = self.task_energy(
                    stage_index, core_id, replicas
                ) + self.communication_energy(
                    stage_index, core_id, upstream_cores
                )
                estimates.append(
                    TaskEstimate(
                        stage_index=stage_index,
                        replica_index=replica_index,
                        core_id=core_id,
                        kappa=self.stage_kappa(stage_index),
                        l_comp_us_per_byte=l_comp,
                        l_comm_us_per_byte=l_comm,
                        energy_uj_per_byte=energy,
                    )
                )
                core_load[core_id] = core_load.get(core_id, 0.0) + l_comp

        bottleneck_task = max(est.l_us_per_byte for est in estimates)
        bottleneck_core = max(core_load.values())
        latency = max(bottleneck_task, bottleneck_core)
        energy = ordered_sum(est.energy_uj_per_byte for est in estimates)

        budget = self.guard_band * self.latency_constraint_us_per_byte
        reason = ""
        if latency > budget:
            reason = (
                f"L_est {latency:.2f} µs/B exceeds budget {budget:.2f} µs/B"
            )
        return PlanEstimate(
            plan=plan,
            task_estimates=tuple(estimates),
            latency_us_per_byte=latency,
            energy_uj_per_byte=energy,
            feasible=not reason,
            infeasibility_reason=reason,
            core_load_us_per_byte=core_load,
        )
