"""The CStream cost model (paper §V-B, Eqs 4-7).

Given a task graph, a workload profile and the calibrated hardware
curves, the model predicts for every task replica of a scheduling plan:

* computation latency ``l_comp = instructions / η(κ, core)`` (Eq 6 —
  linear in input size, since instructions scale with the batch);
* communication latency ``l_comm`` from the upstream stage's forwarded
  bytes and the measured per-path unit costs and overheads (Eq 7);
* energy ``e = η·l/ζ = instructions / ζ(κ, core)`` (Eq 4).

Everything is normalized to per-byte-of-batch units (µs/byte, µJ/byte),
matching the paper's reporting. The plan-level outputs are
``L_est = max(l_i)`` (Eq 2, pipeline bottleneck — including per-core
serialization when several replicas share a core, which is Eq 3's
capacity constraint expressed in time) and ``E_est = Σ e_i`` (Eq 1).

The model can be degraded for the paper's §VII-D ablations:
``communication_aware=False`` drops l_comm from every estimate (the
``+asy-comp.`` factor, which models asymmetric computation but ignores
communication effects entirely — our reading of "L_comm treated the same
for any pair"; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.plan import PlanEstimate, SchedulingPlan, TaskEstimate
from repro.core.profiler import (
    CommunicationTable,
    WorkloadProfile,
    measure_communication,
    profile_roofline,
)
from repro.core.roofline import FittedPiecewise, fit_piecewise
from repro.core.task import TaskGraph
from repro.errors import ConfigurationError
from repro.numerics import ordered_sum
from repro.simcore.boards import BoardSpec
from repro.simcore.hardware import CoreType, replication_factor
from repro.simcore.interconnect import Path

try:  # numpy is optional here: the scalar path below is self-sufficient
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = ["CostModel", "CalibratedCurves", "calibrate_curves"]

#: default safety factor applied to L_set when checking Eq 2
DEFAULT_GUARD_BAND = 0.99


@dataclass(frozen=True)
class CalibratedCurves:
    """Fitted η/ζ curves per core type (the model's view of Fig 3)."""

    eta: Dict[CoreType, FittedPiecewise]
    zeta: Dict[CoreType, FittedPiecewise]


#: process-wide memo of fitted curves. The dry-run calibration depends
#: only on (board, noise, seed) — every field that shapes it is in the
#: board's repr — yet each workload context used to re-profile and
#: re-fit the same curves from scratch, which dominated cold-start cost.
#: Nothing mutates a :class:`CalibratedCurves` after construction
#: (frozen dataclass of frozen fits), so sharing one instance across
#: contexts/harnesses is safe.
_CURVE_CACHE: Dict[Tuple[str, float, int], CalibratedCurves] = {}


def calibrate_curves(
    board: BoardSpec, noise: float = 0.01, seed: int = 0
) -> CalibratedCurves:
    """Profile one core of each type and fit Eq 5's piecewise curves."""
    key = (repr(board), noise, seed)
    cached = _CURVE_CACHE.get(key)
    if cached is not None:
        return cached
    eta: Dict[CoreType, FittedPiecewise] = {}
    zeta: Dict[CoreType, FittedPiecewise] = {}
    for core_type in CoreType:
        cores = board.cores_of_type(core_type)
        if not cores:
            continue
        samples = profile_roofline(cores[0], noise=noise, seed=seed)
        eta[core_type] = fit_piecewise(samples.kappas, samples.eta_values)
        zeta[core_type] = fit_piecewise(samples.kappas, samples.zeta_values)
    if len(_CURVE_CACHE) >= 64:  # bound the memo on exotic board sweeps
        _CURVE_CACHE.clear()
    result = CalibratedCurves(eta=eta, zeta=zeta)
    _CURVE_CACHE[key] = result
    return result


class _CostTables:
    """Precomputed per-(stage, core) lookup tables for one cost model.

    Every value is produced by the model's own scalar helpers
    (``_eta``/``_zeta``, ``stage_kappa``, the communication table), so a
    table lookup returns the *same float object chain* the scalar path
    would compute — the fast path changes where numbers are read from,
    never how they are made. ``stamp`` snapshots the mutable inputs
    (``kappa_scale``, ``frequency_map``); :meth:`CostModel._tables`
    rebuilds when the PID controller drifts them. ``latency_scale`` is a
    direct multiplier applied at evaluation time, so it stays live-read
    and never invalidates tables.
    """

    __slots__ = (
        "stamp", "kappas", "instructions", "output_bytes",
        "eta", "zeta", "eta_rows", "zeta_rows",
        "comm_unit", "comm_overhead", "comm_energy",
        "_replication_latency", "_replication_energy",
        "_latency_overhead", "_energy_overhead",
    )

    def __init__(self, model: "CostModel", stamp: Tuple) -> None:
        self.stamp = stamp
        board = model.board
        core_ids = sorted(board.core_by_id)
        size = max(core_ids) + 1
        stage_count = len(model._stage_costs)
        self.kappas = [model.stage_kappa(s) for s in range(stage_count)]
        self.instructions = [
            model.stage_instructions(s) for s in range(stage_count)
        ]
        self.output_bytes = [
            model.stage_output_bytes(s) for s in range(stage_count)
        ]
        self.eta = []
        self.zeta = []
        for stage in range(stage_count):
            kappa = self.kappas[stage]
            eta_row = [0.0] * size
            zeta_row = [0.0] * size
            for core_id in core_ids:
                eta_row[core_id] = model._eta(kappa, core_id)
                zeta_row[core_id] = model._zeta(kappa, core_id)
            self.eta.append(eta_row)
            self.zeta.append(zeta_row)
        self.eta_rows = [_np.array(row) for row in self.eta]
        self.zeta_rows = [_np.array(row) for row in self.zeta]
        communication = model.communication
        self.comm_unit = [[0.0] * size for _ in range(size)]
        self.comm_overhead = [[0.0] * size for _ in range(size)]
        self.comm_energy = [[0.0] * size for _ in range(size)]
        for producer in core_ids:
            for consumer in core_ids:
                path = board.path_between(producer, consumer)
                self.comm_unit[producer][consumer] = (
                    communication.unit_cost(path)
                )
                self.comm_overhead[producer][consumer] = (
                    communication.overhead(path)
                )
                self.comm_energy[producer][consumer] = (
                    communication.energy(path)
                )
        self._replication_latency: Dict[int, float] = {}
        self._replication_energy: Dict[int, float] = {}
        self._latency_overhead = board.replication_latency_overhead
        self._energy_overhead = board.replication_energy_overhead

    def replication_latency(self, replicas: int) -> float:
        factor = self._replication_latency.get(replicas)
        if factor is None:
            factor = replication_factor(self._latency_overhead, replicas)
            self._replication_latency[replicas] = factor
        return factor

    def replication_energy(self, replicas: int) -> float:
        factor = self._replication_energy.get(replicas)
        if factor is None:
            factor = replication_factor(self._energy_overhead, replicas)
            self._replication_energy[replicas] = factor
        return factor


@dataclass
class CostModel:
    """Plan cost estimator for one workload on one board."""

    board: BoardSpec
    graph: TaskGraph
    profile: WorkloadProfile
    curves: CalibratedCurves
    communication: CommunicationTable
    latency_constraint_us_per_byte: float
    guard_band: float = DEFAULT_GUARD_BAND
    communication_aware: bool = True
    frequency_map: Optional[Mapping[int, float]] = None
    #: per-stage calibration multipliers on l_comp and κ, adjusted by the
    #: adaptive PID controller (§V-D); 1.0 = trust the profile
    latency_scale: Dict[int, float] = field(default_factory=dict)
    kappa_scale: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency_constraint_us_per_byte <= 0:
            raise ConfigurationError("latency constraint must be positive")
        if not 0 < self.guard_band <= 1:
            raise ConfigurationError("guard band must be in (0, 1]")
        self._stage_costs = tuple(
            task.merged_cost(self.profile.mean_step_costs)
            for task in self.graph.tasks
        )
        self._batch_bytes = self.profile.batch_size_bytes

    # -- convenience -------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        board: BoardSpec,
        graph: TaskGraph,
        profile: WorkloadProfile,
        latency_constraint_us_per_byte: float,
        seed: int = 0,
        **options,
    ) -> "CostModel":
        """Build a model by dry-run profiling the board (Fig 4 workflow)."""
        return cls(
            board=board,
            graph=graph,
            profile=profile,
            curves=calibrate_curves(board, seed=seed),
            communication=measure_communication(board, seed=seed),
            latency_constraint_us_per_byte=latency_constraint_us_per_byte,
            **options,
        )

    def stage_kappa(self, stage_index: int) -> float:
        base = self._stage_costs[stage_index].operational_intensity
        return base * self.kappa_scale.get(stage_index, 1.0)

    def stage_instructions(self, stage_index: int) -> float:
        return self._stage_costs[stage_index].instructions

    def stage_output_bytes(self, stage_index: int) -> float:
        return float(self._stage_costs[stage_index].output_bytes)

    def apply_path_degradation(self, path: Path, factor: float) -> None:
        """Teach the model that one interconnect path runs ``factor``× slow.

        The controller's diagnosis trigger calls this when the residual
        ledger pins a window's latency residual on a path class: the
        communication table is rebuilt (never mutated in place — the
        measured table is shared process-wide via the profiler cache)
        with that path's unit cost, per-message overhead and transfer
        energy scaled, mirroring
        :meth:`repro.simcore.interconnect.InterconnectSpec.degraded`.
        The vectorized lookup tables are invalidated explicitly because
        their stamp only tracks κ/frequency drift, not the
        communication table.
        """
        if factor <= 0:
            raise ConfigurationError("degradation factor must be positive")
        table = self.communication
        unit = dict(table.unit_cost_us_per_byte)
        overhead = dict(table.message_overhead_us)
        energy = dict(table.message_energy_uj or {})
        if path in unit:
            unit[path] *= factor
        if path in overhead:
            overhead[path] *= factor
        if path in energy:
            energy[path] *= factor
        self.communication = CommunicationTable(
            unit_cost_us_per_byte=unit,
            message_overhead_us=overhead,
            message_energy_uj=energy or None,
        )
        self._table_cache = None

    def _core_frequency(self, core_id: int) -> Optional[float]:
        if self.frequency_map is None:
            return None
        return self.frequency_map.get(core_id)

    def _eta(self, kappa: float, core_id: int) -> float:
        core = self.board.core_by_id[core_id]
        fitted = self.curves.eta[core.core_type]
        base = fitted.value(kappa)
        frequency = self._core_frequency(core_id)
        if frequency is None:
            return base
        # The fitted curve was profiled at max frequency; reuse the
        # hardware's scaling law for other levels.
        return base * core.eta_at(kappa, frequency) / core.eta_at(kappa, None)

    def _zeta(self, kappa: float, core_id: int) -> float:
        core = self.board.core_by_id[core_id]
        fitted = self.curves.zeta[core.core_type]
        base = fitted.value(kappa)
        frequency = self._core_frequency(core_id)
        if frequency is None:
            return base
        return base * core.zeta_at(kappa, frequency) / core.zeta_at(kappa, None)

    def _tables(self) -> Optional[_CostTables]:
        """The precomputed lookup tables, rebuilt on κ/frequency drift.

        Returns ``None`` without numpy, putting every entry point on the
        original scalar path. The stamp check is cheap in the common
        case (no adaptive drift, no static frequency map: two empty
        snapshots), so branch-and-bound search — which calls
        :meth:`compute_latency`/:meth:`task_energy` thousands of times
        per plan — pays one dict/tuple compare per call instead of a
        piecewise-curve walk.
        """
        if _np is None:
            return None
        stamp = (
            ()
            if not self.kappa_scale
            else tuple(sorted(self.kappa_scale.items())),
            None
            if self.frequency_map is None
            else tuple(sorted(self.frequency_map.items())),
        )
        tables = getattr(self, "_table_cache", None)
        if tables is not None and tables.stamp == stamp:
            return tables
        tables = _CostTables(self, stamp)
        self._table_cache = tables
        return tables

    # -- per-task estimates (Eqs 4, 6, 7) -----------------------------------

    def compute_latency(
        self, stage_index: int, core_id: int, replicas: int = 1
    ) -> float:
        """l_comp of one replica, µs per byte of batch (Eq 6)."""
        tables = self._tables()
        if tables is None:
            kappa = self.stage_kappa(stage_index)
            eta = self._eta(kappa, core_id)
            instructions = self.stage_instructions(stage_index) / replicas
            overhead = replication_factor(
                self.board.replication_latency_overhead, replicas
            )
        else:
            eta = tables.eta[stage_index][core_id]
            instructions = tables.instructions[stage_index] / replicas
            overhead = tables.replication_latency(replicas)
        scale = self.latency_scale.get(stage_index, 1.0)
        return scale * instructions * overhead / eta / self._batch_bytes

    def task_energy(
        self, stage_index: int, core_id: int, replicas: int = 1
    ) -> float:
        """e of one replica, µJ per byte of batch (Eq 4)."""
        tables = self._tables()
        if tables is None:
            kappa = self.stage_kappa(stage_index)
            zeta = self._zeta(kappa, core_id)
            instructions = self.stage_instructions(stage_index) / replicas
            overhead = replication_factor(
                self.board.replication_energy_overhead, replicas
            )
        else:
            zeta = tables.zeta[stage_index][core_id]
            instructions = tables.instructions[stage_index] / replicas
            overhead = tables.replication_energy(replicas)
        return instructions * overhead / zeta / self._batch_bytes

    def communication_latency(
        self,
        stage_index: int,
        core_id: int,
        upstream_cores: Tuple[int, ...],
        replicas: int,
        producer_stage: Optional[int] = None,
    ) -> float:
        """l_comm of one replica from one producer stage, µs per byte (Eq 7).

        The replica fetches its 1/replicas share of the producer stage's
        forwarded bytes, drawn evenly from every producer replica; each
        producer contributes one message (its ω) over its path.
        ``producer_stage`` defaults to ``stage_index - 1`` (the chain
        shape); DAG consumers call this once per predecessor stage and
        sum — a join pays every producer's messages.
        """
        if producer_stage is None:
            producer_stage = stage_index - 1
        if producer_stage < 0 or not self.communication_aware:
            return 0.0
        tables = self._tables()
        upstream_bytes = self.stage_output_bytes(producer_stage)
        share = upstream_bytes / replicas / len(upstream_cores)
        total_us = 0.0
        if tables is None:
            for producer_core in upstream_cores:
                path = self.board.path_between(producer_core, core_id)
                total_us += share * self.communication.unit_cost(path)
                total_us += self.communication.overhead(path)
        else:
            unit = tables.comm_unit
            overhead = tables.comm_overhead
            for producer_core in upstream_cores:
                total_us += share * unit[producer_core][core_id]
                total_us += overhead[producer_core][core_id]
        return total_us / self._batch_bytes

    def communication_energy(
        self,
        stage_index: int,
        core_id: int,
        upstream_cores: Tuple[int, ...],
        producer_stage: Optional[int] = None,
    ) -> float:
        """Per-message transfer energy of one replica, µJ per byte.

        The paper's Eq 4 prices computation only; shipping a message
        still draws interconnect/DRAM energy, which the dry-run
        measurement exposes — pricing it keeps the scheduler honest
        about uneconomical replication at small batch sizes (Fig 11).
        Like :meth:`communication_latency`, one call prices one
        producer stage (default: the chain upstream).
        """
        if producer_stage is None:
            producer_stage = stage_index - 1
        if producer_stage < 0 or not self.communication_aware:
            return 0.0
        tables = self._tables()
        total_uj = 0.0
        if tables is None:
            for producer_core in upstream_cores:
                path = self.board.path_between(producer_core, core_id)
                total_uj += self.communication.energy(path)
        else:
            energy = tables.comm_energy
            for producer_core in upstream_cores:
                total_uj += energy[producer_core][core_id]
        return total_uj / self._batch_bytes

    # -- plan evaluation (Eqs 1-3) -------------------------------------------

    def evaluate(self, plan: SchedulingPlan) -> PlanEstimate:
        """Predict L_est, E_est and feasibility of a plan.

        With numpy available this assembles per-stage l_comp/e arrays in
        a handful of elementwise ops over the precomputed η/ζ tables;
        every operation keeps the scalar path's operand order and
        parenthesization (elementwise numpy arithmetic on float64 is
        IEEE-754 identical to the equivalent scalar expression), and the
        plan-level reductions stay Python left folds — ``ordered_sum``
        for E_est, producer-ordered loops for Eq 7 — so the result is
        bit-for-bit the scalar path's (``tests/test_golden_identity``).
        """
        if plan.graph is not self.graph and plan.graph != self.graph:
            raise ConfigurationError("plan was built for a different task graph")
        tables = self._tables()
        if tables is None:
            return self._evaluate_scalar(plan)

        batch = self._batch_bytes
        estimates = []
        core_load: Dict[int, float] = {}
        for stage_index, cores in enumerate(plan.assignments):
            replicas = len(cores)
            columns = list(cores)
            instructions = tables.instructions[stage_index] / replicas
            scale = self.latency_scale.get(stage_index, 1.0)
            latency_numerator = (
                scale * instructions * tables.replication_latency(replicas)
            )
            energy_numerator = (
                instructions * tables.replication_energy(replicas)
            )
            l_comp_values = (
                latency_numerator / tables.eta_rows[stage_index][columns]
                / batch
            ).tolist()
            e_comp_values = (
                energy_numerator / tables.zeta_rows[stage_index][columns]
                / batch
            ).tolist()

            producer_stages = plan.graph.predecessors_of(stage_index)
            l_comm_values = [0.0] * replicas
            e_comm_values = [0.0] * replicas
            if producer_stages and self.communication_aware:
                unit = tables.comm_unit
                overhead = tables.comm_overhead
                comm_energy = tables.comm_energy
                # Producer stages in ascending order, producers within a
                # stage in assignment order — the same deterministic
                # fold the scalar oracle performs. For chains this is
                # one producer stage, so the accumulation is the old
                # single-pass loop bit for bit (0.0 + x == x).
                for producer_stage in producer_stages:
                    upstream_cores = plan.assignments[producer_stage]
                    share = (
                        tables.output_bytes[producer_stage]
                        / replicas
                        / len(upstream_cores)
                    )
                    for replica_index, core_id in enumerate(cores):
                        total_us = 0.0
                        total_uj = 0.0
                        for producer_core in upstream_cores:
                            total_us += share * unit[producer_core][core_id]
                            total_us += overhead[producer_core][core_id]
                            total_uj += comm_energy[producer_core][core_id]
                        l_comm_values[replica_index] += total_us / batch
                        e_comm_values[replica_index] += total_uj / batch

            kappa = tables.kappas[stage_index]
            for replica_index, core_id in enumerate(cores):
                l_comp = l_comp_values[replica_index]
                estimates.append(
                    TaskEstimate(
                        stage_index=stage_index,
                        replica_index=replica_index,
                        core_id=core_id,
                        kappa=kappa,
                        l_comp_us_per_byte=l_comp,
                        l_comm_us_per_byte=l_comm_values[replica_index],
                        energy_uj_per_byte=(
                            e_comp_values[replica_index]
                            + e_comm_values[replica_index]
                        ),
                    )
                )
                core_load[core_id] = core_load.get(core_id, 0.0) + l_comp
        return self._finish_estimate(plan, estimates, core_load)

    def _evaluate_scalar(self, plan: SchedulingPlan) -> PlanEstimate:
        """Reference implementation: one scalar call chain per replica.

        This is the pre-vectorization code path, kept both as the
        numpy-free fallback and as the oracle the parity tests compare
        the fast path against.
        """
        estimates = []
        core_load: Dict[int, float] = {}
        for stage_index, cores in enumerate(plan.assignments):
            replicas = len(cores)
            producer_stages = plan.graph.predecessors_of(stage_index)
            for replica_index, core_id in enumerate(cores):
                l_comp = self.compute_latency(stage_index, core_id, replicas)
                l_comm = 0.0
                e_comm = 0.0
                for producer_stage in producer_stages:
                    upstream_cores = plan.assignments[producer_stage]
                    l_comm += self.communication_latency(
                        stage_index,
                        core_id,
                        upstream_cores,
                        replicas,
                        producer_stage=producer_stage,
                    )
                    e_comm += self.communication_energy(
                        stage_index,
                        core_id,
                        upstream_cores,
                        producer_stage=producer_stage,
                    )
                energy = self.task_energy(
                    stage_index, core_id, replicas
                ) + e_comm
                estimates.append(
                    TaskEstimate(
                        stage_index=stage_index,
                        replica_index=replica_index,
                        core_id=core_id,
                        kappa=self.stage_kappa(stage_index),
                        l_comp_us_per_byte=l_comp,
                        l_comm_us_per_byte=l_comm,
                        energy_uj_per_byte=energy,
                    )
                )
                core_load[core_id] = core_load.get(core_id, 0.0) + l_comp
        return self._finish_estimate(plan, estimates, core_load)

    def _finish_estimate(
        self, plan: SchedulingPlan, estimates, core_load: Dict[int, float]
    ) -> PlanEstimate:
        bottleneck_task = max(est.l_us_per_byte for est in estimates)
        bottleneck_core = max(core_load.values())
        latency = max(bottleneck_task, bottleneck_core)
        energy = ordered_sum(est.energy_uj_per_byte for est in estimates)

        # Critical path: per-stage latency (slowest replica) summed along
        # the heaviest chain of stage edges. For chains this degenerates
        # to the plain stage sum; forks run branches in parallel, so a
        # join only inherits its heaviest producer. The steady-state
        # period (L_est above) stays the feasibility metric — the
        # critical path prices one batch's end-to-end pipeline depth,
        # which replanning and the schedulers' tie-breaking consume.
        stage_latency: Dict[int, float] = {}
        for est in estimates:
            current = stage_latency.get(est.stage_index, 0.0)
            if est.l_us_per_byte > current:
                stage_latency[est.stage_index] = est.l_us_per_byte
        path_to: Dict[int, float] = {}
        for stage_index in range(plan.graph.stage_count):
            longest_producer = 0.0
            for producer in plan.graph.predecessors_of(stage_index):
                if path_to[producer] > longest_producer:
                    longest_producer = path_to[producer]
            path_to[stage_index] = (
                stage_latency.get(stage_index, 0.0) + longest_producer
            )
        critical_path = path_to[plan.graph.stage_count - 1]

        budget = self.guard_band * self.latency_constraint_us_per_byte
        reason = ""
        if latency > budget:
            reason = (
                f"L_est {latency:.2f} µs/B exceeds budget {budget:.2f} µs/B"
            )
        return PlanEstimate(
            plan=plan,
            task_estimates=tuple(estimates),
            latency_us_per_byte=latency,
            energy_uj_per_byte=energy,
            feasible=not reason,
            infeasibility_reason=reason,
            core_load_us_per_byte=core_load,
            critical_path_us_per_byte=critical_path,
        )
