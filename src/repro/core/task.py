"""Task graph produced by fine-grained decomposition (paper §IV).

A stream-compression procedure decomposes into a *linear pipeline* of
:class:`Task` stages, each running one or more consecutive codec steps
(fused when communication would cost more than computation). Tasks may
later be *replicated* for data parallelism; replication lives in the
scheduling plan, not here — a :class:`Task` is the logical stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.compression.base import StepCost
from repro.errors import ConfigurationError

__all__ = ["Task", "TaskGraph"]


@dataclass(frozen=True)
class Task:
    """One pipeline stage: an ordered group of fused codec steps."""

    name: str
    step_ids: Tuple[str, ...]
    stage_index: int

    def __post_init__(self) -> None:
        if not self.step_ids:
            raise ConfigurationError(f"task {self.name} has no steps")
        if self.stage_index < 0:
            raise ConfigurationError("stage_index must be non-negative")

    def merged_cost(self, step_costs: Mapping[str, StepCost]) -> StepCost:
        """This task's cost for one batch, given per-step codec costs."""
        try:
            costs = [step_costs[step_id] for step_id in self.step_ids]
        except KeyError as missing:
            raise ConfigurationError(
                f"task {self.name} references unknown step {missing}"
            )
        return StepCost.merged(costs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{'+'.join(self.step_ids)}]"


@dataclass(frozen=True)
class TaskGraph:
    """A linear pipeline of tasks covering a codec's steps in order."""

    codec_name: str
    tasks: Tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError("task graph needs at least one task")
        for index, task in enumerate(self.tasks):
            if task.stage_index != index:
                raise ConfigurationError(
                    f"task {task.name} has stage_index {task.stage_index}, "
                    f"expected {index}"
                )
        seen = []
        for task in self.tasks:
            seen.extend(task.step_ids)
        if len(seen) != len(set(seen)):
            raise ConfigurationError("a step appears in more than one task")

    @property
    def stage_count(self) -> int:
        return len(self.tasks)

    def covered_steps(self) -> Tuple[str, ...]:
        steps = []
        for task in self.tasks:
            steps.extend(task.step_ids)
        return tuple(steps)

    def upstream_of(self, stage_index: int) -> Task:
        """The producer stage, or None for the first stage (which reads
        the input stream directly — no communication, Eq 7)."""
        if stage_index == 0:
            return None
        return self.tasks[stage_index - 1]

    @staticmethod
    def coarse(codec_name: str, step_ids: Tuple[str, ...]) -> "TaskGraph":
        """The undecomposed graph: one task running every step.

        This is what the coarse-grained mechanisms (OS, CS, and the
        ``simple`` ablation) schedule — the paper's ``t_all``.
        """
        return TaskGraph(
            codec_name=codec_name,
            tasks=(Task(name="t_all", step_ids=tuple(step_ids), stage_index=0),),
        )

    def describe(self) -> str:
        """Human-readable pipeline summary, e.g. ``t0[s0+s1] -> t1[s2]``."""
        return " -> ".join(str(task) for task in self.tasks)
