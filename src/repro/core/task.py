"""Task graph produced by fine-grained decomposition (paper §IV).

A stream-compression procedure decomposes into a *DAG* of :class:`Task`
stages, each running one or more fused codec steps (fused when
communication would cost more than computation). The common case — and
the only shape the source paper considers — is a linear chain, which is
the degenerate DAG where every stage's sole predecessor is the stage
before it. Decompression pipelines (parse → {literal copy, match copy}
→ merge) and multi-channel codecs (split → per-channel encode → merge)
need the general fork/join shape.

Tasks may later be *replicated* for data parallelism; replication lives
in the scheduling plan, not here — a :class:`Task` is the logical stage.

Shape invariants enforced at construction:

* tasks are indexed ``0..n-1`` in a topological order — every
  predecessor has a *lower* stage index, so cycles are unrepresentable
  and any stage-index walk is a valid topological traversal;
* the graph has a unique sink, which (by the indexing rule) is always
  the last stage — the executor counts batch completions there;
* every non-final stage is consumed by some downstream stage, so every
  produced batch reaches the sink (join coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.compression.base import StepCost
from repro.errors import ConfigurationError

__all__ = ["Task", "TaskGraph"]


@dataclass(frozen=True)
class Task:
    """One pipeline stage: an ordered group of fused codec steps.

    ``predecessors`` names the stage indices this task consumes batches
    from. ``None`` (the default) means the chain shape: stage 0 reads
    the source stream, stage ``i`` consumes stage ``i - 1``. An explicit
    empty tuple marks a *root* stage that reads the source directly even
    in a non-chain graph.
    """

    name: str
    step_ids: Tuple[str, ...]
    stage_index: int
    predecessors: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.step_ids:
            raise ConfigurationError(f"task {self.name} has no steps")
        if self.stage_index < 0:
            raise ConfigurationError("stage_index must be non-negative")
        if self.predecessors is None:
            chain_default = () if self.stage_index == 0 else (self.stage_index - 1,)
            object.__setattr__(self, "predecessors", chain_default)
            return
        normalized = tuple(sorted(set(int(p) for p in self.predecessors)))
        for producer in normalized:
            if producer < 0:
                raise ConfigurationError(
                    f"task {self.name} has negative predecessor {producer}"
                )
            if producer >= self.stage_index:
                raise ConfigurationError(
                    f"task {self.name} (stage {self.stage_index}) lists "
                    f"predecessor {producer}, which is not upstream — tasks "
                    "must be indexed in topological order, so every "
                    "predecessor needs a lower stage index"
                )
        object.__setattr__(self, "predecessors", normalized)

    @property
    def is_chain_stage(self) -> bool:
        """True when this task has exactly the chain-default predecessors."""
        if self.stage_index == 0:
            return self.predecessors == ()
        return self.predecessors == (self.stage_index - 1,)

    def merged_cost(self, step_costs: Mapping[str, StepCost]) -> StepCost:
        """This task's cost for one batch, given per-step codec costs."""
        try:
            costs = [step_costs[step_id] for step_id in self.step_ids]
        except KeyError as missing:
            raise ConfigurationError(
                f"task {self.name} references unknown step {missing}"
            )
        return StepCost.merged(costs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{'+'.join(self.step_ids)}]"


@dataclass(frozen=True)
class TaskGraph:
    """A DAG of tasks covering a codec's steps (chains as the default)."""

    codec_name: str
    tasks: Tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError(
                f"codec {self.codec_name!r}: task graph needs at least one task"
            )
        for index, task in enumerate(self.tasks):
            if task.stage_index != index:
                raise ConfigurationError(
                    f"codec {self.codec_name!r}: task {task.name} has "
                    f"stage_index {task.stage_index}, expected {index}"
                )
        seen: List[str] = []
        for task in self.tasks:
            seen.extend(task.step_ids)
        if len(seen) != len(set(seen)):
            duplicated = sorted({s for s in seen if seen.count(s) > 1})
            raise ConfigurationError(
                f"codec {self.codec_name!r}: step(s) {duplicated} appear in "
                "more than one task"
            )
        # Join coverage: with topological indexing the last stage is
        # structurally a sink (nobody downstream exists to consume it);
        # requiring every *other* stage to have a consumer makes that
        # sink unique and reachable from everywhere, so counting batch
        # completions at the last stage observes the whole graph.
        consumed = {p for task in self.tasks for p in task.predecessors}
        orphaned = [
            task.name
            for task in self.tasks[:-1]
            if task.stage_index not in consumed
        ]
        if orphaned:
            raise ConfigurationError(
                f"codec {self.codec_name!r}: task(s) {orphaned} produce "
                "output no downstream task consumes — every non-final stage "
                "must reach the sink"
            )

    @property
    def stage_count(self) -> int:
        return len(self.tasks)

    @property
    def is_chain(self) -> bool:
        """True when every stage has the chain-default predecessors."""
        return all(task.is_chain_stage for task in self.tasks)

    @property
    def sink_index(self) -> int:
        """The unique sink — always the last stage (see class docstring)."""
        return len(self.tasks) - 1

    def covered_steps(self) -> Tuple[str, ...]:
        steps = []
        for task in self.tasks:
            steps.extend(task.step_ids)
        return tuple(steps)

    def predecessors_of(self, stage_index: int) -> Tuple[int, ...]:
        """Stage indices feeding ``stage_index`` (ascending, possibly empty)."""
        return self.tasks[stage_index].predecessors

    def successors_of(self, stage_index: int) -> Tuple[int, ...]:
        """Stage indices consuming ``stage_index`` (ascending, possibly empty)."""
        return tuple(
            task.stage_index
            for task in self.tasks
            if stage_index in task.predecessors
        )

    def roots(self) -> Tuple[int, ...]:
        """Stages with no predecessors — they read the source stream."""
        return tuple(
            task.stage_index for task in self.tasks if not task.predecessors
        )

    def upstream_of(self, stage_index: int) -> Optional[Task]:
        """The sole producer stage, or None for a root stage (which reads
        the input stream directly — no communication, Eq 7). Multi-input
        join stages have no *single* upstream; use
        :meth:`predecessors_of` for the general shape."""
        producers = self.predecessors_of(stage_index)
        if not producers:
            return None
        if len(producers) > 1:
            raise ConfigurationError(
                f"codec {self.codec_name!r}: stage {stage_index} joins "
                f"{len(producers)} producers; upstream_of is only defined "
                "for chain-shaped stages (use predecessors_of)"
            )
        return self.tasks[producers[0]]

    @staticmethod
    def coarse(codec_name: str, step_ids: Tuple[str, ...]) -> "TaskGraph":
        """The undecomposed graph: one task running every step.

        This is what the coarse-grained mechanisms (OS, CS, and the
        ``simple`` ablation) schedule — the paper's ``t_all``.
        """
        return TaskGraph(
            codec_name=codec_name,
            tasks=(Task(name="t_all", step_ids=tuple(step_ids), stage_index=0),),
        )

    def describe(self) -> str:
        """Human-readable pipeline summary.

        Chains keep the historical arrow form, e.g. ``t0[s0+s1] -> t1[s2]``
        (golden traces pin this exact string). DAGs annotate each
        non-chain stage with its producers, e.g.
        ``t0[d0] ; t1[d1]<-[t0] ; t2[d2]<-[t0] ; t3[d3]<-[t1,t2]``.
        """
        if self.is_chain:
            return " -> ".join(str(task) for task in self.tasks)
        parts = []
        for task in self.tasks:
            if task.predecessors:
                producers = ",".join(
                    self.tasks[p].name for p in task.predecessors
                )
                parts.append(f"{task}<-[{producers}]")
            else:
                parts.append(str(task))
        return " ; ".join(parts)
