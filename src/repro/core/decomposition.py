"""Fine-grained decomposition with fusion (paper §IV-B), DAG-aware.

Every codec step starts as its own candidate task (pipelining
parallelism exposes per-step operational intensity). A step is then
*fused* with its producer when the message-passing cost between them
would exceed the computation they contain: the paper's rule fuses
``t_i`` with its upstream ``t_i'`` when ``l_comm(t_i) > l_comp(t_i)``
**or** ``l_comm(t_i) > l_comp(t_i')``.

Codecs expose their step *DAG* via
:meth:`~repro.compression.base.StreamCompressor.step_dependencies`
(linear chain by default). The fusion rule generalizes conservatively:
a step may only fuse into a group when **all** of its producer steps
already live in that one group — join steps (multiple producer groups)
always start their own task, which keeps the contracted group graph
acyclic (every edge into the fused step comes from its own group, so no
back-path can form) and topologically indexed in creation order.

Computation latencies for the rule are evaluated on the most favourable
core type (the fastest option a scheduler could pick), and communication
on the cheapest path (intra-cluster c0) — i.e. fusion happens only when
even the best-case split is not worth it. For tcomp32 this reproduces
the paper's example: the tiny read step fuses into the encode step while
the write step stays separate (Fig 4). For the fork/join decompression
codec the parse fork and the merge join stay unfused by construction.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.compression.base import StepCost
from repro.core.profiler import CommunicationTable, WorkloadProfile
from repro.core.task import Task, TaskGraph
from repro.errors import ConfigurationError
from repro.simcore.boards import BoardSpec
from repro.simcore.interconnect import Path

__all__ = ["decompose", "best_case_compute_latency", "validate_step_dependencies"]


def best_case_compute_latency(
    cost: StepCost,
    board: BoardSpec,
    eta_curves,
    batch_bytes: float,
) -> float:
    """µs/byte of the fused-or-not candidate on its best core type."""
    kappa = cost.operational_intensity
    best = float("inf")
    for curve in eta_curves.values():
        eta = curve.value(kappa)
        best = min(best, cost.instructions / eta / batch_bytes)
    return best


def _communication_latency(
    producer_cost: StepCost,
    communication: CommunicationTable,
    batch_bytes: float,
) -> float:
    """µs/byte of shipping the producer's output over the cheapest path."""
    return (
        producer_cost.output_bytes * communication.unit_cost(Path.C0)
        + communication.overhead(Path.C0)
    ) / batch_bytes


def validate_step_dependencies(
    codec_name: str,
    step_ids: Sequence[str],
    dependencies: Mapping[str, Tuple[str, ...]],
) -> None:
    """Reject malformed codec step DAGs before they reach decomposition.

    The mapping must cover exactly ``step_ids``, every producer must be
    listed *earlier* in ``step_ids`` (so step order is a topological
    order and cycles are unrepresentable), and the final step must be
    the unique sink (every other step feeds someone downstream).
    """
    declared = set(dependencies)
    expected = set(step_ids)
    if declared != expected:
        raise ConfigurationError(
            f"codec {codec_name!r}: step dependencies cover "
            f"{sorted(declared)}, expected {sorted(step_ids)}"
        )
    position = {step_id: index for index, step_id in enumerate(step_ids)}
    consumed = set()
    for step_id in step_ids:
        for producer in dependencies[step_id]:
            if producer not in position:
                raise ConfigurationError(
                    f"codec {codec_name!r}: step {step_id} depends on "
                    f"unknown step {producer!r}"
                )
            if position[producer] >= position[step_id]:
                raise ConfigurationError(
                    f"codec {codec_name!r}: step {step_id} depends on "
                    f"{producer}, which is not earlier in step order — "
                    "steps must be listed in topological order"
                )
            consumed.add(producer)
    orphaned = [s for s in step_ids[:-1] if s not in consumed]
    if orphaned:
        raise ConfigurationError(
            f"codec {codec_name!r}: step(s) {orphaned} produce output no "
            "later step consumes — the final step must be the unique sink"
        )


def decompose(
    profile: WorkloadProfile,
    board: BoardSpec,
    eta_curves,
    communication: CommunicationTable,
) -> TaskGraph:
    """Build the fused task graph for a profiled workload.

    ``eta_curves`` maps :class:`~repro.simcore.hardware.CoreType` to a
    fitted η curve (from :func:`repro.core.cost_model.calibrate_curves`).
    """
    if not profile.step_ids:
        raise ConfigurationError(
            f"codec {profile.codec_name!r}: workload profile has no steps"
        )
    batch_bytes = float(profile.batch_size_bytes)
    dependencies = profile.dependency_map()
    validate_step_dependencies(
        profile.codec_name, profile.step_ids, dependencies
    )

    # Groups of fused step ids, built in step (= topological) order.
    groups: List[List[str]] = []
    group_of: Dict[str, int] = {}
    for step_id in profile.step_ids:
        producer_groups = sorted(
            {group_of[producer] for producer in dependencies[step_id]}
        )
        if len(producer_groups) == 1:
            # Sole-producer-group step: the paper's pairwise fusion rule
            # applies against that group. Join steps (two or more
            # producer groups) and roots never fuse.
            candidate = producer_groups[0]
            group_cost = StepCost.merged(
                [profile.mean_step_costs[s] for s in groups[candidate]]
            )
            step_cost = profile.mean_step_costs[step_id]
            l_comm = _communication_latency(
                group_cost, communication, batch_bytes
            )
            l_comp_group = best_case_compute_latency(
                group_cost, board, eta_curves, batch_bytes
            )
            l_comp_step = best_case_compute_latency(
                step_cost, board, eta_curves, batch_bytes
            )
            if l_comm > l_comp_step or l_comm > l_comp_group:
                groups[candidate].append(step_id)
                group_of[step_id] = candidate
                continue
        groups.append([step_id])
        group_of[step_id] = len(groups) - 1

    group_predecessors: List[Tuple[int, ...]] = []
    for index, group in enumerate(groups):
        producers = sorted(
            {
                group_of[producer]
                for step_id in group
                for producer in dependencies[step_id]
                if group_of[producer] != index
            }
        )
        group_predecessors.append(tuple(producers))

    tasks = tuple(
        Task(
            name=f"t{index}",
            step_ids=tuple(group),
            stage_index=index,
            predecessors=group_predecessors[index],
        )
        for index, group in enumerate(groups)
    )
    return TaskGraph(codec_name=profile.codec_name, tasks=tasks)
