"""Fine-grained decomposition with fusion (paper §IV-B).

Every codec step starts as its own candidate task (pipelining
parallelism exposes per-step operational intensity). Adjacent steps are
then *fused* when the message-passing cost between them would exceed the
computation they contain: the paper's rule fuses ``t_i`` with its
upstream ``t_i'`` when ``l_comm(t_i) > l_comp(t_i)`` **or**
``l_comm(t_i) > l_comp(t_i')``.

Computation latencies for the rule are evaluated on the most favourable
core type (the fastest option a scheduler could pick), and communication
on the cheapest path (intra-cluster c0) — i.e. fusion happens only when
even the best-case split is not worth it. For tcomp32 this reproduces
the paper's example: the tiny read step fuses into the encode step while
the write step stays separate (Fig 4).
"""

from __future__ import annotations

from typing import List

from repro.compression.base import StepCost
from repro.core.profiler import CommunicationTable, WorkloadProfile
from repro.core.task import Task, TaskGraph
from repro.errors import ConfigurationError
from repro.simcore.boards import BoardSpec
from repro.simcore.interconnect import Path

__all__ = ["decompose", "best_case_compute_latency"]


def best_case_compute_latency(
    cost: StepCost,
    board: BoardSpec,
    eta_curves,
    batch_bytes: float,
) -> float:
    """µs/byte of the fused-or-not candidate on its best core type."""
    kappa = cost.operational_intensity
    best = float("inf")
    for curve in eta_curves.values():
        eta = curve.value(kappa)
        best = min(best, cost.instructions / eta / batch_bytes)
    return best


def _communication_latency(
    producer_cost: StepCost,
    communication: CommunicationTable,
    batch_bytes: float,
) -> float:
    """µs/byte of shipping the producer's output over the cheapest path."""
    return (
        producer_cost.output_bytes * communication.unit_cost(Path.C0)
        + communication.overhead(Path.C0)
    ) / batch_bytes


def decompose(
    profile: WorkloadProfile,
    board: BoardSpec,
    eta_curves,
    communication: CommunicationTable,
) -> TaskGraph:
    """Build the fused task pipeline for a profiled workload.

    ``eta_curves`` maps :class:`~repro.simcore.hardware.CoreType` to a
    fitted η curve (from :func:`repro.core.cost_model.calibrate_curves`).
    """
    if not profile.step_ids:
        raise ConfigurationError("workload profile has no steps")
    batch_bytes = float(profile.batch_size_bytes)

    # Groups of fused step ids, built left to right.
    groups: List[List[str]] = [[profile.step_ids[0]]]
    for step_id in profile.step_ids[1:]:
        group_cost = StepCost.merged(
            [profile.mean_step_costs[s] for s in groups[-1]]
        )
        step_cost = profile.mean_step_costs[step_id]
        l_comm = _communication_latency(group_cost, communication, batch_bytes)
        l_comp_group = best_case_compute_latency(
            group_cost, board, eta_curves, batch_bytes
        )
        l_comp_step = best_case_compute_latency(
            step_cost, board, eta_curves, batch_bytes
        )
        if l_comm > l_comp_step or l_comm > l_comp_group:
            groups[-1].append(step_id)
        else:
            groups.append([step_id])

    tasks = tuple(
        Task(name=f"t{index}", step_ids=tuple(group), stage_index=index)
        for index, group in enumerate(groups)
    )
    return TaskGraph(codec_name=profile.codec_name, tasks=tasks)
