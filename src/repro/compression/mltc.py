"""mltc — multi-channel lightweight temporal compression (fan-out DAG).

IoT boards rarely stream one signal: a flight controller interleaves
accelerometer, gyro and barometer channels in a single tuple stream.
``mltc`` de-interleaves the 32-bit words of a batch into ``channels``
round-robin sub-streams and runs *lightweight temporal compression*
(LTC: piecewise-linear approximation under an error cone) on each
channel independently, making the pipeline a fan-out/fan-in DAG:

* ``m0`` split — de-interleave words into per-channel buffers: a pure
  shuffle, two memory accesses per byte (*low* intensity);
* ``c1`` .. ``cK`` encode — per-channel LTC cone tracking plus residual
  packing: register arithmetic per sample (*high* intensity), one task
  per channel, all independent;
* ``mz`` merge — concatenate channel blobs into the framed payload
  (*low* intensity).

LTC itself is lossy; the stream contract here demands an exact
round-trip, so each channel stores its piecewise-linear *anchors*
(segment length + approximated end value, chained so each segment
starts at the previous segment's stored anchor) and then bit-packs the
per-sample residuals against the reconstructed prediction, zig-zag
coded at the channel's worst-case width. Smooth telemetry yields long
segments and near-zero residual widths; noise degrades toward raw.

Step graph (``channels=2``)::

            +-> c1 -+
    m0 ----+        +--> mz
            +-> c2 -+
"""

from __future__ import annotations

import struct
from typing import Dict, List, Mapping, Tuple

from repro.compression.base import (
    CompressionResult,
    StepCost,
    StepRole,
    StepSpec,
    StreamCompressor,
)
from repro.compression.bitio import BitReader, BitWriter, bits_required
from repro.errors import CompressionError, CorruptStreamError

__all__ = ["Mltc"]

_WORD = struct.Struct("<I")
_WORD_BYTES = 4
_WORD_MAX = 0xFFFFFFFF
# original length, channel count, epsilon, raw tail length
_HEADER = struct.Struct("<IBHB")
# samples, first value, segment count, residual width
_CHANNEL_HEADER = struct.Struct("<IIIB")
_SEGMENT = struct.Struct("<II")  # length, end anchor

# --- calibrated virtual-cost constants (see DESIGN.md) ------------------
# m0 split: word shuffle into channel buffers, read + write per byte.
_M0_INSTRUCTIONS_PER_BYTE = 0.9
_M0_ACCESSES_PER_BYTE = 2.0
# c_i encode: cone update per sample, segment bookkeeping, residual pack.
_C_INSTRUCTIONS_PER_UPDATE = 30.0
_C_INSTRUCTIONS_PER_SEGMENT = 110.0
_C_INSTRUCTIONS_PER_SAMPLE = 9.0
_C_ACCESSES_PER_SAMPLE = 1.6
_C_ACCESSES_PER_SEGMENT = 2.5
# mz merge: concatenate channel blobs and frame the payload.
_MZ_INSTRUCTIONS_PER_BYTE = 1.3
_MZ_INSTRUCTIONS_PER_CHANNEL = 50.0
_MZ_ACCESSES_PER_BYTE = 1.9


def _predict(base: int, end: int, offset: int, length: int) -> int:
    """Linear interpolation between two anchors, rounded to an int.

    Encoder and decoder both call this, so the reconstruction is exact
    by construction regardless of the float rounding direction.
    """
    return round(base + (end - base) * offset / length)


def _zigzag(value: int) -> int:
    return 2 * value if value >= 0 else -2 * value - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value // 2) - 1


class Mltc(StreamCompressor):
    """Multi-channel LTC stream compressor.

    Parameters
    ----------
    channels:
        Number of interleaved 32-bit channels (default 2); one encode
        task per channel in the step graph.
    epsilon:
        LTC error-cone half-width (default 16). Larger values produce
        longer segments and wider residuals; the round-trip stays exact
        either way.
    """

    name = "mltc"
    stateful = False

    def __init__(self, channels: int = 2, epsilon: int = 16) -> None:
        if not 1 <= channels <= 16:
            raise CompressionError(
                f"mltc channels must be in [1, 16], got {channels}"
            )
        if epsilon < 0:
            raise CompressionError(
                f"mltc epsilon must be non-negative, got {epsilon}"
            )
        self.channels = channels
        self.epsilon = epsilon
        self._steps = (
            StepSpec("m0", StepRole.READ,
                     "de-interleave words into channel buffers"),
            *(
                StepSpec(f"c{index}", StepRole.ENCODE,
                         f"LTC-encode channel {index}")
                for index in range(1, channels + 1)
            ),
            StepSpec("mz", StepRole.WRITE,
                     "merge channel blobs into the framed payload"),
        )

    def steps(self) -> Tuple[StepSpec, ...]:
        return self._steps

    def step_dependencies(self) -> Mapping[str, Tuple[str, ...]]:
        encode_ids = tuple(
            f"c{index}" for index in range(1, self.channels + 1)
        )
        dependencies: Dict[str, Tuple[str, ...]] = {"m0": ()}
        for step_id in encode_ids:
            dependencies[step_id] = ("m0",)
        dependencies["mz"] = encode_ids
        return dependencies

    # --- encode ---------------------------------------------------------

    def compress(self, data: bytes) -> CompressionResult:
        word_count = len(data) // _WORD_BYTES
        tail = data[word_count * _WORD_BYTES:]
        channel_values: List[List[int]] = [
            [] for _ in range(self.channels)
        ]
        for index in range(word_count):
            (value,) = _WORD.unpack_from(data, index * _WORD_BYTES)
            channel_values[index % self.channels].append(value)

        blobs: List[bytes] = []
        updates_per_channel: List[int] = []
        segments_per_channel: List[int] = []
        for values in channel_values:
            blob, updates, segments = self._encode_channel(values)
            blobs.append(blob)
            updates_per_channel.append(updates)
            segments_per_channel.append(segments)

        out = bytearray(
            _HEADER.pack(len(data), self.channels, self.epsilon, len(tail))
        )
        for blob in blobs:
            out.extend(_WORD.pack(len(blob)))
            out.extend(blob)
        out.extend(tail)
        payload = bytes(out)

        counters = {
            "input_bytes": float(len(data)),
            "words": float(word_count),
            "segments": float(sum(segments_per_channel)),
            "cone_updates": float(sum(updates_per_channel)),
            "mean_segment_length": (
                word_count / sum(segments_per_channel)
                if sum(segments_per_channel) else 0.0
            ),
        }
        step_costs = self._step_costs(
            input_bytes=len(data),
            payload_bytes=len(payload),
            channel_values=channel_values,
            blobs=blobs,
            updates_per_channel=updates_per_channel,
            segments_per_channel=segments_per_channel,
        )
        return CompressionResult(
            payload=payload,
            input_size=len(data),
            step_costs=step_costs,
            counters=counters,
        )

    def _encode_channel(self, values: List[int]) -> Tuple[bytes, int, int]:
        """LTC-encode one channel; returns (blob, cone updates, segments)."""
        n = len(values)
        if n == 0:
            return _CHANNEL_HEADER.pack(0, 0, 0, 0), 0, 0
        epsilon = self.epsilon
        anchor = values[0]
        segments: List[Tuple[int, int]] = []
        updates = 0
        start = 0
        while start < n - 1:
            # Grow the error cone from (start, anchor) until it closes.
            upper = float("inf")
            lower = float("-inf")
            end = start + 1
            position = start + 1
            while position < n:
                span = position - start
                high = (values[position] + epsilon - anchor) / span
                low = (values[position] - epsilon - anchor) / span
                updates += 1
                next_upper = min(upper, high)
                next_lower = max(lower, low)
                if next_lower > next_upper:
                    break
                upper, lower = next_upper, next_lower
                end = position
                position += 1
            length = end - start
            slope = (upper + lower) / 2.0
            end_anchor = round(anchor + slope * length)
            end_anchor = min(max(end_anchor, 0), _WORD_MAX)
            segments.append((length, end_anchor))
            anchor = end_anchor
            start = end

        # Residuals against the reconstruction the decoder will compute.
        predictions = self._reconstruct(values[0], segments, n)
        residuals = [value - predicted
                     for value, predicted in zip(values, predictions)]
        width = max(bits_required(_zigzag(r)) for r in residuals)
        writer = BitWriter()
        for residual in residuals:
            writer.write(_zigzag(residual), width)
        residual_bytes = writer.getvalue()

        blob = bytearray(
            _CHANNEL_HEADER.pack(n, values[0], len(segments), width)
        )
        for length, end_anchor in segments:
            blob.extend(_SEGMENT.pack(length, end_anchor))
        blob.extend(residual_bytes)
        return bytes(blob), updates, len(segments)

    @staticmethod
    def _reconstruct(
        first: int, segments: List[Tuple[int, int]], count: int
    ) -> List[int]:
        """Per-sample predictions from the chained segment anchors."""
        predictions = [first]
        anchor = first
        for length, end_anchor in segments:
            for offset in range(1, length + 1):
                predictions.append(
                    _predict(anchor, end_anchor, offset, length)
                )
            anchor = end_anchor
        if len(predictions) != count:
            raise CorruptStreamError(
                f"mltc segment lengths cover {len(predictions)} samples, "
                f"expected {count}"
            )
        return predictions

    # --- decode ---------------------------------------------------------

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _HEADER.size:
            raise CorruptStreamError("mltc stream shorter than its header")
        original, channels, _epsilon, tail_length = _HEADER.unpack_from(
            payload
        )
        if channels != self.channels:
            raise CorruptStreamError(
                f"mltc stream has {channels} channels, decoder expects "
                f"{self.channels}"
            )
        position = _HEADER.size
        channel_values: List[List[int]] = []
        for _ in range(channels):
            if position + _WORD.size > len(payload):
                raise CorruptStreamError("mltc stream truncated at blob size")
            (blob_length,) = _WORD.unpack_from(payload, position)
            position += _WORD.size
            if position + blob_length > len(payload):
                raise CorruptStreamError("mltc channel blob exceeds stream")
            blob = payload[position:position + blob_length]
            position += blob_length
            channel_values.append(self._decode_channel(blob))
        tail = payload[position:]
        if len(tail) != tail_length:
            raise CorruptStreamError(
                f"mltc trailing bytes {len(tail)} != promised {tail_length}"
            )

        word_count = sum(len(values) for values in channel_values)
        out = bytearray()
        cursors = [0] * channels
        for index in range(word_count):
            channel = index % channels
            out.extend(
                _WORD.pack(channel_values[channel][cursors[channel]])
            )
            cursors[channel] += 1
        out.extend(tail)
        if len(out) != original:
            raise CorruptStreamError(
                f"mltc decoded {len(out)} bytes, header promised {original}"
            )
        return bytes(out)

    def _decode_channel(self, blob: bytes) -> List[int]:
        if len(blob) < _CHANNEL_HEADER.size:
            raise CorruptStreamError("mltc channel blob shorter than header")
        count, first, segment_count, width = _CHANNEL_HEADER.unpack_from(blob)
        if count == 0:
            return []
        position = _CHANNEL_HEADER.size
        segments: List[Tuple[int, int]] = []
        for _ in range(segment_count):
            if position + _SEGMENT.size > len(blob):
                raise CorruptStreamError("mltc blob truncated in segments")
            segments.append(_SEGMENT.unpack_from(blob, position))
            position += _SEGMENT.size
        predictions = self._reconstruct(first, segments, count)
        reader = BitReader(blob[position:])
        values = []
        for predicted in predictions:
            residual = _unzigzag(reader.read(width))
            values.append(predicted + residual)
        return values

    # --- cost model -----------------------------------------------------

    def _step_costs(
        self,
        input_bytes: int,
        payload_bytes: int,
        channel_values: List[List[int]],
        blobs: List[bytes],
        updates_per_channel: List[int],
        segments_per_channel: List[int],
    ) -> Dict[str, StepCost]:
        costs: Dict[str, StepCost] = {
            "m0": StepCost(
                instructions=_M0_INSTRUCTIONS_PER_BYTE * input_bytes,
                memory_accesses=_M0_ACCESSES_PER_BYTE * input_bytes,
                input_bytes=input_bytes,
                output_bytes=input_bytes,
            )
        }
        for index in range(self.channels):
            samples = len(channel_values[index])
            channel_bytes = samples * _WORD_BYTES
            costs[f"c{index + 1}"] = StepCost(
                instructions=(
                    _C_INSTRUCTIONS_PER_UPDATE * updates_per_channel[index]
                    + _C_INSTRUCTIONS_PER_SEGMENT
                    * segments_per_channel[index]
                    + _C_INSTRUCTIONS_PER_SAMPLE * samples
                ),
                memory_accesses=(
                    _C_ACCESSES_PER_SAMPLE * samples
                    + _C_ACCESSES_PER_SEGMENT * segments_per_channel[index]
                ),
                input_bytes=channel_bytes,
                output_bytes=len(blobs[index]),
            )
        blob_bytes = sum(len(blob) for blob in blobs)
        costs["mz"] = StepCost(
            instructions=(
                _MZ_INSTRUCTIONS_PER_BYTE * payload_bytes
                + _MZ_INSTRUCTIONS_PER_CHANNEL * self.channels
            ),
            memory_accesses=_MZ_ACCESSES_PER_BYTE * payload_bytes,
            input_bytes=blob_bytes,
            output_bytes=payload_bytes,
        )
        return costs
