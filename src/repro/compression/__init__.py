"""Stream-compression algorithms and their cost instrumentation.

The public surface:

* :func:`get_codec` / :data:`CODEC_NAMES` — registry of the paper's three
  algorithms (``tcomp32``, ``tdic32``, ``lz4``);
* :class:`~repro.compression.base.StreamCompressor` — the interface;
* :class:`~repro.compression.stats.BatchStatistics` /
  :func:`~repro.compression.stats.analyze_batch` — workload statistics.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.compression.base import (
    CompressionResult,
    StatefulCompressor,
    StatelessCompressor,
    StepCost,
    StepRole,
    StepSpec,
    StreamCompressor,
)
from repro.compression.bitio import BitReader, BitWriter, bits_required
from repro.compression.lz4 import Lz4
from repro.compression.partitioned import PartitionedCodec
from repro.compression.stats import BatchStatistics, analyze_batch, shannon_entropy
from repro.compression.stream import CompressionSession, DecompressionSession
from repro.compression.tcomp32 import Tcomp32
from repro.compression.tdic32 import Tdic32
from repro.errors import ConfigurationError

__all__ = [
    "BatchStatistics",
    "BitReader",
    "BitWriter",
    "CODEC_NAMES",
    "CompressionResult",
    "CompressionSession",
    "DecompressionSession",
    "Lz4",
    "PartitionedCodec",
    "StatefulCompressor",
    "StatelessCompressor",
    "StepCost",
    "StepRole",
    "StepSpec",
    "StreamCompressor",
    "Tcomp32",
    "Tdic32",
    "analyze_batch",
    "bits_required",
    "get_codec",
    "shannon_entropy",
]

_REGISTRY: Dict[str, Type[StreamCompressor]] = {
    Tcomp32.name: Tcomp32,
    Tdic32.name: Tdic32,
    Lz4.name: Lz4,
}

#: Names of all registered codecs, in the paper's order.
CODEC_NAMES = ("tcomp32", "lz4", "tdic32")


def get_codec(name: str, **options) -> StreamCompressor:
    """Instantiate a codec by registry name.

    ``options`` are forwarded to the codec constructor (e.g.
    ``get_codec("tdic32", index_bits=14)``).
    """
    try:
        codec_class = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown codec {name!r}; known codecs: {known}")
    return codec_class(**options)
