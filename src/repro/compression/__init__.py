"""Stream-compression algorithms and their cost instrumentation.

The public surface:

* :func:`get_codec` / :func:`register_codec` / :data:`CODEC_NAMES` —
  the codec registry: the paper's three algorithms (``tcomp32``,
  ``lz4``, ``tdic32``), the DAG-shaped extras (``unlz4``, ``mltc``) and
  any out-of-tree codec registered at runtime or through a
  ``cstream.codecs`` packaging entry point (see
  :mod:`repro.compression.registry`);
* :class:`~repro.compression.base.StreamCompressor` — the interface;
* :class:`~repro.compression.stats.BatchStatistics` /
  :func:`~repro.compression.stats.analyze_batch` — workload statistics.
"""

from __future__ import annotations

from repro.compression.base import (
    CompressionResult,
    StatefulCompressor,
    StatelessCompressor,
    StepCost,
    StepRole,
    StepSpec,
    StreamCompressor,
)
from repro.compression.bitio import BitReader, BitWriter, bits_required
from repro.compression.lz4 import Lz4
from repro.compression.partitioned import PartitionedCodec
from repro.compression.registry import codec_names, get_codec, register_codec
from repro.compression.stats import BatchStatistics, analyze_batch, shannon_entropy
from repro.compression.stream import CompressionSession, DecompressionSession
from repro.compression.tcomp32 import Tcomp32
from repro.compression.tdic32 import Tdic32

__all__ = [
    "BatchStatistics",
    "BitReader",
    "BitWriter",
    "CODEC_NAMES",
    "CompressionResult",
    "CompressionSession",
    "DecompressionSession",
    "Lz4",
    "PartitionedCodec",
    "StatefulCompressor",
    "StatelessCompressor",
    "StepCost",
    "StepRole",
    "StepSpec",
    "StreamCompressor",
    "Tcomp32",
    "Tdic32",
    "analyze_batch",
    "bits_required",
    "codec_names",
    "get_codec",
    "register_codec",
    "shannon_entropy",
]

#: Names of all registered codecs at import time, the paper's three
#: first. Codecs registered later (runtime plugins) appear in
#: :func:`codec_names` but not in this snapshot.
CODEC_NAMES = codec_names()
