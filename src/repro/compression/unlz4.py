"""unlz4 — LZ4 block *decompression* as a fork-join pipeline workload.

Compression pipelines are not the only stream workloads an asymmetric
board runs: the downlink side of the paper's drone scenario decodes the
same batches it previously uplinked. Decoding LZ4 is naturally a DAG,
not a chain — after the sequence stream is parsed, literal runs and
match copies are independent per sequence and only meet again when the
output batch is stitched together:

* ``d0`` parse — walk tokens, extended lengths and offsets. Branchy
  integer work over a small window: *high* operational intensity;
* ``d1`` literal copy — memcpy literal runs to their output slots:
  *low* intensity (two memory accesses per byte, almost no arithmetic);
* ``d2`` match copy — resolve back-references against the decoded
  window (byte-wise, overlap-safe): *low* intensity;
* ``d3`` merge — stitch the materialized runs into the decoded batch
  and verify the promised length: *low* intensity.

The intensity profile is *inverted* relative to the encoder (lz4's
compute-heavy s1–s3 sit mid-pipeline; here the compute-heavy step comes
first and everything downstream is memory-bound), which exercises the
scheduler's cluster assignment in the opposite direction.

``compress`` performs a real LZ4 block encode (via
:class:`~repro.compression.lz4.Lz4`) so the round-trip contract holds,
but the reported step costs model the *decoder's* work on that payload:
the encoder's sequence counters (tokens, matches, matched bytes) are
exactly what the decoder will traverse. ``decompress`` is a real decode.

Step graph::

            +-> d1 (literals) -+
    d0 ----+                   +--> d3
            +-> d2 (matches) --+
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.compression.base import (
    CompressionResult,
    StepCost,
    StepRole,
    StepSpec,
    StreamCompressor,
)
from repro.compression.lz4 import Lz4

__all__ = ["UnLz4"]

# --- calibrated virtual-cost constants (see DESIGN.md) ------------------
# d0 parse: token/length/offset decode is branchy register arithmetic
# over bytes that stay cache-resident — few accesses, many instructions.
_D0_INSTRUCTIONS_PER_TOKEN = 240.0
_D0_INSTRUCTIONS_PER_BYTE = 6.0  # per compressed byte scanned
_D0_ACCESSES_PER_TOKEN = 1.1
_D0_ACCESSES_PER_BYTE = 0.04
# d1 literal copy: a straight memcpy, read + write per byte.
_D1_INSTRUCTIONS_PER_BYTE = 1.4
_D1_INSTRUCTIONS_PER_RUN = 28.0
_D1_ACCESSES_PER_BYTE = 2.05
_D1_ACCESSES_PER_RUN = 2.0
# d2 match copy: byte-wise because matches may overlap their output.
_D2_INSTRUCTIONS_PER_BYTE = 2.6
_D2_INSTRUCTIONS_PER_MATCH = 42.0
_D2_ACCESSES_PER_BYTE = 2.55
_D2_ACCESSES_PER_MATCH = 3.0
# d3 merge: stitch runs into the output batch and check the length.
_D3_INSTRUCTIONS_PER_BYTE = 1.1
_D3_INSTRUCTIONS_PER_TOKEN = 18.0
_D3_ACCESSES_PER_BYTE = 1.9
# (kind, output offset, length) run descriptors flowing d0 -> d1/d2
_DESCRIPTOR_BYTES_PER_RUN = 9


class UnLz4(StreamCompressor):
    """LZ4 block decompression modeled as a parse/{literal,match}/merge
    fork-join pipeline.

    Parameters
    ----------
    index_bits:
        log2 of the *encoder's* hash-table size (default 12) — it shapes
        the sequence mix the decoder sees.
    """

    name = "unlz4"
    stateful = False

    _STEPS = (
        StepSpec("d0", StepRole.READ,
                 "parse sequences: tokens, lengths, offsets"),
        StepSpec("d1", StepRole.ENCODE, "materialize literal runs"),
        StepSpec("d2", StepRole.ENCODE,
                 "resolve match copies against the decoded window"),
        StepSpec("d3", StepRole.WRITE,
                 "merge runs into the decoded batch"),
    )

    def __init__(self, index_bits: int = 12) -> None:
        self._codec = Lz4(index_bits=index_bits)

    def steps(self) -> Tuple[StepSpec, ...]:
        return self._STEPS

    def step_dependencies(self) -> Mapping[str, Tuple[str, ...]]:
        return {"d0": (), "d1": ("d0",), "d2": ("d0",), "d3": ("d1", "d2")}

    def compress(self, data: bytes) -> CompressionResult:
        encoded = self._codec.compress(data)
        counters = dict(encoded.counters)
        step_costs = self._step_costs(
            input_bytes=len(data),
            compressed_bytes=len(encoded.payload),
            tokens=int(counters["tokens"]),
            matches=int(counters["matches"]),
            matched_bytes=int(counters["matched_bytes"]),
            literal_bytes=int(counters["literal_bytes"]),
        )
        return CompressionResult(
            payload=encoded.payload,
            input_size=len(data),
            step_costs=step_costs,
            counters=counters,
        )

    def decompress(self, payload: bytes) -> bytes:
        return self._codec.decompress(payload)

    def _step_costs(
        self,
        input_bytes: int,
        compressed_bytes: int,
        tokens: int,
        matches: int,
        matched_bytes: int,
        literal_bytes: int,
    ) -> Dict[str, StepCost]:
        # Every sequence carries one (possibly empty) literal run;
        # matched sequences additionally carry one match run.
        literal_runs = tokens
        descriptor_bytes = (
            (literal_runs + matches) * _DESCRIPTOR_BYTES_PER_RUN
        )
        d0 = StepCost(
            instructions=(
                _D0_INSTRUCTIONS_PER_TOKEN * tokens
                + _D0_INSTRUCTIONS_PER_BYTE * compressed_bytes
            ),
            memory_accesses=(
                _D0_ACCESSES_PER_TOKEN * tokens
                + _D0_ACCESSES_PER_BYTE * compressed_bytes
            ),
            input_bytes=compressed_bytes,
            output_bytes=descriptor_bytes,
        )
        d1 = StepCost(
            instructions=(
                _D1_INSTRUCTIONS_PER_BYTE * literal_bytes
                + _D1_INSTRUCTIONS_PER_RUN * literal_runs
            ),
            memory_accesses=(
                _D1_ACCESSES_PER_BYTE * literal_bytes
                + _D1_ACCESSES_PER_RUN * literal_runs
            ),
            input_bytes=descriptor_bytes,
            output_bytes=literal_bytes,
        )
        d2 = StepCost(
            instructions=(
                _D2_INSTRUCTIONS_PER_BYTE * matched_bytes
                + _D2_INSTRUCTIONS_PER_MATCH * matches
            ),
            memory_accesses=(
                _D2_ACCESSES_PER_BYTE * matched_bytes
                + _D2_ACCESSES_PER_MATCH * matches
            ),
            input_bytes=descriptor_bytes,
            output_bytes=matched_bytes,
        )
        d3 = StepCost(
            instructions=(
                _D3_INSTRUCTIONS_PER_BYTE * input_bytes
                + _D3_INSTRUCTIONS_PER_TOKEN * tokens
            ),
            memory_accesses=_D3_ACCESSES_PER_BYTE * input_bytes,
            input_bytes=literal_bytes + matched_bytes,
            output_bytes=input_bytes,
        )
        return {"d0": d0, "d1": d1, "d2": d2, "d3": d3}
