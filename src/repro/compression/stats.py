"""Statistical characterization of stream batches.

The paper's workload-sensitivity study (§VII-B) varies three data
properties — *vocabulary duplication*, *symbol duplication*, and *dynamic
range* — and its codecs' per-step costs depend on them. Following the
paper's convention, a **symbol** is a non-overlapping 32-bit word of the
batch and a **vocabulary** is a longer (64-bit here) unit.

:func:`analyze_batch` computes all the properties in one pass; the result
feeds both the cost model (operational-intensity estimation) and the
dataset generators' self-checks.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["BatchStatistics", "analyze_batch", "shannon_entropy"]

_SYMBOL_BYTES = 4
_VOCABULARY_BYTES = 8


def shannon_entropy(counts: Counter) -> float:
    """Shannon entropy in bits of a discrete distribution given by counts."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


@dataclass(frozen=True)
class BatchStatistics:
    """Summary statistics of one batch of stream data.

    Attributes
    ----------
    size_bytes:
        Raw batch size.
    symbol_count:
        Number of 32-bit symbols in the batch.
    symbol_duplication:
        Fraction of symbols that repeat an earlier symbol, in ``[0, 1]``.
        This is what tdic32's dictionary hit rate tracks.
    vocabulary_duplication:
        Same, for 64-bit vocabularies — what lz4's match finder tracks.
    dynamic_range_bits:
        Mean number of significant bits per symbol (1..32). tcomp32's
        output size is proportional to this.
    symbol_entropy_bits:
        Shannon entropy of the symbol distribution, in bits (0..32).
    """

    size_bytes: int
    symbol_count: int
    symbol_duplication: float
    vocabulary_duplication: float
    dynamic_range_bits: float
    symbol_entropy_bits: float


def _as_words(data: bytes, word_bytes: int) -> np.ndarray:
    usable = len(data) - len(data) % word_bytes
    dtype = np.uint32 if word_bytes == _SYMBOL_BYTES else np.uint64
    if usable == 0:
        return np.zeros(0, dtype=dtype)
    return np.frombuffer(data[:usable], dtype=dtype)


def _duplication_fraction(words: np.ndarray) -> float:
    """Fraction of words that are repeats of a value already seen."""
    if words.size == 0:
        return 0.0
    unique = np.unique(words).size
    return 1.0 - unique / words.size


def analyze_batch(data: bytes) -> BatchStatistics:
    """Compute :class:`BatchStatistics` for a batch of raw stream bytes."""
    symbols = _as_words(data, _SYMBOL_BYTES)
    vocabularies = _as_words(data, _VOCABULARY_BYTES)

    if symbols.size:
        # Significant bits per symbol; zero needs one bit (Algorithm 2).
        clipped = np.maximum(symbols, 1).astype(np.uint64)
        bits = np.floor(np.log2(clipped.astype(np.float64))).astype(np.int64) + 1
        dynamic_range = float(bits.mean())
        values, counts = np.unique(symbols, return_counts=True)
        probabilities = counts / symbols.size
        entropy = float(-(probabilities * np.log2(probabilities)).sum())
    else:
        dynamic_range = 0.0
        entropy = 0.0

    return BatchStatistics(
        size_bytes=len(data),
        symbol_count=int(symbols.size),
        symbol_duplication=_duplication_fraction(symbols),
        vocabulary_duplication=_duplication_fraction(vocabularies),
        dynamic_range_bits=dynamic_range,
        symbol_entropy_bits=entropy,
    )
