"""Codec framework: steps, cost reports, and the compressor interface.

The paper decomposes every stream-compression algorithm into *steps*
(Algorithms 1 and 3): a stateless codec has ``s0`` read, ``s1`` encode and
``s2`` write; a stateful codec has ``s0`` read, ``s1`` pre-process, ``s2``
state update, ``s3`` state-based encoding and ``s4`` write. CStream's
fine-grained decomposition (§IV) turns these steps into schedulable tasks,
so each codec here must report, *per step*, how much work it did on a
batch: virtual instruction count, memory accesses (their ratio is the
operational intensity κ), and the number of bytes forwarded to the next
step (which prices inter-task communication, Eq 7).

The compression itself is real — codecs produce actual compressed bytes
and must round-trip through their decoder. Only the instruction/memory
accounting is a calibrated analytic model (see DESIGN.md): each codec maps
counters gathered during real execution (dictionary hits, match lengths,
emitted bits, ...) to instruction and access counts.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "StepRole",
    "StepSpec",
    "StepCost",
    "CompressionResult",
    "StreamCompressor",
    "StatelessCompressor",
    "StatefulCompressor",
]


class StepRole(enum.Enum):
    """What a step does; drives the decomposer's fusion heuristics."""

    READ = "read"
    PREPROCESS = "preprocess"
    STATE_UPDATE = "state_update"
    ENCODE = "encode"
    WRITE = "write"


@dataclass(frozen=True)
class StepSpec:
    """Static description of one step of a compression procedure.

    Attributes
    ----------
    step_id:
        The paper's step label (``"s0"`` ... ``"s4"``).
    role:
        Coarse classification of the step's function.
    description:
        Human-readable summary, used in plan dumps and bench output.
    """

    step_id: str
    role: StepRole
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.step_id}({self.role.value})"


@dataclass(frozen=True)
class StepCost:
    """Work performed by one step while compressing one batch.

    ``instructions`` and ``memory_accesses`` are *virtual* counts produced
    by the codec's calibrated cost model; their ratio is the operational
    intensity κ that the roofline model consumes. ``output_bytes`` is the
    volume handed to the next step (or the final compressed size for the
    last step), which prices communication when the steps land on
    different cores.
    """

    instructions: float
    memory_accesses: float
    input_bytes: int
    output_bytes: int

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.memory_accesses < 0:
            raise ValueError("step costs must be non-negative")

    @property
    def operational_intensity(self) -> float:
        """Instructions per memory access (κ). Infinite-κ steps are capped
        by returning instructions when there are no accesses at all."""
        if self.memory_accesses <= 0:
            return self.instructions
        return self.instructions / self.memory_accesses

    def scaled(self, factor: float) -> "StepCost":
        """Cost of processing ``factor`` times the data (κ-preserving)."""
        return StepCost(
            instructions=self.instructions * factor,
            memory_accesses=self.memory_accesses * factor,
            input_bytes=int(round(self.input_bytes * factor)),
            output_bytes=int(round(self.output_bytes * factor)),
        )

    @staticmethod
    def merged(costs: Sequence["StepCost"]) -> "StepCost":
        """Cost of a fused task running the given steps back to back.

        Instructions and accesses add; the fused task reads the first
        step's input and forwards the last step's output.
        """
        if not costs:
            raise ValueError("cannot merge an empty cost sequence")
        return StepCost(
            instructions=sum(c.instructions for c in costs),
            memory_accesses=sum(c.memory_accesses for c in costs),
            input_bytes=costs[0].input_bytes,
            output_bytes=costs[-1].output_bytes,
        )


@dataclass
class CompressionResult:
    """Everything a codec produced while compressing one batch."""

    payload: bytes
    input_size: int
    step_costs: Dict[str, StepCost]
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def output_size(self) -> int:
        return len(self.payload)

    @property
    def compression_ratio(self) -> float:
        """Input bytes per output byte (>1 means the data shrank)."""
        if self.output_size == 0:
            return float("inf")
        return self.input_size / self.output_size

    def total_instructions(self) -> float:
        return sum(cost.instructions for cost in self.step_costs.values())

    def total_memory_accesses(self) -> float:
        return sum(cost.memory_accesses for cost in self.step_costs.values())


class StreamCompressor(abc.ABC):
    """Interface every stream-compression algorithm implements.

    Implementations must be deterministic: compressing the same batch
    twice (after :meth:`reset`) yields identical payloads and costs. A
    compressor instance owns its state (dictionary, window, ...); use
    :meth:`reset` between independent streams.
    """

    #: codec registry name, e.g. ``"tcomp32"``
    name: str = ""
    #: whether the algorithm keeps cross-tuple state (Algorithm 3)
    stateful: bool = False

    @abc.abstractmethod
    def steps(self) -> Tuple[StepSpec, ...]:
        """The ordered step decomposition of this algorithm."""

    @abc.abstractmethod
    def compress(self, data: bytes) -> CompressionResult:
        """Compress one batch, returning payload plus per-step costs."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress` exactly."""

    def reset(self) -> None:
        """Drop any accumulated state. Default: stateless no-op."""

    def step_ids(self) -> Tuple[str, ...]:
        return tuple(spec.step_id for spec in self.steps())

    def step_dependencies(self) -> Mapping[str, Tuple[str, ...]]:
        """The codec's step DAG: each step id mapped to the step ids it
        consumes data from (empty tuple for source steps).

        Default: the paper's linear chain — every step depends on the
        step before it in :meth:`steps` order. DAG codecs (fork/join
        decompression, per-channel fan-out) override this; the mapping
        must be topologically consistent with :meth:`steps` order (a
        step may only depend on steps listed *earlier*), keys must be
        exactly :meth:`step_ids`, and the last step must be the unique
        sink so fused task graphs keep a single output stage.
        """
        ids = self.step_ids()
        return {
            step_id: (() if index == 0 else (ids[index - 1],))
            for index, step_id in enumerate(ids)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "stateful" if self.stateful else "stateless"
        return f"<{type(self).__name__} {self.name!r} ({kind})>"


class StatelessCompressor(StreamCompressor):
    """Template for Algorithm 1: read (s0), encode (s1), write (s2)."""

    stateful = False

    _STEPS = (
        StepSpec("s0", StepRole.READ, "read tuples from the input stream"),
        StepSpec("s1", StepRole.ENCODE, "find compressible parts"),
        StepSpec("s2", StepRole.WRITE, "write compressed data"),
    )

    def steps(self) -> Tuple[StepSpec, ...]:
        return self._STEPS


class StatefulCompressor(StreamCompressor):
    """Template for Algorithm 3: read, pre-process, state update,
    state-based encode, write (s0..s4)."""

    stateful = True

    _STEPS = (
        StepSpec("s0", StepRole.READ, "read tuples from the input stream"),
        StepSpec("s1", StepRole.PREPROCESS, "pre-process values (e.g. hash)"),
        StepSpec("s2", StepRole.STATE_UPDATE, "update the in-memory state"),
        StepSpec("s3", StepRole.ENCODE, "encode by state reference"),
        StepSpec("s4", StepRole.WRITE, "write compressed data"),
    )

    def steps(self) -> Tuple[StepSpec, ...]:
        return self._STEPS


def validate_step_costs(
    compressor: StreamCompressor, costs: Mapping[str, StepCost]
) -> None:
    """Sanity-check that a cost mapping covers exactly the codec's steps."""
    expected = set(compressor.step_ids())
    actual = set(costs)
    if expected != actual:
        raise ValueError(
            f"step cost mapping for {compressor.name} has steps {sorted(actual)}, "
            f"expected {sorted(expected)}"
        )
