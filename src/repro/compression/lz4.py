"""lz4 — LZ77-family stateful compression (paper Algorithm 5).

This is a real encoder/decoder for the LZ4 *block* format: greedy parsing
with a hash table keyed on 4-byte prefixes, sequences of
``token | literal-length extension | literals | offset | match-length
extension``, and an all-literal final sequence. A 4-byte little-endian
original-length header frames each block (the paper compresses batch by
batch; each batch is one block, so the hash-table state — the paper's
``tb``, ``literal`` and ``buffer`` — lives for the duration of a block).

Step decomposition (Algorithm 3):

* ``s0`` read — append bytes to the search buffer;
* ``s1`` pre-process — hash the 4-byte prefix at each scan position;
* ``s2`` state update — read/overwrite the hash-table slot and trim the
  window (memory-bound, cost shrinks with vocabulary duplication because
  matched spans skip updates);
* ``s3`` state-based encoding — match expansion ("backward searching");
  cost grows with duplication via matched bytes and per-match setup;
* ``s4`` write — token/literal emission, cost tracks output volume.

The opposing trends of ``s2`` and ``s3`` under vocabulary duplication are
what Fig 12 of the paper studies.
"""

from __future__ import annotations

import struct

from repro.compression.base import CompressionResult, StatefulCompressor, StepCost
from repro.errors import CompressionError, CorruptStreamError

try:  # optional fast path; the scalar encoder is the reference
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

__all__ = ["Lz4"]

_HEADER = struct.Struct("<I")
_MIN_MATCH = 4
_MAX_OFFSET = 0xFFFF
# Positions closer than this to the end are emitted as literals, matching
# the reference implementation's end-of-block conditions.
_MATCH_SEARCH_MARGIN = 12
_TOKEN_MAX = 15

# --- calibrated virtual-cost constants (see DESIGN.md) ------------------
_S0_INSTRUCTIONS_PER_BYTE = 2.5
_S0_ACCESSES_PER_BYTE = 0.35
_S1_INSTRUCTIONS_PER_PROBE = 60.0
_S1_INSTRUCTIONS_PER_BYTE = 8.0
_S1_ACCESSES_PER_PROBE = 0.24
_S1_ACCESSES_PER_BYTE = 0.02
_S2_INSTRUCTIONS_PER_UPDATE = 48.0
_S2_INSTRUCTIONS_PER_BYTE = 16.0
_S2_ACCESSES_PER_UPDATE = 4.0
_S2_ACCESSES_PER_BYTE = 0.6
_S3_INSTRUCTIONS_PER_MATCH_BYTE = 40.0
_S3_INSTRUCTIONS_PER_MATCH = 1000.0
_S3_INSTRUCTIONS_PER_BYTE = 12.0
_S3_ACCESSES_PER_MATCH_BYTE = 0.24
_S3_ACCESSES_PER_MATCH = 6.0
_S3_ACCESSES_PER_BYTE = 0.08
_S4_INSTRUCTIONS_PER_OUTPUT_BYTE = 150.0
_S4_INSTRUCTIONS_PER_TOKEN = 32.0
_S4_ACCESSES_PER_OUTPUT_BYTE = 1.5
_S4_ACCESSES_PER_TOKEN = 0.3
# (position, slot) descriptors flowing between the pipeline steps
_DESCRIPTOR_BYTES_PER_PROBE = 5


def _hash4(data: bytes, position: int, index_bits: int) -> int:
    """Multiplicative hash of the 4 bytes at ``position``."""
    word = int.from_bytes(data[position:position + 4], "little")
    return ((word * 2654435761) & 0xFFFFFFFF) >> (32 - index_bits)


def _hash_all(data: bytes, limit: int, index_bits: int):
    """Vectorized :func:`_hash4` for every position in ``[0, limit)``.

    Pure integer arithmetic in uint32 (multiplication wraps exactly like
    ``& 0xFFFFFFFF``), so each entry equals the scalar hash bit for bit;
    returns ``None`` without numpy and the encoder falls back to
    :func:`_hash4` per probe. Positions up to ``limit - 1`` read 4 bytes
    each, which stays in bounds because ``limit`` excludes the
    :data:`_MATCH_SEARCH_MARGIN` tail.
    """
    if _np is None or limit <= 0:
        return None
    raw = _np.frombuffer(data, dtype=_np.uint8)
    words = raw[0:limit].astype(_np.uint32)
    words |= raw[1:limit + 1].astype(_np.uint32) << _np.uint32(8)
    words |= raw[2:limit + 2].astype(_np.uint32) << _np.uint32(16)
    words |= raw[3:limit + 3].astype(_np.uint32) << _np.uint32(24)
    words *= _np.uint32(2654435761)
    words >>= _np.uint32(32 - index_bits)
    return words.tolist()


def _write_length(out: bytearray, length: int) -> None:
    """LZ4 extended-length encoding: bytes of 255 then a final byte."""
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


class Lz4(StatefulCompressor):
    """LZ4 block-format stream compressor.

    Parameters
    ----------
    index_bits:
        log2 of the hash-table size (default 12).
    max_search_length:
        The paper's ``ml``: matches longer than this are split. ``None``
        (default) leaves match length unbounded, like reference lz4.
    """

    name = "lz4"

    def __init__(self, index_bits: int = 12, max_search_length: int = None) -> None:
        if not 1 <= index_bits <= 24:
            raise CompressionError(
                f"lz4 index_bits must be in [1, 24], got {index_bits}"
            )
        if max_search_length is not None and max_search_length < _MIN_MATCH:
            raise CompressionError(
                f"lz4 max_search_length must be >= {_MIN_MATCH}"
            )
        self.index_bits = index_bits
        self.max_search_length = max_search_length

    def compress(self, data: bytes) -> CompressionResult:
        out = bytearray(_HEADER.pack(len(data)))
        n = len(data)
        table = [-1] * (1 << self.index_bits)

        probes = 0
        updates = 0
        matches = 0
        matched_bytes = 0
        tokens = 0

        anchor = 0  # start of the pending literal run
        position = 0
        search_limit = n - _MATCH_SEARCH_MARGIN
        hashes = _hash_all(data, search_limit, self.index_bits)
        if hashes is not None:
            hash_at = hashes.__getitem__
        else:
            index_bits = self.index_bits
            hash_at = lambda p: _hash4(data, p, index_bits)  # noqa: E731
        while position < search_limit:
            slot = hash_at(position)
            probes += 1
            candidate = table[slot]
            table[slot] = position
            updates += 1
            if (
                candidate >= 0
                and position - candidate <= _MAX_OFFSET
                and data[candidate:candidate + _MIN_MATCH]
                == data[position:position + _MIN_MATCH]
            ):
                length = self._expand_match(data, candidate, position, search_limit)
                self._emit_sequence(
                    out, data, anchor, position, position - candidate, length
                )
                tokens += 1
                matches += 1
                matched_bytes += length
                position += length
                anchor = position
            else:
                position += 1

        # Final all-literal sequence (always present, even if empty, so the
        # decoder can terminate on a literals-only token).
        literal_length = n - anchor
        token_literals = min(literal_length, _TOKEN_MAX)
        out.append(token_literals << 4)
        if literal_length >= _TOKEN_MAX:
            _write_length(out, literal_length - _TOKEN_MAX)
        out.extend(data[anchor:])
        tokens += 1

        payload = bytes(out)
        counters = {
            "input_bytes": float(n),
            "probes": float(probes),
            "table_updates": float(updates),
            "matches": float(matches),
            "matched_bytes": float(matched_bytes),
            "literal_bytes": float(n - matched_bytes),
            "tokens": float(tokens),
            "matched_fraction": matched_bytes / n if n else 0.0,
        }
        step_costs = self._step_costs(
            n, probes, updates, matches, matched_bytes, tokens, len(payload)
        )
        return CompressionResult(
            payload=payload,
            input_size=n,
            step_costs=step_costs,
            counters=counters,
        )

    def _expand_match(
        self, data: bytes, candidate: int, position: int, limit: int
    ) -> int:
        """Length of the match between ``candidate`` and ``position``.

        This is the paper's "expand searching in buffer" — forward
        extension past the verified 4-byte seed, capped by the search
        margin and optionally by ``max_search_length``.
        """
        length = _MIN_MATCH
        max_length = limit - position
        if self.max_search_length is not None:
            max_length = min(max_length, self.max_search_length)
        while (
            length < max_length
            and data[candidate + length] == data[position + length]
        ):
            length += 1
        return length

    @staticmethod
    def _emit_sequence(
        out: bytearray,
        data: bytes,
        anchor: int,
        position: int,
        offset: int,
        match_length: int,
    ) -> None:
        literal_length = position - anchor
        token_literals = min(literal_length, _TOKEN_MAX)
        token_match = min(match_length - _MIN_MATCH, _TOKEN_MAX)
        out.append((token_literals << 4) | token_match)
        if literal_length >= _TOKEN_MAX:
            _write_length(out, literal_length - _TOKEN_MAX)
        out.extend(data[anchor:position])
        out.extend(offset.to_bytes(2, "little"))
        if match_length - _MIN_MATCH >= _TOKEN_MAX:
            _write_length(out, match_length - _MIN_MATCH - _TOKEN_MAX)

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _HEADER.size:
            raise CorruptStreamError("lz4 stream shorter than its header")
        (expected,) = _HEADER.unpack_from(payload)
        src = payload[_HEADER.size:]
        out = bytearray()
        position = 0
        while len(out) < expected or position < len(src):
            if position >= len(src):
                raise CorruptStreamError("lz4 stream truncated mid-sequence")
            token = src[position]
            position += 1
            literal_length = token >> 4
            if literal_length == _TOKEN_MAX:
                literal_length, position = self._read_length(
                    src, position, literal_length
                )
            if position + literal_length > len(src):
                raise CorruptStreamError("lz4 literal run exceeds stream")
            out.extend(src[position:position + literal_length])
            position += literal_length
            if len(out) >= expected:
                break  # final literals-only sequence
            if position + 2 > len(src):
                raise CorruptStreamError("lz4 stream truncated at match offset")
            offset = int.from_bytes(src[position:position + 2], "little")
            position += 2
            if offset == 0 or offset > len(out):
                raise CorruptStreamError(f"lz4 invalid match offset {offset}")
            match_length = (token & 0x0F) + _MIN_MATCH
            if (token & 0x0F) == _TOKEN_MAX:
                extra, position = self._read_length(src, position, 0)
                match_length += extra
            # Byte-wise copy: matches may overlap their own output.
            start = len(out) - offset
            for i in range(match_length):
                out.append(out[start + i])
        if len(out) != expected:
            raise CorruptStreamError(
                f"lz4 decoded {len(out)} bytes, header promised {expected}"
            )
        return bytes(out)

    @staticmethod
    def _read_length(src: bytes, position: int, base: int):
        length = base
        while True:
            if position >= len(src):
                raise CorruptStreamError("lz4 stream truncated in length field")
            byte = src[position]
            position += 1
            length += byte
            if byte != 255:
                return length, position

    def _step_costs(
        self,
        input_bytes: int,
        probes: int,
        updates: int,
        matches: int,
        matched_bytes: int,
        tokens: int,
        output_bytes: int,
    ) -> dict:
        descriptor_bytes = probes * _DESCRIPTOR_BYTES_PER_PROBE
        s0 = StepCost(
            instructions=_S0_INSTRUCTIONS_PER_BYTE * input_bytes,
            memory_accesses=_S0_ACCESSES_PER_BYTE * input_bytes,
            input_bytes=input_bytes,
            output_bytes=input_bytes,
        )
        s1 = StepCost(
            instructions=(
                _S1_INSTRUCTIONS_PER_PROBE * probes
                + _S1_INSTRUCTIONS_PER_BYTE * input_bytes
            ),
            memory_accesses=(
                _S1_ACCESSES_PER_PROBE * probes
                + _S1_ACCESSES_PER_BYTE * input_bytes
            ),
            input_bytes=input_bytes,
            output_bytes=descriptor_bytes,
        )
        s2 = StepCost(
            instructions=(
                _S2_INSTRUCTIONS_PER_UPDATE * updates
                + _S2_INSTRUCTIONS_PER_BYTE * input_bytes
            ),
            memory_accesses=(
                _S2_ACCESSES_PER_UPDATE * updates
                + _S2_ACCESSES_PER_BYTE * input_bytes
            ),
            input_bytes=descriptor_bytes,
            output_bytes=descriptor_bytes,
        )
        s3 = StepCost(
            instructions=(
                _S3_INSTRUCTIONS_PER_MATCH_BYTE * matched_bytes
                + _S3_INSTRUCTIONS_PER_MATCH * matches
                + _S3_INSTRUCTIONS_PER_BYTE * input_bytes
            ),
            memory_accesses=(
                _S3_ACCESSES_PER_MATCH_BYTE * matched_bytes
                + _S3_ACCESSES_PER_MATCH * matches
            ),
            input_bytes=descriptor_bytes,
            output_bytes=descriptor_bytes,
        )
        s4 = StepCost(
            instructions=(
                _S4_INSTRUCTIONS_PER_OUTPUT_BYTE * output_bytes
                + _S4_INSTRUCTIONS_PER_TOKEN * tokens
            ),
            memory_accesses=(
                _S4_ACCESSES_PER_OUTPUT_BYTE * output_bytes
                + _S4_ACCESSES_PER_TOKEN * tokens
            ),
            input_bytes=descriptor_bytes,
            output_bytes=output_bytes,
        )
        return {"s0": s0, "s1": s1, "s2": s2, "s3": s3, "s4": s4}
