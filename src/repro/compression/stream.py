"""Streaming sessions: framed multi-batch compression over a byte pipe.

The paper's Definition 1 compresses a stream batch by batch; a consumer
(the drone's uplink, a file, a socket) then needs to find the batch
boundaries again. :class:`CompressionSession` frames each compressed
batch with a small header (magic, sequence number, payload length) and a
checksum, and :class:`DecompressionSession` validates and inverts the
stream — including the stateful codecs whose batches reference earlier
batches' dictionary state, which makes ordering errors detectable.

This module is pure library surface on top of the codecs; the simulator
is not involved.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Iterator, List

from repro.compression.base import StreamCompressor
from repro.errors import CorruptStreamError

__all__ = ["CompressionSession", "DecompressionSession", "FRAME_MAGIC"]

FRAME_MAGIC = 0xC57E
_FRAME_HEADER = struct.Struct("<HHII")  # magic, flags, sequence, length
_FRAME_CHECKSUM = struct.Struct("<I")
_FLAG_STATEFUL = 0x0001


class CompressionSession:
    """Compresses a sequence of batches into a framed byte stream.

    >>> from repro.compression import get_codec
    >>> session = CompressionSession(get_codec("tcomp32"))
    >>> frame = session.write_batch(b"\\x01\\x00\\x00\\x00")
    >>> session.frames_written
    1
    """

    def __init__(self, codec: StreamCompressor) -> None:
        self.codec = codec
        self._sequence = 0
        self._input_bytes = 0
        self._output_bytes = 0

    @property
    def frames_written(self) -> int:
        return self._sequence

    @property
    def compression_ratio(self) -> float:
        """Input bytes per framed output byte, headers included."""
        if self._output_bytes == 0:
            return float("inf")
        return self._input_bytes / self._output_bytes

    def write_batch(self, batch: bytes) -> bytes:
        """Compress one batch and return its frame."""
        result = self.codec.compress(batch)
        flags = _FLAG_STATEFUL if self.codec.stateful else 0
        header = _FRAME_HEADER.pack(
            FRAME_MAGIC, flags, self._sequence, len(result.payload)
        )
        checksum = _FRAME_CHECKSUM.pack(zlib.crc32(result.payload))
        frame = header + result.payload + checksum
        self._sequence += 1
        self._input_bytes += len(batch)
        self._output_bytes += len(frame)
        return frame

    def write_stream(self, batches: Iterable[bytes]) -> Iterator[bytes]:
        """Lazily frame a whole stream of batches."""
        for batch in batches:
            yield self.write_batch(batch)


class DecompressionSession:
    """Parses a framed byte stream back into the original batches.

    The session is *stateful in lockstep with the encoder*: frames must
    be fed in order (the sequence numbers enforce it), which is exactly
    what stateful codecs like tdic32 require.
    """

    def __init__(self, codec: StreamCompressor) -> None:
        self.codec = codec
        self._expected_sequence = 0
        self._buffer = bytearray()

    @property
    def frames_read(self) -> int:
        return self._expected_sequence

    def feed(self, data: bytes) -> List[bytes]:
        """Append raw bytes; return every batch completed by them."""
        self._buffer.extend(data)
        batches = []
        while True:
            batch = self._try_parse_frame()
            if batch is None:
                return batches
            batches.append(batch)

    def _try_parse_frame(self):
        header_size = _FRAME_HEADER.size
        if len(self._buffer) < header_size:
            return None
        magic, flags, sequence, length = _FRAME_HEADER.unpack_from(
            self._buffer
        )
        if magic != FRAME_MAGIC:
            raise CorruptStreamError(
                f"bad frame magic 0x{magic:04X} (expected 0x{FRAME_MAGIC:04X})"
            )
        total = header_size + length + _FRAME_CHECKSUM.size
        if len(self._buffer) < total:
            return None
        if sequence != self._expected_sequence:
            raise CorruptStreamError(
                f"frame {sequence} arrived out of order "
                f"(expected {self._expected_sequence})"
            )
        stateful_flag = bool(flags & _FLAG_STATEFUL)
        if stateful_flag != self.codec.stateful:
            raise CorruptStreamError(
                "frame statefulness flag does not match the decoder codec"
            )
        payload = bytes(self._buffer[header_size:header_size + length])
        (checksum,) = _FRAME_CHECKSUM.unpack_from(
            self._buffer, header_size + length
        )
        if zlib.crc32(payload) != checksum:
            raise CorruptStreamError(
                f"frame {sequence} checksum mismatch (corrupted payload)"
            )
        del self._buffer[:total]
        self._expected_sequence += 1
        return self.codec.decompress(payload)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise CorruptStreamError(
                f"{len(self._buffer)} trailing bytes after the last frame"
            )
