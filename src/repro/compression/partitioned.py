"""Partitioned-state stream compression (the paper's future work, §IV-B).

The paper evaluates two state-management modes for replicated stateful
workers: a *shared* dictionary behind a lock (slow) and *private*
dictionaries over arbitrary data slices (loses compression ratio because
every replica re-learns the hot set). It points to concurrent stateful
stream processing [63] as the better mechanism and leaves it as future
work — this module implements the standard such mechanism:
**key partitioning**.

Each 32-bit symbol is routed to a shard by a hash of its value, so a
repeated symbol always meets the *same* shard's dictionary: no lock, no
hit-rate loss. The price is a routing stream — ``ceil(log2 shards)``
bits per symbol — that the decoder needs to re-interleave the shard
outputs; it is included in the compression ratio reported here, making
the trade-off honest: partitioning wins when the dictionary hit-rate
gain outweighs the routing overhead.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, List

import numpy as np

from repro.compression.base import StreamCompressor
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.tdic32 import Tdic32, tdic32_hash
from repro.errors import CompressionError, CorruptStreamError

__all__ = ["PartitionedCodec"]

_HEADER = struct.Struct("<IHH")  # word count, shard count, reserved
_SHARD_LENGTH = struct.Struct("<I")
_WORD_BYTES = 4


class PartitionedCodec:
    """Key-partitioned wrapper around a (stateful) 32-bit word codec.

    Parameters
    ----------
    shards:
        Number of state shards (= replicated workers).
    codec_factory:
        Builds one codec per shard; defaults to :class:`Tdic32`.
    """

    def __init__(
        self,
        shards: int,
        codec_factory: Callable[[], StreamCompressor] = Tdic32,
    ) -> None:
        if not 1 <= shards <= 256:
            raise CompressionError(f"shards must be in [1, 256], got {shards}")
        self.shards = shards
        self._codecs: List[StreamCompressor] = [
            codec_factory() for _ in range(shards)
        ]
        self.routing_bits = max(1, math.ceil(math.log2(shards))) if shards > 1 else 0

    def reset(self) -> None:
        for codec in self._codecs:
            codec.reset()

    def shard_of(self, word: int) -> int:
        """Deterministic value-based shard routing."""
        if self.shards == 1:
            return 0
        return tdic32_hash(word, 16) % self.shards

    def compress(self, data: bytes) -> bytes:
        """Partition, compress each shard, frame the results."""
        if len(data) % _WORD_BYTES:
            raise CompressionError(
                f"partitioned codec needs whole 32-bit words, got {len(data)}"
            )
        words = np.frombuffer(data, dtype=np.uint32)
        routes = [self.shard_of(int(word)) for word in words.tolist()]

        shard_words: List[List[int]] = [[] for _ in range(self.shards)]
        for word, route in zip(words.tolist(), routes):
            shard_words[route].append(word)

        writer = BitWriter()
        writer.write_bytes(_HEADER.pack(len(words), self.shards, 0))
        for route in routes:
            writer.write(route, self.routing_bits)
        writer.align()

        out = bytearray(writer.getvalue())
        for shard, codec in enumerate(self._codecs):
            shard_data = np.asarray(
                shard_words[shard], dtype=np.uint32
            ).tobytes()
            payload = codec.compress(shard_data).payload
            out.extend(_SHARD_LENGTH.pack(len(payload)))
            out.extend(payload)
        return bytes(out)

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _HEADER.size:
            raise CorruptStreamError("partitioned stream shorter than header")
        word_count, shards, _ = _HEADER.unpack_from(payload)
        if shards != self.shards:
            raise CorruptStreamError(
                f"stream has {shards} shards, decoder has {self.shards}"
            )
        reader = BitReader(payload[_HEADER.size:])
        routes = [reader.read(self.routing_bits) for _ in range(word_count)]
        reader.align()
        offset = _HEADER.size + reader.position // 8

        shard_iters = []
        for codec in self._codecs:
            if offset + _SHARD_LENGTH.size > len(payload):
                raise CorruptStreamError("partitioned stream truncated")
            (length,) = _SHARD_LENGTH.unpack_from(payload, offset)
            offset += _SHARD_LENGTH.size
            shard_payload = payload[offset:offset + length]
            if len(shard_payload) != length:
                raise CorruptStreamError("shard payload truncated")
            offset += length
            shard_data = codec.decompress(shard_payload)
            shard_iters.append(iter(np.frombuffer(shard_data, dtype=np.uint32)))

        words = np.empty(word_count, dtype=np.uint32)
        try:
            for index, route in enumerate(routes):
                if route >= self.shards:
                    raise CorruptStreamError(f"invalid shard route {route}")
                words[index] = next(shard_iters[route])
        except StopIteration:
            raise CorruptStreamError("shard ran out of words during reassembly")
        return words.tobytes()

    def compression_ratio(self, data: bytes) -> float:
        """Convenience: end-to-end ratio including routing overhead."""
        payload = self.compress(data)
        return len(data) / len(payload) if payload else float("inf")
