"""Codec registry: built-ins, lazy extras and entry-point discovery.

The paper's three codecs (``tcomp32``, ``lz4``, ``tdic32``) are imported
eagerly — they are the public surface and the golden bench grid. Every
other codec is *lazy*: the registry holds a ``"module:Class"`` import
spec and resolves it the first time the codec is requested, so importing
:mod:`repro.compression` stays cheap and a broken extra only fails when
actually used.

Out-of-tree codecs join the same namespace two ways, neither of which
requires editing this package:

* at runtime, by calling :func:`register_codec` (usable as a class
  decorator) with any :class:`~repro.compression.base.StreamCompressor`
  subclass whose ``name`` attribute is set;
* at install time, by declaring a ``cstream.codecs`` entry point::

      [project.entry-points."cstream.codecs"]
      mycodec = "mypackage.mycodec:MyCodec"

  Entry points are discovered on the first :func:`codec_names` /
  :func:`get_codec` call and recorded as lazy specs, so listing codecs
  never imports a plugin — only selecting one does.

Registered names surface everywhere a codec can be named: ``cstream``
CLI choices, :class:`~repro.bench.harness.WorkloadSpec`, the bench grid
and the adaptive/chaos sessions all resolve through :func:`get_codec`.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple, Type

from repro.compression.base import StreamCompressor
from repro.compression.lz4 import Lz4
from repro.compression.tcomp32 import Tcomp32
from repro.compression.tdic32 import Tdic32
from repro.errors import ConfigurationError

__all__ = [
    "ENTRY_POINT_GROUP",
    "codec_names",
    "get_codec",
    "register_codec",
]

#: Packaging entry-point group scanned for out-of-tree codecs.
ENTRY_POINT_GROUP = "cstream.codecs"

#: The paper's algorithms, in the paper's order (kept first in listings).
_PAPER_ORDER = (Tcomp32.name, Lz4.name, Tdic32.name)

_REGISTRY: Dict[str, Type[StreamCompressor]] = {
    Tcomp32.name: Tcomp32,
    Tdic32.name: Tdic32,
    Lz4.name: Lz4,
}

#: name -> "module:Class" specs resolved on first use.
_LAZY: Dict[str, str] = {
    "unlz4": "repro.compression.unlz4:UnLz4",
    "mltc": "repro.compression.mltc:Mltc",
}

_entry_points_scanned = False


def register_codec(codec_class: Type[StreamCompressor]) -> Type[StreamCompressor]:
    """Register a compressor class under its ``name`` attribute.

    Returns the class, so it can be used as a decorator::

        @register_codec
        class MyCodec(StatelessCompressor):
            name = "mycodec"
            ...

    Re-registering the same class is a no-op; a *different* class under
    an existing name is rejected, because silently shadowing a codec
    would change what every profile and plan in the session means.
    """
    name = getattr(codec_class, "name", "")
    if not name:
        raise ConfigurationError(
            f"codec class {codec_class.__name__} has no 'name' attribute; "
            "set one before registering"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not codec_class:
        raise ConfigurationError(
            f"codec {name!r} is already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    _REGISTRY[name] = codec_class
    _LAZY.pop(name, None)
    return codec_class


def _scan_entry_points() -> None:
    """Record ``cstream.codecs`` entry points as lazy import specs.

    Discovery is metadata-only (no plugin code runs); resolution happens
    in :func:`get_codec`. Installed names never shadow built-ins or an
    explicit :func:`register_codec` call.
    """
    global _entry_points_scanned
    if _entry_points_scanned:
        return
    _entry_points_scanned = True
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8
        return
    try:
        entries = metadata.entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - legacy API without group=
        entries = metadata.entry_points().get(ENTRY_POINT_GROUP, ())
    except Exception:  # pragma: no cover - corrupt install metadata
        return
    for entry in entries:
        if entry.name in _REGISTRY or entry.name in _LAZY:
            continue
        _LAZY[entry.name] = entry.value


def _resolve_lazy(name: str) -> Type[StreamCompressor]:
    spec = _LAZY[name]
    module_name, _, attribute = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
        codec_class = getattr(module, attribute)
    except (ImportError, AttributeError) as error:
        raise ConfigurationError(
            f"codec {name!r} is registered as {spec!r} but failed to "
            f"load: {error}"
        )
    if not (isinstance(codec_class, type)
            and issubclass(codec_class, StreamCompressor)):
        raise ConfigurationError(
            f"codec {name!r} resolved to {codec_class!r}, which is not a "
            "StreamCompressor subclass"
        )
    if getattr(codec_class, "name", "") != name:
        raise ConfigurationError(
            f"codec {name!r} resolved to class named "
            f"{getattr(codec_class, 'name', '')!r}; entry-point name and "
            "class name attribute must agree"
        )
    return register_codec(codec_class)


def codec_names() -> Tuple[str, ...]:
    """All registered codec names: the paper's three first, then every
    extra (lazy built-ins, entry points, runtime registrations) sorted."""
    _scan_entry_points()
    extras = sorted(
        (set(_REGISTRY) | set(_LAZY)) - set(_PAPER_ORDER)
    )
    return _PAPER_ORDER + tuple(extras)


def get_codec(name: str, **options) -> StreamCompressor:
    """Instantiate a codec by registry name.

    ``options`` are forwarded to the codec constructor (e.g.
    ``get_codec("tdic32", index_bits=14)``).
    """
    _scan_entry_points()
    codec_class = _REGISTRY.get(name)
    if codec_class is None:
        if name in _LAZY:
            codec_class = _resolve_lazy(name)
        else:
            known = ", ".join(codec_names())
            raise ConfigurationError(
                f"unknown codec {name!r}; known codecs: {known}"
            )
    return codec_class(**options)
