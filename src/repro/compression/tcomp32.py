"""tcomp32 — stateless bit-level null suppression (paper Algorithm 2).

For every non-overlapping 32-bit word the codec cuts off leading zero
bits: it writes a 5-bit length indicator ``n-1`` followed by the ``n``
significant bits of the word, where ``n = ceil(log2(number+1))`` (one bit
for zero). A 32-bit word-count header makes the stream self-delimiting —
the paper's pseudocode leaves framing implicit, but a decodable stream
needs it.

Step decomposition (Algorithm 1):

* ``s0`` read — memory copy of the batch into words (low κ);
* ``s1`` encode — arithmetic search for the compressible part (high κ,
  grows with the data's dynamic range);
* ``s2`` write — bit-packing of the encoded output (medium κ, grows with
  the emitted bit count).

The per-step instruction/memory-access constants below are calibrated so
that, on a Rovio-like batch (mean significant bits ≈ 31), the fused
``s0+s1`` task has κ ≈ 320 and ≈ 280 instructions/byte while ``s2`` has
κ ≈ 102 and ≈ 120 instructions/byte — the paper's Table IV anchor values.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import CompressionResult, StatelessCompressor, StepCost
from repro.compression.bitio import BitReader, BitWriter, pack_codes
from repro.errors import CompressionError, CorruptStreamError

__all__ = ["Tcomp32"]

_WORD_BYTES = 4
_LENGTH_FIELD_BITS = 5
_HEADER = struct.Struct("<I")

# --- calibrated virtual-cost constants (per 32-bit word; see DESIGN.md) ---
_S0_INSTRUCTIONS = 16.0
_S0_ACCESSES = 1.0
_S1_INSTRUCTIONS_BASE = 88.0
_S1_INSTRUCTIONS_PER_BIT = 32.0
_S1_ACCESSES = 2.4
_S2_INSTRUCTIONS_BASE = 100.0
_S2_INSTRUCTIONS_PER_OUTPUT_BIT = 10.5
_S2_ACCESSES_BASE = 0.2
# one access per packed output byte
_S2_ACCESSES_PER_OUTPUT_BIT = 1.0 / 8.0
# s1 forwards (length, value) descriptors of roughly 5 bytes per word
_S1_DESCRIPTOR_BYTES = 5


def _vectorized_encode(words: np.ndarray):
    """Build all ``(n-1, value)`` codes in one numpy pass and pack them
    with :func:`~repro.compression.bitio.pack_codes`. Returns
    ``(packed bytes, total significant bits)`` — byte-identical to the
    BitWriter reference path.
    """
    if words.size == 0:
        return b"", 0
    w = words.astype(np.uint64)
    bits = np.ones(w.size, dtype=np.uint64)
    nonzero = w > 0
    # float64 has 52 mantissa bits, so log2 of a 32-bit value is exact
    # enough for a correct floor at every representable boundary.
    bits[nonzero] = np.floor(
        np.log2(w[nonzero].astype(np.float64))
    ).astype(np.uint64) + np.uint64(1)
    widths = bits + np.uint64(_LENGTH_FIELD_BITS)
    chunks = ((bits - np.uint64(1)) << bits) | w
    return pack_codes(chunks, widths), int(bits.sum())


class Tcomp32(StatelessCompressor):
    """Stateless 32-bit null-suppression stream compressor.

    Two byte-identical encoder implementations are provided: a
    vectorized numpy path (default — packs every word's
    ``(5-bit length, n-bit value)`` code with shifted 64-bit windows
    OR-ed into the output buffer) and a reference loop over
    :class:`~repro.compression.bitio.BitWriter`. ``fast=False`` selects
    the reference path; the test suite asserts their equivalence.
    """

    name = "tcomp32"

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast

    def compress(self, data: bytes) -> CompressionResult:
        if len(data) % _WORD_BYTES:
            raise CompressionError(
                f"tcomp32 requires input in 32-bit words, got {len(data)} bytes"
            )
        words = np.frombuffer(data, dtype=np.uint32)
        if self.fast:
            body, total_significant_bits = _vectorized_encode(words)
            payload = _HEADER.pack(len(words)) + body
        else:
            writer = BitWriter()
            writer.write_bytes(_HEADER.pack(len(words)))
            total_significant_bits = 0
            for number in words.tolist():
                n = 1 if number == 0 else number.bit_length()
                total_significant_bits += n
                writer.write(n - 1, _LENGTH_FIELD_BITS)
                writer.write(number, n)
            payload = writer.getvalue()

        word_count = len(words)
        mean_bits = total_significant_bits / word_count if word_count else 0.0
        counters = {
            "words": float(word_count),
            "significant_bits": float(total_significant_bits),
            "mean_significant_bits": mean_bits,
        }
        step_costs = self._step_costs(word_count, mean_bits, len(data), len(payload))
        return CompressionResult(
            payload=payload,
            input_size=len(data),
            step_costs=step_costs,
            counters=counters,
        )

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _HEADER.size:
            raise CorruptStreamError("tcomp32 stream shorter than its header")
        (word_count,) = _HEADER.unpack_from(payload)
        reader = BitReader(payload[_HEADER.size:])
        words = np.empty(word_count, dtype=np.uint32)
        for i in range(word_count):
            n = reader.read(_LENGTH_FIELD_BITS) + 1
            words[i] = reader.read(n)
        return words.tobytes()

    def _step_costs(
        self,
        word_count: int,
        mean_bits: float,
        input_size: int,
        output_size: int,
    ) -> dict:
        output_bits_per_word = _LENGTH_FIELD_BITS + mean_bits
        descriptor_bytes = word_count * _S1_DESCRIPTOR_BYTES
        s0 = StepCost(
            instructions=_S0_INSTRUCTIONS * word_count,
            memory_accesses=_S0_ACCESSES * word_count,
            input_bytes=input_size,
            output_bytes=input_size,
        )
        s1 = StepCost(
            instructions=(
                _S1_INSTRUCTIONS_BASE + _S1_INSTRUCTIONS_PER_BIT * mean_bits
            ) * word_count,
            memory_accesses=_S1_ACCESSES * word_count,
            input_bytes=input_size,
            output_bytes=descriptor_bytes,
        )
        s2 = StepCost(
            instructions=(
                _S2_INSTRUCTIONS_BASE
                + _S2_INSTRUCTIONS_PER_OUTPUT_BIT * output_bits_per_word
            ) * word_count,
            memory_accesses=(
                _S2_ACCESSES_BASE
                + _S2_ACCESSES_PER_OUTPUT_BIT * output_bits_per_word
            ) * word_count,
            input_bytes=descriptor_bytes,
            output_bytes=output_size,
        )
        return {"s0": s0, "s1": s1, "s2": s2}
