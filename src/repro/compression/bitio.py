"""Bit-level stream I/O used by every codec in this package.

The paper's codecs (tcomp32, tdic32, lz4) emit byte-unaligned codes: a
5-bit length indicator followed by an n-bit payload, for example. This
module provides a :class:`BitWriter` that packs such codes most-significant
bit first into a growing byte buffer, and a :class:`BitReader` that
consumes them.

The MSB-first convention means a stream written as ``write(0b101, 3)``
followed by ``write(0b1, 1)`` produces the byte ``0b1011_0000``. The
convention is an internal detail; readers and writers from this module
always agree with each other.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError

__all__ = ["BitWriter", "BitReader", "bits_required", "pack_codes"]


def bits_required(value: int) -> int:
    """Number of bits needed to represent ``value`` as an unsigned int.

    Matches the paper's ``ceil(log2(number + 1))`` with the special case
    that zero needs one bit (Algorithm 2 line 4).

    >>> bits_required(0)
    1
    >>> bits_required(3)
    2
    >>> bits_required(4)
    3
    """
    if value < 0:
        raise ValueError(f"bits_required expects an unsigned value, got {value}")
    if value == 0:
        return 1
    return value.bit_length()


class BitWriter:
    """Accumulates bit codes MSB-first into a byte buffer.

    The writer keeps a small integer accumulator; bytes are flushed into a
    ``bytearray`` as they fill up. Call :meth:`getvalue` to obtain the
    padded byte string (the final partial byte, if any, is zero-padded on
    the right).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0  # bits currently held in the accumulator

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._bit_count

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far (alias of ``len``)."""
        return len(self)

    def write(self, value: int, width: int) -> None:
        """Append the ``width`` low bits of ``value``.

        ``value`` must fit in ``width`` bits; this is checked because a
        silent truncation here would corrupt the stream in a way that is
        very hard to debug downstream.
        """
        if width < 0:
            raise ValueError(f"bit width must be non-negative, got {width}")
        if width == 0:
            return
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accumulator = (self._accumulator << width) | value
        self._bit_count += width
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._buffer.append((self._accumulator >> self._bit_count) & 0xFF)
        # Keep the accumulator small: only the unflushed low bits remain.
        self._accumulator &= (1 << self._bit_count) - 1

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (still honoring any current bit offset)."""
        if self._bit_count == 0:
            self._buffer.extend(data)
        else:
            for byte in data:
                self.write(byte, 8)

    def align(self) -> None:
        """Zero-pad to the next byte boundary."""
        if self._bit_count:
            self.write(0, 8 - self._bit_count)

    def getvalue(self) -> bytes:
        """Return everything written so far as bytes (zero-padded)."""
        if self._bit_count == 0:
            return bytes(self._buffer)
        tail = (self._accumulator << (8 - self._bit_count)) & 0xFF
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Consumes MSB-first bit codes from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # absolute bit position

    @property
    def position(self) -> int:
        """Current absolute bit offset from the start of the stream."""
        return self._position

    @property
    def remaining_bits(self) -> int:
        """Number of unread bits left in the stream."""
        return 8 * len(self._data) - self._position

    def read(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned int."""
        if width < 0:
            raise ValueError(f"bit width must be non-negative, got {width}")
        if width == 0:
            return 0
        if width > self.remaining_bits:
            raise CorruptStreamError(
                f"attempted to read {width} bits with only "
                f"{self.remaining_bits} remaining"
            )
        result = 0
        needed = width
        while needed:
            byte_index, bit_offset = divmod(self._position, 8)
            available = 8 - bit_offset
            take = min(available, needed)
            byte = self._data[byte_index]
            chunk = (byte >> (available - take)) & ((1 << take) - 1)
            result = (result << take) | chunk
            self._position += take
            needed -= take
        return result

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes."""
        if self._position % 8 == 0:
            start = self._position // 8
            if start + count > len(self._data):
                raise CorruptStreamError(
                    f"attempted to read {count} bytes past end of stream"
                )
            self._position += 8 * count
            return self._data[start:start + count]
        return bytes(self.read(8) for _ in range(count))

    def align(self) -> None:
        """Skip forward to the next byte boundary."""
        remainder = self._position % 8
        if remainder:
            self._position += 8 - remainder


def pack_codes(chunks: "np.ndarray", widths: "np.ndarray") -> bytes:
    """Vectorized MSB-first packing of variable-width codes.

    ``chunks[i]`` holds code *i* in its low ``widths[i]`` bits; the
    result is byte-identical to writing each code through
    :class:`BitWriter`. Codes may be up to 56 bits wide (so that a code
    plus its up-to-7-bit intra-byte offset fits one 64-bit window, whose
    eight bytes are OR-ed into the output buffer).
    """
    chunks = np.ascontiguousarray(chunks, dtype=np.uint64)
    widths = np.ascontiguousarray(widths, dtype=np.uint64)
    if chunks.size == 0:
        return b""
    if chunks.shape != widths.shape:
        raise ValueError("chunks and widths must align")
    if int(widths.max()) > 56:
        raise ValueError("pack_codes supports codes up to 56 bits")
    ends = np.cumsum(widths)
    offsets = ends - widths
    total_bits = int(ends[-1])
    byte_start = (offsets >> np.uint64(3)).astype(np.int64)
    bit_in_byte = offsets & np.uint64(7)
    windows = chunks << (np.uint64(64) - bit_in_byte - widths)
    packed = np.zeros((total_bits + 7) // 8 + 8, dtype=np.uint8)
    for index in range(8):
        byte_values = (
            (windows >> np.uint64(56 - 8 * index)) & np.uint64(0xFF)
        ).astype(np.uint8)
        np.bitwise_or.at(packed, byte_start + index, byte_values)
    return packed[: (total_bits + 7) // 8].tobytes()
