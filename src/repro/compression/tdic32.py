"""tdic32 — stateful dictionary coding over 32-bit symbols (Algorithm 4).

The codec keeps a ``2**n``-entry hash table mapping hash slots to the last
32-bit symbol stored there. For every input word it computes the slot
(``s1``), reads-then-overwrites the slot (``s2``), and encodes either the
slot index (dictionary hit) or the literal word (miss) (``s3``); ``s4``
bit-packs the result.

Two deliberate deviations from the paper's pseudocode, both required for a
*decodable* stream:

* the hit/miss flag is written *before* the payload (the paper's
  ``(index << 1) | 1`` puts the flag in the last bit, which a decoder
  cannot see until it knows the width);
* a 32-bit word-count header frames the stream.

The decoder maintains an identical table, so hits resolve to the same
symbol the encoder saw.

State sharing (Fig 5): replicated ``s2`` tasks normally keep *private*
dictionaries (``shared_state=False``); the executor models a private table
per replica by letting each replica compress its own slice, which slightly
lowers the hit rate (the paper reports a 0.03 compression-ratio loss).
``shared_state=True`` marks the codec's state as shared so the runtime
serializes ``s2`` across replicas and charges lock traffic — the
configuration the paper shows to be 51 % more energy-hungry.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import CompressionResult, StatefulCompressor, StepCost
from repro.errors import CompressionError, CorruptStreamError
from repro.compression.bitio import BitReader, BitWriter, pack_codes

__all__ = ["Tdic32", "tdic32_hash"]

_WORD_BYTES = 4
_HEADER = struct.Struct("<I")
_LITERAL_BITS = 32
# Knuth multiplicative hashing, the same family lz4 uses.
_HASH_MULTIPLIER = 2654435761

# --- calibrated virtual-cost constants (per 32-bit word; see DESIGN.md).
# On a hit, s2 verifies and promotes the matched entry (an extra
# read-compare-write-back against the table), so both its instruction
# and access counts rise with the hit rate — with accesses rising
# faster, which drags s2's operational intensity down into the little
# core's in-order stall region as symbol duplication grows (Fig 13).
_S0_INSTRUCTIONS = 16.0
_S0_ACCESSES = 1.0
_S1_INSTRUCTIONS = 320.0
_S1_ACCESSES = 1.0
_S2_INSTRUCTIONS_BASE = 180.0
_S2_INSTRUCTIONS_PER_HIT = 180.0
_S2_ACCESSES_BASE = 1.6
_S2_ACCESSES_PER_HIT = 3.4
_S3_INSTRUCTIONS_BASE = 140.0
_S3_INSTRUCTIONS_PER_MISS = 260.0
_S3_ACCESSES_BASE = 1.3
_S3_ACCESSES_PER_MISS = 1.1
_S4_INSTRUCTIONS_BASE = 60.0
_S4_INSTRUCTIONS_PER_OUTPUT_BIT = 14.0
_S4_ACCESSES_BASE = 0.8
_S4_ACCESSES_PER_OUTPUT_BIT = 1.0 / 8.0
# inter-step descriptors: (slot, flag, span) records of ~5 bytes per word
_DESCRIPTOR_BYTES = 5


def tdic32_hash(number: int, index_bits: int) -> int:
    """Deterministic multiplicative hash of a 32-bit word into a slot."""
    return ((number * _HASH_MULTIPLIER) & 0xFFFFFFFF) >> (32 - index_bits)


class Tdic32(StatefulCompressor):
    """Stateful 32-bit dictionary stream compressor.

    Parameters
    ----------
    index_bits:
        log2 of the hash-table size (the paper's ``n``; default 12, a
        4096-entry table).
    shared_state:
        Declares whether replicated ``s2`` tasks share this dictionary.
        The codec's single-threaded behaviour is identical either way;
        the flag is consumed by the runtime's contention model (Fig 5).
    """

    name = "tdic32"

    def __init__(
        self,
        index_bits: int = 12,
        shared_state: bool = False,
        fast: bool = True,
    ) -> None:
        if not 1 <= index_bits <= 30:
            raise CompressionError(
                f"tdic32 index_bits must be in [1, 30], got {index_bits}"
            )
        self.index_bits = index_bits
        self.shared_state = shared_state
        self.fast = fast
        self._table = np.full(1 << index_bits, -1, dtype=np.int64)
        # The decoder mirrors the encoder's state batch for batch, so a
        # decoder instance must consume the same batch sequence the
        # encoder produced (batches may reference earlier batches).
        self._decoder_table = np.full(1 << index_bits, -1, dtype=np.int64)

    def reset(self) -> None:
        self._table.fill(-1)
        self._decoder_table.fill(-1)

    @property
    def state_entries(self) -> int:
        """Number of populated dictionary slots (for tests/diagnostics)."""
        return int((self._table >= 0).sum())

    def compress(self, data: bytes) -> CompressionResult:
        if len(data) % _WORD_BYTES:
            raise CompressionError(
                f"tdic32 requires input in 32-bit words, got {len(data)} bytes"
            )
        words = np.frombuffer(data, dtype=np.uint32)
        if self.fast:
            body, hits = self._vectorized_encode(words)
            payload = _HEADER.pack(len(words)) + body
        else:
            writer = BitWriter()
            writer.write_bytes(_HEADER.pack(len(words)))
            table = self._table
            index_bits = self.index_bits
            hits = 0
            for number in words.tolist():
                slot = tdic32_hash(number, index_bits)
                previous = table[slot]
                table[slot] = number
                if previous == number:
                    hits += 1
                    writer.write(1, 1)
                    writer.write(slot, index_bits)
                else:
                    writer.write(0, 1)
                    writer.write(number, _LITERAL_BITS)
            payload = writer.getvalue()

        word_count = len(words)
        hit_rate = hits / word_count if word_count else 0.0
        output_bits_per_word = (
            hit_rate * (1 + self.index_bits)
            + (1.0 - hit_rate) * (1 + _LITERAL_BITS)
        )
        counters = {
            "words": float(word_count),
            "hits": float(hits),
            "hit_rate": hit_rate,
            "output_bits_per_word": output_bits_per_word,
        }
        step_costs = self._step_costs(
            word_count, hit_rate, output_bits_per_word, len(data), len(payload)
        )
        return CompressionResult(
            payload=payload,
            input_size=len(data),
            step_costs=step_costs,
            counters=counters,
        )

    def _vectorized_encode(self, words: np.ndarray):
        """One-pass dictionary resolution plus vectorized packing.

        Hit/miss of every word is resolved without a sequential loop: a
        stable sort groups accesses by slot, so within a group each
        access sees the *previous group member's* word (original order
        is preserved by stability), and the first access per group sees
        the pre-batch table entry. The table then advances to each
        group's last word. Byte-identical to the reference loop.
        """
        if words.size == 0:
            return b"", 0
        index_bits = self.index_bits
        table = self._table
        w64 = words.astype(np.uint64)
        slots = (
            (w64 * np.uint64(_HASH_MULTIPLIER)) & np.uint64(0xFFFFFFFF)
        ) >> np.uint64(32 - index_bits)
        slots = slots.astype(np.int64)
        signed_words = words.astype(np.int64)

        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        sorted_words = signed_words[order]
        count = words.size
        hits_sorted = np.zeros(count, dtype=bool)
        if count > 1:
            same_slot = sorted_slots[1:] == sorted_slots[:-1]
            hits_sorted[1:] = same_slot & (
                sorted_words[1:] == sorted_words[:-1]
            )
        first_of_group = np.ones(count, dtype=bool)
        if count > 1:
            first_of_group[1:] = ~same_slot
        first_indices = np.nonzero(first_of_group)[0]
        hits_sorted[first_indices] = (
            table[sorted_slots[first_indices]]
            == sorted_words[first_indices]
        )
        last_of_group = np.ones(count, dtype=bool)
        if count > 1:
            last_of_group[:-1] = ~same_slot
        last_indices = np.nonzero(last_of_group)[0]
        table[sorted_slots[last_indices]] = sorted_words[last_indices]

        hits = np.empty(count, dtype=bool)
        hits[order] = hits_sorted

        widths = np.where(
            hits,
            np.uint64(1 + index_bits),
            np.uint64(1 + _LITERAL_BITS),
        ).astype(np.uint64)
        flag_payload = np.where(
            hits,
            (np.uint64(1) << np.uint64(index_bits)) | slots.astype(np.uint64),
            w64,
        ).astype(np.uint64)
        return pack_codes(flag_payload, widths), int(hits.sum())

    def decompress(self, payload: bytes) -> bytes:
        if len(payload) < _HEADER.size:
            raise CorruptStreamError("tdic32 stream shorter than its header")
        (word_count,) = _HEADER.unpack_from(payload)
        reader = BitReader(payload[_HEADER.size:])
        table = self._decoder_table
        words = np.empty(word_count, dtype=np.uint32)
        for i in range(word_count):
            if reader.read(1):
                slot = reader.read(self.index_bits)
                number = int(table[slot])
                if number < 0:
                    raise CorruptStreamError(
                        f"tdic32 hit references empty slot {slot} at word {i}"
                    )
            else:
                number = reader.read(_LITERAL_BITS)
                slot = tdic32_hash(number, self.index_bits)
            table[slot] = number
            words[i] = number
        return words.tobytes()

    def _step_costs(
        self,
        word_count: int,
        hit_rate: float,
        output_bits_per_word: float,
        input_size: int,
        output_size: int,
    ) -> dict:
        miss_rate = 1.0 - hit_rate
        descriptor_bytes = word_count * _DESCRIPTOR_BYTES
        s0 = StepCost(
            instructions=_S0_INSTRUCTIONS * word_count,
            memory_accesses=_S0_ACCESSES * word_count,
            input_bytes=input_size,
            output_bytes=input_size,
        )
        s1 = StepCost(
            instructions=_S1_INSTRUCTIONS * word_count,
            memory_accesses=_S1_ACCESSES * word_count,
            input_bytes=input_size,
            output_bytes=descriptor_bytes,
        )
        s2 = StepCost(
            instructions=(
                _S2_INSTRUCTIONS_BASE + _S2_INSTRUCTIONS_PER_HIT * hit_rate
            ) * word_count,
            memory_accesses=(
                _S2_ACCESSES_BASE + _S2_ACCESSES_PER_HIT * hit_rate
            ) * word_count,
            input_bytes=descriptor_bytes,
            output_bytes=descriptor_bytes,
        )
        s3 = StepCost(
            instructions=(
                _S3_INSTRUCTIONS_BASE + _S3_INSTRUCTIONS_PER_MISS * miss_rate
            ) * word_count,
            memory_accesses=(
                _S3_ACCESSES_BASE + _S3_ACCESSES_PER_MISS * miss_rate
            ) * word_count,
            input_bytes=descriptor_bytes,
            output_bytes=descriptor_bytes,
        )
        s4 = StepCost(
            instructions=(
                _S4_INSTRUCTIONS_BASE
                + _S4_INSTRUCTIONS_PER_OUTPUT_BIT * output_bits_per_word
            ) * word_count,
            memory_accesses=(
                _S4_ACCESSES_BASE
                + _S4_ACCESSES_PER_OUTPUT_BIT * output_bits_per_word
            ) * word_count,
            input_bytes=descriptor_bytes,
            output_bytes=output_size,
        )
        return {"s0": s0, "s1": s1, "s2": s2, "s3": s3, "s4": s4}
