"""Chrome trace-event / Perfetto JSON export.

The exported file follows the "JSON Array Format with metadata" of the
Trace Event Format spec: a top-level object with ``traceEvents`` (the
event array), ``displayTimeUnit`` and an ``otherData`` bag carrying the
run's :class:`~repro.obs.trace.TraceSummary`. Open it at
https://ui.perfetto.dev or ``chrome://tracing``.

Mapping choices:

* event timestamps are simulated microseconds, which is exactly the
  unit the format expects (``ts``/``dur`` are µs);
* each repetition is one *process* (``pid``), named via ``M`` metadata
  events, so repeated measurements stack as separate process groups;
* each core is one *thread* (``tid``) named from the board spec
  (``core 4 A72 (big)``); synthetic tracks (governor, OS scheduler,
  runtime) get names too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import (
    TID_GOVERNOR,
    TID_OS_SCHED,
    TID_RUNTIME,
    TraceRecorder,
)

__all__ = ["chrome_trace", "write_chrome_trace"]

_SYNTHETIC_TRACKS = {
    TID_GOVERNOR: "dvfs governor",
    TID_OS_SCHED: "os scheduler",
    TID_RUNTIME: "runtime",
}


def _json_safe(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace(recorder: TraceRecorder, board=None) -> Dict[str, Any]:
    """Render a recorder as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    pids = sorted({event.pid for event in recorder.events}) or [0]
    tids = sorted({event.tid for event in recorder.events})

    thread_names = dict(_SYNTHETIC_TRACKS)
    if board is not None:
        for core in board.cores:
            kind = "big" if core.is_big else "little"
            thread_names[core.core_id] = (
                f"core {core.core_id} {core.model} ({kind})"
            )

    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repetition {pid}"},
            }
        )
        for tid in tids:
            name = thread_names.get(tid, f"track {tid}")
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    for event in recorder.events:
        record: Dict[str, Any] = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts_us,
            "pid": event.pid,
            "tid": event.tid,
            "cat": event.category,
        }
        if event.phase == "X":
            record["dur"] = event.dur_us
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.phase == "C":
            # Counter events draw their series from args.
            args = dict(event.args)
            record["args"] = {"value": _json_safe(args.get("value", 0))}
        elif event.args:
            record["args"] = {
                key: _json_safe(value) for key, value in event.args
            }
        events.append(record)

    summary = recorder.summary()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "context_switches_per_mb": summary.context_switches_per_mb,
            "migrations": summary.migrations,
            "dvfs_transitions": summary.dvfs_transitions,
            "queue_depth_highwater": summary.queue_depth_highwater,
            "repetitions": summary.repetitions,
            "bytes_processed": summary.bytes_processed,
        },
    }


def write_chrome_trace(
    recorder: TraceRecorder, path: str, board=None, indent: Optional[int] = None
) -> str:
    """Write the recorder to ``path`` as Chrome trace JSON; returns path."""
    payload = chrome_trace(recorder, board=board)
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=indent)
        sink.write("\n")
    return path
