"""Session health reports built from the residual ledger.

A :class:`SessionHealth` is the operator-facing summary of one windowed
session: per window, the measured-vs-predicted latency and energy, the
attributed residual, and — when a component's anomaly score clears the
threshold — a named culprit (:class:`Attribution`): a degraded
interconnect path, a retry-heavy stage, or an underperforming core.

The report round-trips through JSON (``to_json``/``from_json``) and is
what :mod:`repro.obs.check` validates and :mod:`repro.obs.live` streams;
:mod:`repro.analysis.verify` enforces its arithmetic (HLT001-003).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.residuals import WindowResidual

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "Attribution",
    "WindowHealth",
    "SessionHealth",
    "build_window_health",
]

HEALTH_SCHEMA_VERSION = 1

#: anomaly score above which a window's top component is named
DEFAULT_ANOMALY_THRESHOLD = 3.0


@dataclass(frozen=True)
class Attribution:
    """The component a window's residual is pinned on."""

    #: "path" (degraded link), "retry" (retry-heavy stage), "core"
    kind: str
    #: path class ("c1"), stage index ("2"), or core id ("4")
    key: str
    score: float
    #: residual the component carries, µs/byte
    residual_us_per_byte: float
    #: score separation from the runner-up, in (0, 1]
    confidence: float

    def describe(self) -> str:
        if self.kind == "path":
            return f"degraded link {self.key}"
        if self.kind == "retry":
            return f"retry-heavy stage s{self.key}"
        return f"underperforming core {self.key}"


@dataclass(frozen=True)
class WindowHealth:
    """One window's health record (one NDJSON line when streamed)."""

    window_index: int
    measured_latency_us_per_byte: float
    predicted_latency_us_per_byte: float
    latency_residual_us_per_byte: float
    measured_energy_uj_per_byte: float
    predicted_energy_uj_per_byte: float
    energy_residual_uj_per_byte: float
    #: per-component residual slices, (kind, key, residual, score)
    components: Tuple[Tuple[str, str, float, float], ...]
    unattributed_us_per_byte: float
    #: window violated the latency SLO on a steady batch
    violated: bool
    anomalous: bool
    attribution: Optional[Attribution]

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "window_index": self.window_index,
            "measured_latency_us_per_byte": self.measured_latency_us_per_byte,
            "predicted_latency_us_per_byte": self.predicted_latency_us_per_byte,
            "latency_residual_us_per_byte": self.latency_residual_us_per_byte,
            "measured_energy_uj_per_byte": self.measured_energy_uj_per_byte,
            "predicted_energy_uj_per_byte": self.predicted_energy_uj_per_byte,
            "energy_residual_uj_per_byte": self.energy_residual_uj_per_byte,
            "components": [
                {"kind": kind, "key": key, "residual_us_per_byte": residual,
                 "score": score}
                for kind, key, residual, score in self.components
            ],
            "unattributed_us_per_byte": self.unattributed_us_per_byte,
            "violated": self.violated,
            "anomalous": self.anomalous,
            "attribution": None,
        }
        if self.attribution is not None:
            record["attribution"] = {
                "kind": self.attribution.kind,
                "key": self.attribution.key,
                "score": self.attribution.score,
                "residual_us_per_byte":
                    self.attribution.residual_us_per_byte,
                "confidence": self.attribution.confidence,
            }
        return record

    @staticmethod
    def from_record(record: Dict[str, object]) -> "WindowHealth":
        attribution = None
        raw = record.get("attribution")
        if raw is not None:
            attribution = Attribution(
                kind=str(raw["kind"]),
                key=str(raw["key"]),
                score=float(raw["score"]),
                residual_us_per_byte=float(raw["residual_us_per_byte"]),
                confidence=float(raw["confidence"]),
            )
        return WindowHealth(
            window_index=int(record["window_index"]),
            measured_latency_us_per_byte=float(
                record["measured_latency_us_per_byte"]),
            predicted_latency_us_per_byte=float(
                record["predicted_latency_us_per_byte"]),
            latency_residual_us_per_byte=float(
                record["latency_residual_us_per_byte"]),
            measured_energy_uj_per_byte=float(
                record["measured_energy_uj_per_byte"]),
            predicted_energy_uj_per_byte=float(
                record["predicted_energy_uj_per_byte"]),
            energy_residual_uj_per_byte=float(
                record["energy_residual_uj_per_byte"]),
            components=tuple(
                (str(c["kind"]), str(c["key"]),
                 float(c["residual_us_per_byte"]), float(c["score"]))
                for c in record["components"]
            ),
            unattributed_us_per_byte=float(
                record["unattributed_us_per_byte"]),
            violated=bool(record["violated"]),
            anomalous=bool(record["anomalous"]),
            attribution=attribution,
        )


def build_window_health(
    residual: WindowResidual,
    violated: bool,
    threshold: float = DEFAULT_ANOMALY_THRESHOLD,
) -> WindowHealth:
    """Fold one ledger window into a health record.

    The window is *anomalous* when its top-scoring component clears
    ``threshold``; the attribution's confidence is the relative score
    gap to the runner-up (1.0 when there is none), so two components
    racing each other read as low-confidence.
    """
    ranked = sorted(
        residual.components, key=lambda c: c.score, reverse=True
    )
    attribution = None
    anomalous = bool(ranked) and ranked[0].score >= threshold
    if anomalous:
        top = ranked[0]
        runner_up = ranked[1].score if len(ranked) > 1 else 0.0
        confidence = 1.0 - max(runner_up, 0.0) / top.score
        attribution = Attribution(
            kind=top.kind,
            key=top.key,
            score=top.score,
            residual_us_per_byte=top.residual_us_per_byte,
            confidence=max(min(confidence, 1.0), 0.0),
        )
    return WindowHealth(
        window_index=residual.window_index,
        measured_latency_us_per_byte=residual.measured_latency_us_per_byte,
        predicted_latency_us_per_byte=residual.predicted_latency_us_per_byte,
        latency_residual_us_per_byte=residual.latency_residual_us_per_byte,
        measured_energy_uj_per_byte=residual.measured_energy_uj_per_byte,
        predicted_energy_uj_per_byte=residual.predicted_energy_uj_per_byte,
        energy_residual_uj_per_byte=residual.energy_residual_uj_per_byte,
        components=tuple(
            (c.kind, c.key, c.residual_us_per_byte, c.score)
            for c in residual.components
        ),
        unattributed_us_per_byte=residual.unattributed_us_per_byte,
        violated=violated,
        anomalous=anomalous,
        attribution=attribution,
    )


@dataclass(frozen=True)
class SessionHealth:
    """Whole-session health report: the windows plus identity."""

    label: str
    board: str
    latency_constraint_us_per_byte: float
    windows: Tuple[WindowHealth, ...]
    schema_version: int = HEALTH_SCHEMA_VERSION

    def dominant(self) -> Optional[Attribution]:
        """The highest-scoring attribution across all windows."""
        best: Optional[Attribution] = None
        for window in self.windows:
            a = window.attribution
            if a is not None and (best is None or a.score > best.score):
                best = a
        return best

    def anomalous_windows(self) -> Tuple[WindowHealth, ...]:
        return tuple(w for w in self.windows if w.anomalous)

    def to_json(self) -> str:
        return json.dumps({
            "schema_version": self.schema_version,
            "label": self.label,
            "board": self.board,
            "latency_constraint_us_per_byte":
                self.latency_constraint_us_per_byte,
            "windows": [w.to_record() for w in self.windows],
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "SessionHealth":
        payload = json.loads(text)
        return SessionHealth(
            label=str(payload["label"]),
            board=str(payload["board"]),
            latency_constraint_us_per_byte=float(
                payload["latency_constraint_us_per_byte"]),
            windows=tuple(
                WindowHealth.from_record(w) for w in payload["windows"]
            ),
            schema_version=int(payload["schema_version"]),
        )

    def finite(self) -> bool:
        """True when every numeric field in the report is finite."""
        for window in self.windows:
            values: List[float] = [
                window.measured_latency_us_per_byte,
                window.predicted_latency_us_per_byte,
                window.latency_residual_us_per_byte,
                window.measured_energy_uj_per_byte,
                window.predicted_energy_uj_per_byte,
                window.energy_residual_uj_per_byte,
                window.unattributed_us_per_byte,
            ]
            for _kind, _key, residual, score in window.components:
                values.append(residual)
                values.append(score)
            if window.attribution is not None:
                values.extend([
                    window.attribution.score,
                    window.attribution.residual_us_per_byte,
                    window.attribution.confidence,
                ])
            if not all(math.isfinite(v) for v in values):
                return False
        return math.isfinite(self.latency_constraint_us_per_byte)
