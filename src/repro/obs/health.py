"""Session and fleet health reports.

A :class:`SessionHealth` (schema v1) is the operator-facing summary of
one windowed session: per window, the measured-vs-predicted latency and
energy, the attributed residual, and — when a component's anomaly score
clears the threshold — a named culprit (:class:`Attribution`): a
degraded interconnect path, a retry-heavy stage, or an underperforming
core.

A :class:`FleetHealth` (schema v2) is the fleet gateway's analogue: per
window, the state of every board (liveness, breaker state, core load)
and every tenant (placement, SLO compliance, energy), plus the ordered
event log (admissions, rejections, sheds, failovers, breaker
transitions, board faults) that makes the run replayable.

Both reports round-trip through JSON (``to_json``/``from_json``) and are
what :mod:`repro.obs.check` validates and :mod:`repro.obs.live` streams;
:mod:`repro.analysis.verify` enforces their invariants (HLT001-003 for
v1, FLT001-005 for v2 — dispatched on ``schema_version``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.residuals import WindowResidual

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "FLEET_HEALTH_SCHEMA_VERSION",
    "Attribution",
    "WindowHealth",
    "SessionHealth",
    "build_window_health",
    "FleetBoardHealth",
    "FleetTenantHealth",
    "FleetEvent",
    "FleetWindowHealth",
    "FleetHealth",
]

HEALTH_SCHEMA_VERSION = 1
FLEET_HEALTH_SCHEMA_VERSION = 2

#: anomaly score above which a window's top component is named
DEFAULT_ANOMALY_THRESHOLD = 3.0


@dataclass(frozen=True)
class Attribution:
    """The component a window's residual is pinned on."""

    #: "path" (degraded link), "retry" (retry-heavy stage), "core"
    kind: str
    #: path class ("c1"), stage index ("2"), or core id ("4")
    key: str
    score: float
    #: residual the component carries, µs/byte
    residual_us_per_byte: float
    #: score separation from the runner-up, in (0, 1]
    confidence: float

    def describe(self) -> str:
        if self.kind == "path":
            return f"degraded link {self.key}"
        if self.kind == "retry":
            return f"retry-heavy stage s{self.key}"
        return f"underperforming core {self.key}"


@dataclass(frozen=True)
class WindowHealth:
    """One window's health record (one NDJSON line when streamed)."""

    window_index: int
    measured_latency_us_per_byte: float
    predicted_latency_us_per_byte: float
    latency_residual_us_per_byte: float
    measured_energy_uj_per_byte: float
    predicted_energy_uj_per_byte: float
    energy_residual_uj_per_byte: float
    #: per-component residual slices, (kind, key, residual, score)
    components: Tuple[Tuple[str, str, float, float], ...]
    unattributed_us_per_byte: float
    #: window violated the latency SLO on a steady batch
    violated: bool
    anomalous: bool
    attribution: Optional[Attribution]

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "window_index": self.window_index,
            "measured_latency_us_per_byte": self.measured_latency_us_per_byte,
            "predicted_latency_us_per_byte": self.predicted_latency_us_per_byte,
            "latency_residual_us_per_byte": self.latency_residual_us_per_byte,
            "measured_energy_uj_per_byte": self.measured_energy_uj_per_byte,
            "predicted_energy_uj_per_byte": self.predicted_energy_uj_per_byte,
            "energy_residual_uj_per_byte": self.energy_residual_uj_per_byte,
            "components": [
                {"kind": kind, "key": key, "residual_us_per_byte": residual,
                 "score": score}
                for kind, key, residual, score in self.components
            ],
            "unattributed_us_per_byte": self.unattributed_us_per_byte,
            "violated": self.violated,
            "anomalous": self.anomalous,
            "attribution": None,
        }
        if self.attribution is not None:
            record["attribution"] = {
                "kind": self.attribution.kind,
                "key": self.attribution.key,
                "score": self.attribution.score,
                "residual_us_per_byte":
                    self.attribution.residual_us_per_byte,
                "confidence": self.attribution.confidence,
            }
        return record

    @staticmethod
    def from_record(record: Dict[str, object]) -> "WindowHealth":
        attribution = None
        raw = record.get("attribution")
        if raw is not None:
            attribution = Attribution(
                kind=str(raw["kind"]),
                key=str(raw["key"]),
                score=float(raw["score"]),
                residual_us_per_byte=float(raw["residual_us_per_byte"]),
                confidence=float(raw["confidence"]),
            )
        return WindowHealth(
            window_index=int(record["window_index"]),
            measured_latency_us_per_byte=float(
                record["measured_latency_us_per_byte"]),
            predicted_latency_us_per_byte=float(
                record["predicted_latency_us_per_byte"]),
            latency_residual_us_per_byte=float(
                record["latency_residual_us_per_byte"]),
            measured_energy_uj_per_byte=float(
                record["measured_energy_uj_per_byte"]),
            predicted_energy_uj_per_byte=float(
                record["predicted_energy_uj_per_byte"]),
            energy_residual_uj_per_byte=float(
                record["energy_residual_uj_per_byte"]),
            components=tuple(
                (str(c["kind"]), str(c["key"]),
                 float(c["residual_us_per_byte"]), float(c["score"]))
                for c in record["components"]
            ),
            unattributed_us_per_byte=float(
                record["unattributed_us_per_byte"]),
            violated=bool(record["violated"]),
            anomalous=bool(record["anomalous"]),
            attribution=attribution,
        )


def build_window_health(
    residual: WindowResidual,
    violated: bool,
    threshold: float = DEFAULT_ANOMALY_THRESHOLD,
) -> WindowHealth:
    """Fold one ledger window into a health record.

    The window is *anomalous* when its top-scoring component clears
    ``threshold``; the attribution's confidence is the relative score
    gap to the runner-up (1.0 when there is none), so two components
    racing each other read as low-confidence.
    """
    ranked = sorted(
        residual.components, key=lambda c: c.score, reverse=True
    )
    attribution = None
    anomalous = bool(ranked) and ranked[0].score >= threshold
    if anomalous:
        top = ranked[0]
        runner_up = ranked[1].score if len(ranked) > 1 else 0.0
        confidence = 1.0 - max(runner_up, 0.0) / top.score
        attribution = Attribution(
            kind=top.kind,
            key=top.key,
            score=top.score,
            residual_us_per_byte=top.residual_us_per_byte,
            confidence=max(min(confidence, 1.0), 0.0),
        )
    return WindowHealth(
        window_index=residual.window_index,
        measured_latency_us_per_byte=residual.measured_latency_us_per_byte,
        predicted_latency_us_per_byte=residual.predicted_latency_us_per_byte,
        latency_residual_us_per_byte=residual.latency_residual_us_per_byte,
        measured_energy_uj_per_byte=residual.measured_energy_uj_per_byte,
        predicted_energy_uj_per_byte=residual.predicted_energy_uj_per_byte,
        energy_residual_uj_per_byte=residual.energy_residual_uj_per_byte,
        components=tuple(
            (c.kind, c.key, c.residual_us_per_byte, c.score)
            for c in residual.components
        ),
        unattributed_us_per_byte=residual.unattributed_us_per_byte,
        violated=violated,
        anomalous=anomalous,
        attribution=attribution,
    )


@dataclass(frozen=True)
class SessionHealth:
    """Whole-session health report: the windows plus identity."""

    label: str
    board: str
    latency_constraint_us_per_byte: float
    windows: Tuple[WindowHealth, ...]
    schema_version: int = HEALTH_SCHEMA_VERSION

    def dominant(self) -> Optional[Attribution]:
        """The highest-scoring attribution across all windows."""
        best: Optional[Attribution] = None
        for window in self.windows:
            a = window.attribution
            if a is not None and (best is None or a.score > best.score):
                best = a
        return best

    def anomalous_windows(self) -> Tuple[WindowHealth, ...]:
        return tuple(w for w in self.windows if w.anomalous)

    def to_json(self) -> str:
        return json.dumps({
            "schema_version": self.schema_version,
            "label": self.label,
            "board": self.board,
            "latency_constraint_us_per_byte":
                self.latency_constraint_us_per_byte,
            "windows": [w.to_record() for w in self.windows],
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "SessionHealth":
        payload = json.loads(text)
        return SessionHealth(
            label=str(payload["label"]),
            board=str(payload["board"]),
            latency_constraint_us_per_byte=float(
                payload["latency_constraint_us_per_byte"]),
            windows=tuple(
                WindowHealth.from_record(w) for w in payload["windows"]
            ),
            schema_version=int(payload["schema_version"]),
        )

    def finite(self) -> bool:
        """True when every numeric field in the report is finite."""
        for window in self.windows:
            values: List[float] = [
                window.measured_latency_us_per_byte,
                window.predicted_latency_us_per_byte,
                window.latency_residual_us_per_byte,
                window.measured_energy_uj_per_byte,
                window.predicted_energy_uj_per_byte,
                window.energy_residual_uj_per_byte,
                window.unattributed_us_per_byte,
            ]
            for _kind, _key, residual, score in window.components:
                values.append(residual)
                values.append(score)
            if window.attribution is not None:
                values.extend([
                    window.attribution.score,
                    window.attribution.residual_us_per_byte,
                    window.attribution.confidence,
                ])
            if not all(math.isfinite(v) for v in values):
                return False
        return math.isfinite(self.latency_constraint_us_per_byte)


# -- fleet health (schema v2) -------------------------------------------------


@dataclass(frozen=True)
class FleetBoardHealth:
    """One board's state at the end of one gateway window."""

    board_index: int
    name: str
    kind: str
    alive: bool
    #: circuit-breaker state: "closed", "open", or "half-open"
    breaker_state: str
    consecutive_failures: int
    #: sustained DVFS cap in force, or None at nominal frequency
    throttled_mhz: Optional[float]
    #: utilization of the most-loaded core (busy-µs / window period)
    max_core_load: float
    tenants_running: int
    #: window RPCs against this board that failed (after retries)
    rpc_failures: int

    def to_record(self) -> Dict[str, object]:
        return {
            "board_index": self.board_index,
            "name": self.name,
            "kind": self.kind,
            "alive": self.alive,
            "breaker_state": self.breaker_state,
            "consecutive_failures": self.consecutive_failures,
            "throttled_mhz": self.throttled_mhz,
            "max_core_load": self.max_core_load,
            "tenants_running": self.tenants_running,
            "rpc_failures": self.rpc_failures,
        }

    @staticmethod
    def from_record(record: Dict[str, object]) -> "FleetBoardHealth":
        throttled = record["throttled_mhz"]
        return FleetBoardHealth(
            board_index=int(record["board_index"]),
            name=str(record["name"]),
            kind=str(record["kind"]),
            alive=bool(record["alive"]),
            breaker_state=str(record["breaker_state"]),
            consecutive_failures=int(record["consecutive_failures"]),
            throttled_mhz=None if throttled is None else float(throttled),
            max_core_load=float(record["max_core_load"]),
            tenants_running=int(record["tenants_running"]),
            rpc_failures=int(record["rpc_failures"]),
        )


@dataclass(frozen=True)
class FleetTenantHealth:
    """One tenant's state at the end of one gateway window."""

    tenant_id: int
    name: str
    priority: int
    #: "running", "queued" (awaiting admission/re-admission),
    #: "stranded" (board dead, no failover arm), or "rejected" (final)
    state: str
    #: hosting board while running/stranded, else None
    board_index: Optional[int]
    l_set_us_per_byte: float
    modeled_latency_us_per_byte: float
    #: synthesized measurement (0.0 while not running)
    measured_latency_us_per_byte: float
    modeled_energy_uj_per_byte: float
    violated: bool

    def to_record(self) -> Dict[str, object]:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "priority": self.priority,
            "state": self.state,
            "board_index": self.board_index,
            "l_set_us_per_byte": self.l_set_us_per_byte,
            "modeled_latency_us_per_byte": self.modeled_latency_us_per_byte,
            "measured_latency_us_per_byte": self.measured_latency_us_per_byte,
            "modeled_energy_uj_per_byte": self.modeled_energy_uj_per_byte,
            "violated": self.violated,
        }

    @staticmethod
    def from_record(record: Dict[str, object]) -> "FleetTenantHealth":
        board = record["board_index"]
        return FleetTenantHealth(
            tenant_id=int(record["tenant_id"]),
            name=str(record["name"]),
            priority=int(record["priority"]),
            state=str(record["state"]),
            board_index=None if board is None else int(board),
            l_set_us_per_byte=float(record["l_set_us_per_byte"]),
            modeled_latency_us_per_byte=float(
                record["modeled_latency_us_per_byte"]),
            measured_latency_us_per_byte=float(
                record["measured_latency_us_per_byte"]),
            modeled_energy_uj_per_byte=float(
                record["modeled_energy_uj_per_byte"]),
            violated=bool(record["violated"]),
        )


@dataclass(frozen=True)
class FleetEvent:
    """One entry of the gateway's ordered event log."""

    #: running sequence number — total order across the whole run
    sequence: int
    window_index: int
    #: "admit", "reject", "queue", "retry", "shed", "failover",
    #: "breaker", "board-crash", "board-reboot", "board-throttle",
    #: "rpc-failure"
    kind: str
    tenant_id: Optional[int]
    board_index: Optional[int]
    detail: str

    def to_record(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "window_index": self.window_index,
            "kind": self.kind,
            "tenant_id": self.tenant_id,
            "board_index": self.board_index,
            "detail": self.detail,
        }

    @staticmethod
    def from_record(record: Dict[str, object]) -> "FleetEvent":
        tenant = record["tenant_id"]
        board = record["board_index"]
        return FleetEvent(
            sequence=int(record["sequence"]),
            window_index=int(record["window_index"]),
            kind=str(record["kind"]),
            tenant_id=None if tenant is None else int(tenant),
            board_index=None if board is None else int(board),
            detail=str(record["detail"]),
        )


@dataclass(frozen=True)
class FleetWindowHealth:
    """One gateway window: every board and tenant, plus aggregates."""

    window_index: int
    boards: Tuple[FleetBoardHealth, ...]
    tenants: Tuple[FleetTenantHealth, ...]
    #: tenants whose measured latency breached their l_set (stranded
    #: tenants count — their stream is down, the SLO is being violated)
    violations: int
    #: modeled fleet energy spent this window, µJ
    energy_uj: float

    def to_record(self) -> Dict[str, object]:
        return {
            "window_index": self.window_index,
            "boards": [b.to_record() for b in self.boards],
            "tenants": [t.to_record() for t in self.tenants],
            "violations": self.violations,
            "energy_uj": self.energy_uj,
        }

    @staticmethod
    def from_record(record: Dict[str, object]) -> "FleetWindowHealth":
        return FleetWindowHealth(
            window_index=int(record["window_index"]),
            boards=tuple(
                FleetBoardHealth.from_record(b) for b in record["boards"]
            ),
            tenants=tuple(
                FleetTenantHealth.from_record(t) for t in record["tenants"]
            ),
            violations=int(record["violations"]),
            energy_uj=float(record["energy_uj"]),
        )


@dataclass(frozen=True)
class FleetHealth:
    """Whole-run fleet health report (schema v2)."""

    label: str
    #: scenario arm: "static", "shed", or "shed-failover"
    arm: str
    seed: int
    board_count: int
    tenant_count: int
    #: fleet-wide energy budget the admission controller enforced, µJ
    #: per window
    energy_budget_uj_per_window: float
    windows: Tuple[FleetWindowHealth, ...]
    events: Tuple[FleetEvent, ...]
    schema_version: int = FLEET_HEALTH_SCHEMA_VERSION

    # -- aggregates ----------------------------------------------------------

    def total_violations(self) -> int:
        return sum(w.violations for w in self.windows)

    def violations_after(self, window_index: int) -> int:
        """SLO violations in windows ``>= window_index`` (steady state
        after warmup, or post-fault accounting)."""
        return sum(
            w.violations for w in self.windows
            if w.window_index >= window_index
        )

    def admitted_tenants(self) -> Tuple[int, ...]:
        """Tenant ids that were admitted at least once, in id order."""
        admitted = {
            e.tenant_id for e in self.events
            if e.kind == "admit" and e.tenant_id is not None
        }
        return tuple(sorted(admitted))

    def events_of(self, kind: str) -> Tuple[FleetEvent, ...]:
        return tuple(e for e in self.events if e.kind == kind)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "schema_version": self.schema_version,
            "label": self.label,
            "arm": self.arm,
            "seed": self.seed,
            "board_count": self.board_count,
            "tenant_count": self.tenant_count,
            "energy_budget_uj_per_window":
                self.energy_budget_uj_per_window,
            "windows": [w.to_record() for w in self.windows],
            "events": [e.to_record() for e in self.events],
        }, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FleetHealth":
        payload = json.loads(text)
        return FleetHealth(
            label=str(payload["label"]),
            arm=str(payload["arm"]),
            seed=int(payload["seed"]),
            board_count=int(payload["board_count"]),
            tenant_count=int(payload["tenant_count"]),
            energy_budget_uj_per_window=float(
                payload["energy_budget_uj_per_window"]),
            windows=tuple(
                FleetWindowHealth.from_record(w) for w in payload["windows"]
            ),
            events=tuple(
                FleetEvent.from_record(e) for e in payload["events"]
            ),
            schema_version=int(payload["schema_version"]),
        )

    def finite(self) -> bool:
        """True when every numeric field in the report is finite."""
        values: List[float] = [self.energy_budget_uj_per_window]
        for window in self.windows:
            values.append(window.energy_uj)
            for board in window.boards:
                values.append(board.max_core_load)
                if board.throttled_mhz is not None:
                    values.append(board.throttled_mhz)
            for tenant in window.tenants:
                values.extend([
                    tenant.l_set_us_per_byte,
                    tenant.modeled_latency_us_per_byte,
                    tenant.measured_latency_us_per_byte,
                    tenant.modeled_energy_uj_per_byte,
                ])
        return all(math.isfinite(v) for v in values)
