"""Process-wide metrics registry: wall-clock timers and counters.

Where :mod:`repro.obs.trace` observes *simulated* time, the registry
observes *real* time and work volume — where a bench invocation actually
spends its seconds (profiling vs DES simulation vs cache I/O vs plan
search) and how much the scheduler search expands and prunes. The
instrumented hot paths (:meth:`ResultCache.get`/``put``,
:meth:`Harness.profile`, the executor run inside :meth:`Harness.run`,
:meth:`Scheduler.schedule`) feed the shared :data:`REGISTRY`;
``benchmarks/bench_harness_scaling.py`` snapshots it around each phase
to write the per-phase breakdown into ``BENCH_harness.json``.

The registry is intentionally tiny: counters are plain floats, timers
accumulate ``(count, total, min, max)``. Everything is guarded by one
lock so harness threads can share it; parallel *worker processes* have
their own registry (their time shows up in the parent only as grid
wall-clock — the JSON records this honestly).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

__all__ = ["MetricsRegistry", "REGISTRY", "diff_snapshots", "quantile"]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile with total edge-case coverage.

    The registry's percentile queries historically assumed callers
    guarded against short series; this helper owns the edges instead:
    an empty series is defined as 0.0 (a percentile of nothing is no
    time at all), a single sample is its own every-percentile, and
    ``q`` is clamped into [0, 1] rather than raising on float fuzz like
    ``1.0000000000000002`` from upstream arithmetic.
    """
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    q = min(max(q, 0.0), 1.0)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class MetricsRegistry:
    """Named counters and wall-clock timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        # name -> [count, total_s, min_s, max_s]
        self._timers: Dict[str, list] = {}
        # name -> ordered samples (percentile queries)
        self._series: Dict[str, List[float]] = {}

    # -- counters ------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    # -- timers --------------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [1, seconds, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                entry[2] = min(entry[2], seconds)
                entry[3] = max(entry[3], seconds)

    @contextmanager
    def timer(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def timer_total(self, name: str) -> float:
        with self._lock:
            entry = self._timers.get(name)
            return entry[1] if entry else 0.0

    # -- series --------------------------------------------------------------

    def record(self, name: str, value: float) -> None:
        """Append one sample to a named series (for percentile queries)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                self._series[name] = [float(value)]
            else:
                series.append(float(value))

    def series(self, name: str) -> List[float]:
        with self._lock:
            return list(self._series.get(name, ()))

    def percentile(self, name: str, q: float) -> float:
        """Quantile ``q`` in [0, 1] of a recorded series.

        Well-defined on every input: an unknown or empty series returns
        0.0 and a single-sample series returns that sample (see
        :func:`quantile`), so callers need no length guards.
        """
        with self._lock:
            samples = self._series.get(name, ())
            return quantile(samples, q)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Copy of all metrics: ``{"counters": {...}, "timers": {...}}``.

        Timer entries are dicts with ``count``/``total_s``/``min_s``/
        ``max_s``. Snapshots are plain data, safe to JSON-serialize and
        to diff with :func:`diff_snapshots`.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "count": entry[0],
                        "total_s": entry[1],
                        "min_s": entry[2],
                        "max_s": entry[3],
                    }
                    for name, entry in self._timers.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._series.clear()


def diff_snapshots(
    before: Optional[Dict[str, Dict]], after: Dict[str, Dict]
) -> Dict[str, Dict]:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters subtract; timers subtract ``count``/``total_s`` (min/max are
    dropped — they are not meaningful for an interval).
    """
    before = before or {"counters": {}, "timers": {}}
    counters = {}
    for name, value in after["counters"].items():
        delta = value - before["counters"].get(name, 0.0)
        if delta:
            counters[name] = delta
    timers = {}
    for name, entry in after["timers"].items():
        previous = before["timers"].get(name, {"count": 0, "total_s": 0.0})
        count = entry["count"] - previous["count"]
        total = entry["total_s"] - previous["total_s"]
        if count:
            timers[name] = {"count": count, "total_s": total}
    return {"counters": counters, "timers": timers}


#: the shared default registry (what the instrumented code paths use)
REGISTRY = MetricsRegistry()
