"""Validate an exported trace file against the trace-event schema.

Dependency-free checker for the Chrome trace-event JSON written by
:func:`repro.obs.export.write_chrome_trace` — CI runs it on the traced
smoke cell before uploading the trace as an artifact::

    python -m repro.obs.check trace.json

Exit status 0 means the file is a loadable trace with well-formed
events; 1 lists every violation found. The checks come in two layers:

* **schema** — what Perfetto and ``chrome://tracing`` require to render
  the file: known phases, numeric non-negative timestamps/durations,
  integer pid/tid, args of the right shape per phase;
* **stream invariants** — delegated to
  :func:`repro.analysis.verify.verify_chrome_payload` (itself
  stdlib-only, so this module stays dependency-free) so the two tools
  cannot drift: per-track non-decreasing timestamps, monotone energy
  counters, non-overlapping spans (``TRC001``-``TRC007``). Only
  error-severity findings fail validation; warnings (e.g. ``TRC004``
  same-timestamp counter pairs) are the verifier CLI's business.
"""

from __future__ import annotations

import json
import numbers
import sys
from typing import Any, List

from repro.analysis.verify import verify_chrome_payload

__all__ = ["validate_trace", "main"]

#: phases the exporter emits (subset of the full trace-event spec)
_KNOWN_PHASES = {"X", "i", "C", "M"}
_METADATA_NAMES = {"process_name", "thread_name"}


def _check_event(index: int, event: Any, problems: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        problems.append(f"{where}: not an object")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: missing/empty 'name'")
    phase = event.get("ph")
    if phase not in _KNOWN_PHASES:
        problems.append(f"{where}: unknown phase {phase!r}")
        return
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            problems.append(f"{where}: '{key}' must be an integer")
    if phase == "M":
        if name not in _METADATA_NAMES:
            problems.append(f"{where}: unexpected metadata event {name!r}")
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            problems.append(f"{where}: metadata needs args.name string")
        return
    ts = event.get("ts")
    if not isinstance(ts, numbers.Real) or isinstance(ts, bool) or ts < 0:
        problems.append(f"{where}: 'ts' must be a non-negative number")
    if phase == "X":
        dur = event.get("dur")
        if (
            not isinstance(dur, numbers.Real)
            or isinstance(dur, bool)
            or dur < 0
        ):
            problems.append(f"{where}: complete event needs 'dur' >= 0")
    if phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            problems.append(f"{where}: counter event needs non-empty args")
        elif not all(
            isinstance(value, numbers.Real) and not isinstance(value, bool)
            for value in args.values()
        ):
            problems.append(f"{where}: counter args must be numeric")
    if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
        problems.append(f"{where}: instant scope must be one of t/p/g")


def validate_trace(payload: Any) -> List[str]:
    """All schema violations in a parsed trace object (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level: expected an object with 'traceEvents'"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' must be an array"]
    if not events:
        problems.append("top level: 'traceEvents' is empty")
    for index, event in enumerate(events):
        _check_event(index, event, problems)
    if not any(
        isinstance(e, dict) and e.get("ph") not in (None, "M") for e in events
    ):
        problems.append("top level: no non-metadata events recorded")
    for finding in verify_chrome_payload(payload):
        if finding.severity == "error":
            problems.append(finding.format())
    return problems


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.check TRACE.json", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as source:
            payload = json.load(source)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: unreadable trace: {error}", file=sys.stderr)
        return 1
    problems = validate_trace(payload)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        print(f"{path}: INVALID ({len(problems)} problems)", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    print(f"{path}: OK ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
