"""Validate exported trace files and session health reports.

Dependency-free checker for the Chrome trace-event JSON written by
:func:`repro.obs.export.write_chrome_trace` and for the session health
reports of :mod:`repro.obs.health` — CI runs it on the traced smoke
cell and on the chaos health artifact before uploading either::

    python -m repro.obs.check trace.json
    python -m repro.obs.check --health health.json
    python -m repro.obs.check --health health.ndjsonl

``--health`` accepts either a full ``SessionHealth`` JSON document or
an NDJSON tail of per-window records. Exit status 0 means the file is
a loadable trace with well-formed events; 1 lists every violation
found. The trace checks come in two layers:

* **schema** — what Perfetto and ``chrome://tracing`` require to render
  the file: known phases, numeric non-negative timestamps/durations,
  integer pid/tid, args of the right shape per phase;
* **stream invariants** — delegated to
  :func:`repro.analysis.verify.verify_chrome_payload` (itself
  stdlib-only, so this module stays dependency-free) so the two tools
  cannot drift: per-track non-decreasing timestamps, monotone energy
  counters, non-overlapping spans (``TRC001``-``TRC007``). Only
  error-severity findings fail validation; warnings (e.g. ``TRC004``
  same-timestamp counter pairs) are the verifier CLI's business.
"""

from __future__ import annotations

import json
import math
import numbers
import sys
from typing import Any, List

from repro.analysis.verify import (
    verify_chrome_payload,
    verify_fleet_health,
    verify_health,
)

__all__ = [
    "validate_trace",
    "validate_health",
    "validate_fleet_health",
    "main",
]

#: phases the exporter emits (subset of the full trace-event spec)
_KNOWN_PHASES = {"X", "i", "C", "M"}
_METADATA_NAMES = {"process_name", "thread_name"}


def _check_event(index: int, event: Any, problems: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        problems.append(f"{where}: not an object")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: missing/empty 'name'")
    phase = event.get("ph")
    if phase not in _KNOWN_PHASES:
        problems.append(f"{where}: unknown phase {phase!r}")
        return
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            problems.append(f"{where}: '{key}' must be an integer")
    if phase == "M":
        if name not in _METADATA_NAMES:
            problems.append(f"{where}: unexpected metadata event {name!r}")
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            problems.append(f"{where}: metadata needs args.name string")
        return
    ts = event.get("ts")
    if not isinstance(ts, numbers.Real) or isinstance(ts, bool) or ts < 0:
        problems.append(f"{where}: 'ts' must be a non-negative number")
    if phase == "X":
        dur = event.get("dur")
        if (
            not isinstance(dur, numbers.Real)
            or isinstance(dur, bool)
            or dur < 0
        ):
            problems.append(f"{where}: complete event needs 'dur' >= 0")
    if phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            problems.append(f"{where}: counter event needs non-empty args")
        elif not all(
            isinstance(value, numbers.Real) and not isinstance(value, bool)
            for value in args.values()
        ):
            problems.append(f"{where}: counter args must be numeric")
    if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
        problems.append(f"{where}: instant scope must be one of t/p/g")


def validate_trace(payload: Any) -> List[str]:
    """All schema violations in a parsed trace object (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level: expected an object with 'traceEvents'"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' must be an array"]
    if not events:
        problems.append("top level: 'traceEvents' is empty")
    for index, event in enumerate(events):
        _check_event(index, event, problems)
    if not any(
        isinstance(e, dict) and e.get("ph") not in (None, "M") for e in events
    ):
        problems.append("top level: no non-metadata events recorded")
    for finding in verify_chrome_payload(payload):
        if finding.severity == "error":
            problems.append(finding.format())
    return problems


#: exact field sets of the health-report schema (version 1); the
#: validator rejects both missing and unexpected keys so schema drift
#: between writer and checker cannot pass silently.
_HEALTH_SESSION_FIELDS = {
    "schema_version", "label", "board",
    "latency_constraint_us_per_byte", "windows",
}
_HEALTH_WINDOW_FIELDS = {
    "window_index",
    "measured_latency_us_per_byte", "predicted_latency_us_per_byte",
    "latency_residual_us_per_byte",
    "measured_energy_uj_per_byte", "predicted_energy_uj_per_byte",
    "energy_residual_uj_per_byte",
    "components", "unattributed_us_per_byte",
    "violated", "anomalous", "attribution",
}
_HEALTH_COMPONENT_FIELDS = {"kind", "key", "residual_us_per_byte", "score"}
_HEALTH_ATTRIBUTION_FIELDS = {
    "kind", "key", "score", "residual_us_per_byte", "confidence",
}
_COMPONENT_KINDS = {"core", "path", "retry"}


def _finite(value: Any) -> bool:
    return (
        isinstance(value, numbers.Real)
        and not isinstance(value, bool)
        and math.isfinite(float(value))
    )


def _check_fields(
    where: str, record: Any, expected: set, problems: List[str]
) -> bool:
    if not isinstance(record, dict):
        problems.append(f"{where}: not an object")
        return False
    missing = expected - record.keys()
    extra = record.keys() - expected
    for name in sorted(missing):
        problems.append(f"{where}: missing field {name!r}")
    for name in sorted(extra):
        problems.append(f"{where}: unexpected field {name!r}")
    return not missing


def _check_health_window(index: int, window: Any, problems: List[str]) -> None:
    where = f"windows[{index}]"
    if not _check_fields(where, window, _HEALTH_WINDOW_FIELDS, problems):
        return
    if not isinstance(window["window_index"], int) or isinstance(
        window["window_index"], bool
    ):
        problems.append(f"{where}: 'window_index' must be an integer")
    for name in (
        "measured_latency_us_per_byte", "predicted_latency_us_per_byte",
        "latency_residual_us_per_byte", "measured_energy_uj_per_byte",
        "predicted_energy_uj_per_byte", "energy_residual_uj_per_byte",
        "unattributed_us_per_byte",
    ):
        if not _finite(window[name]):
            problems.append(f"{where}: {name!r} must be a finite number")
    for name in ("violated", "anomalous"):
        if not isinstance(window[name], bool):
            problems.append(f"{where}: {name!r} must be a boolean")
    components = window["components"]
    if not isinstance(components, list):
        problems.append(f"{where}: 'components' must be an array")
    else:
        for c_index, component in enumerate(components):
            c_where = f"{where}.components[{c_index}]"
            if not _check_fields(
                c_where, component, _HEALTH_COMPONENT_FIELDS, problems
            ):
                continue
            if component["kind"] not in _COMPONENT_KINDS:
                problems.append(
                    f"{c_where}: unknown kind {component['kind']!r}")
            if not isinstance(component["key"], str) or not component["key"]:
                problems.append(f"{c_where}: 'key' must be a non-empty string")
            for name in ("residual_us_per_byte", "score"):
                if not _finite(component[name]):
                    problems.append(
                        f"{c_where}: {name!r} must be a finite number")
    attribution = window["attribution"]
    if attribution is not None and _check_fields(
        f"{where}.attribution", attribution,
        _HEALTH_ATTRIBUTION_FIELDS, problems,
    ):
        a_where = f"{where}.attribution"
        if attribution["kind"] not in _COMPONENT_KINDS:
            problems.append(
                f"{a_where}: unknown kind {attribution['kind']!r}")
        if (
            not isinstance(attribution["key"], str)
            or not attribution["key"]
        ):
            problems.append(f"{a_where}: 'key' must be a non-empty string")
        for name in ("score", "residual_us_per_byte", "confidence"):
            if not _finite(attribution[name]):
                problems.append(
                    f"{a_where}: {name!r} must be a finite number")


# -- fleet health (schema v2) -------------------------------------------------

_FLEET_SESSION_FIELDS = {
    "schema_version", "label", "arm", "seed", "board_count",
    "tenant_count", "energy_budget_uj_per_window", "windows", "events",
}
_FLEET_WINDOW_FIELDS = {
    "window_index", "boards", "tenants", "violations", "energy_uj",
}
_FLEET_BOARD_FIELDS = {
    "board_index", "name", "kind", "alive", "breaker_state",
    "consecutive_failures", "throttled_mhz", "max_core_load",
    "tenants_running", "rpc_failures",
}
_FLEET_TENANT_FIELDS = {
    "tenant_id", "name", "priority", "state", "board_index",
    "l_set_us_per_byte", "modeled_latency_us_per_byte",
    "measured_latency_us_per_byte", "modeled_energy_uj_per_byte",
    "violated",
}
_FLEET_EVENT_FIELDS = {
    "sequence", "window_index", "kind", "tenant_id", "board_index",
    "detail",
}
_FLEET_BREAKER_STATES = {"closed", "open", "half-open"}
_FLEET_TENANT_STATES = {
    "pending", "queued", "running", "stranded", "rejected",
}
_FLEET_EVENT_KINDS = {
    "admit", "reject", "queue", "retry", "shed", "failover", "breaker",
    "board-crash", "board-reboot", "board-throttle", "rpc-failure",
}


def _check_int(where: str, value: Any, problems: List[str]) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        problems.append(f"{where}: must be an integer")


def _check_fleet_window(index: int, window: Any, problems: List[str]) -> None:
    where = f"windows[{index}]"
    if not _check_fields(where, window, _FLEET_WINDOW_FIELDS, problems):
        return
    _check_int(f"{where}.window_index", window["window_index"], problems)
    _check_int(f"{where}.violations", window["violations"], problems)
    if not _finite(window["energy_uj"]):
        problems.append(f"{where}: 'energy_uj' must be a finite number")
    boards = window["boards"]
    if not isinstance(boards, list):
        problems.append(f"{where}: 'boards' must be an array")
        boards = []
    for b_index, board in enumerate(boards):
        b_where = f"{where}.boards[{b_index}]"
        if not _check_fields(b_where, board, _FLEET_BOARD_FIELDS, problems):
            continue
        _check_int(f"{b_where}.board_index", board["board_index"], problems)
        _check_int(
            f"{b_where}.consecutive_failures",
            board["consecutive_failures"], problems,
        )
        _check_int(f"{b_where}.tenants_running",
                   board["tenants_running"], problems)
        _check_int(f"{b_where}.rpc_failures",
                   board["rpc_failures"], problems)
        if not isinstance(board["alive"], bool):
            problems.append(f"{b_where}: 'alive' must be a boolean")
        if board["breaker_state"] not in _FLEET_BREAKER_STATES:
            problems.append(
                f"{b_where}: unknown breaker state "
                f"{board['breaker_state']!r}")
        if board["throttled_mhz"] is not None and not _finite(
            board["throttled_mhz"]
        ):
            problems.append(
                f"{b_where}: 'throttled_mhz' must be null or finite")
        if not _finite(board["max_core_load"]):
            problems.append(
                f"{b_where}: 'max_core_load' must be a finite number")
    tenants = window["tenants"]
    if not isinstance(tenants, list):
        problems.append(f"{where}: 'tenants' must be an array")
        tenants = []
    for t_index, tenant in enumerate(tenants):
        t_where = f"{where}.tenants[{t_index}]"
        if not _check_fields(t_where, tenant, _FLEET_TENANT_FIELDS, problems):
            continue
        _check_int(f"{t_where}.tenant_id", tenant["tenant_id"], problems)
        _check_int(f"{t_where}.priority", tenant["priority"], problems)
        if tenant["state"] not in _FLEET_TENANT_STATES:
            problems.append(
                f"{t_where}: unknown tenant state {tenant['state']!r}")
        if tenant["board_index"] is not None:
            _check_int(
                f"{t_where}.board_index", tenant["board_index"], problems)
        for name in (
            "l_set_us_per_byte", "modeled_latency_us_per_byte",
            "measured_latency_us_per_byte", "modeled_energy_uj_per_byte",
        ):
            if not _finite(tenant[name]):
                problems.append(
                    f"{t_where}: {name!r} must be a finite number")
        if not isinstance(tenant["violated"], bool):
            problems.append(f"{t_where}: 'violated' must be a boolean")


def validate_fleet_health(payload: Any) -> List[str]:
    """All schema violations in a parsed fleet health report (v2).

    Schema problems first; when the shape is sound the fleet invariants
    (``FLT001``-``FLT005``) are delegated to
    :func:`repro.analysis.verify.verify_fleet_health`.
    """
    problems: List[str] = []
    if not _check_fields(
        "top level", payload, _FLEET_SESSION_FIELDS, problems
    ):
        return problems
    for name in ("label", "arm"):
        if not isinstance(payload[name], str) or not payload[name]:
            problems.append(f"top level: {name!r} must be a non-empty string")
    for name in ("schema_version", "seed", "board_count", "tenant_count"):
        _check_int(f"top level.{name}", payload[name], problems)
    if not _finite(payload["energy_budget_uj_per_window"]):
        problems.append(
            "top level: 'energy_budget_uj_per_window' must be a finite "
            "number")
    windows = payload["windows"]
    if not isinstance(windows, list):
        return problems + ["top level: 'windows' must be an array"]
    for index, window in enumerate(windows):
        _check_fleet_window(index, window, problems)
    events = payload["events"]
    if not isinstance(events, list):
        return problems + ["top level: 'events' must be an array"]
    for index, event in enumerate(events):
        e_where = f"events[{index}]"
        if not _check_fields(e_where, event, _FLEET_EVENT_FIELDS, problems):
            continue
        _check_int(f"{e_where}.sequence", event["sequence"], problems)
        _check_int(f"{e_where}.window_index", event["window_index"], problems)
        if event["kind"] not in _FLEET_EVENT_KINDS:
            problems.append(
                f"{e_where}: unknown event kind {event['kind']!r}")
        if event["tenant_id"] is not None:
            _check_int(f"{e_where}.tenant_id", event["tenant_id"], problems)
        if event["board_index"] is not None:
            _check_int(
                f"{e_where}.board_index", event["board_index"], problems)
        if not isinstance(event["detail"], str):
            problems.append(f"{e_where}: 'detail' must be a string")
    if not problems:
        for finding in verify_fleet_health(payload):
            if finding.severity == "error":
                problems.append(finding.format())
    return problems


def validate_health(payload: Any) -> List[str]:
    """All schema violations in a parsed health report (empty = valid).

    Accepts a full session report (object with ``windows``), a single
    per-window NDJSON record, or a fleet report — dispatched on
    ``schema_version`` 2. Schema problems are reported first; when the
    shape is sound the arithmetic invariants (``HLT001``-``HLT003``, or
    ``FLT001``-``FLT005`` for fleet reports) are delegated to
    :mod:`repro.analysis.verify` so the two tools cannot drift.
    """
    problems: List[str] = []
    if isinstance(payload, dict) and payload.get("schema_version") == 2:
        return validate_fleet_health(payload)
    if isinstance(payload, dict) and "windows" not in payload:
        # A lone NDJSON window record.
        _check_health_window(0, payload, problems)
        if not problems:
            for finding in verify_health({"windows": [payload]}):
                if finding.severity == "error":
                    problems.append(finding.format())
        return problems
    if not _check_fields(
        "top level", payload, _HEALTH_SESSION_FIELDS, problems
    ):
        return problems
    if not isinstance(payload["schema_version"], int):
        problems.append("top level: 'schema_version' must be an integer")
    for name in ("label", "board"):
        if not isinstance(payload[name], str) or not payload[name]:
            problems.append(f"top level: {name!r} must be a non-empty string")
    if not _finite(payload["latency_constraint_us_per_byte"]):
        problems.append(
            "top level: 'latency_constraint_us_per_byte' must be a "
            "finite number")
    windows = payload["windows"]
    if not isinstance(windows, list):
        return problems + ["top level: 'windows' must be an array"]
    for index, window in enumerate(windows):
        _check_health_window(index, window, problems)
    if not problems:
        for finding in verify_health(payload):
            if finding.severity == "error":
                problems.append(finding.format())
    return problems


def _load_health(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as source:
        text = source.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        # Fall back to an NDJSON tail of per-window records.
        records = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]
        if not records:
            raise
        return records


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    health_mode = "--health" in argv
    if health_mode:
        argv.remove("--health")
    if len(argv) != 1:
        print(
            "usage: python -m repro.obs.check [--health] FILE.json",
            file=sys.stderr,
        )
        return 2
    path = argv[0]
    if health_mode:
        try:
            payload = _load_health(path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"{path}: unreadable health report: {error}",
                  file=sys.stderr)
            return 1
        if isinstance(payload, list):
            problems = []
            for index, record in enumerate(payload):
                for problem in validate_health(record):
                    problems.append(f"line {index + 1}: {problem}")
            count = len(payload)
        else:
            problems = validate_health(payload)
            count = len(payload.get("windows", []) or [])
        if problems:
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
            print(f"{path}: INVALID ({len(problems)} problems)",
                  file=sys.stderr)
            return 1
        print(f"{path}: OK ({count} windows)")
        return 0
    try:
        with open(path, "r", encoding="utf-8") as source:
            payload = json.load(source)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: unreadable trace: {error}", file=sys.stderr)
        return 1
    problems = validate_trace(payload)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        print(f"{path}: INVALID ({len(problems)} problems)", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    print(f"{path}: OK ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
